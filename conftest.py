"""Pytest bootstrap: make ``src/`` importable even without installation.

The library is normally installed with ``pip install -e .``; this hook
only exists so the test-suite and the benchmarks also run straight from
a source checkout (e.g. in offline CI containers where editable installs
are awkward).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
