#!/usr/bin/env python3
"""Quickstart: compare the WATTER framework against the baselines.

Generates a small Chengdu-like workload, runs WATTER-expect,
WATTER-online, WATTER-timeout, GDP, GAS and the non-sharing floor over
the *same* orders and prints the four metrics of the paper (Extra Time,
Unified Cost, Service Rate, Running Time).

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import default_config, format_comparison_table, run_comparison


def main() -> None:
    # A laptop-sized workload: 120 orders over half an hour, 24 vehicles.
    config = default_config(
        "CDC", num_orders=120, num_workers=24, horizon=1800.0, seed=42
    )
    print("Generating the CDC-like workload and running all dispatchers...")
    metrics = run_comparison(
        "CDC",
        config,
        algorithms=(
            "WATTER-expect",
            "WATTER-online",
            "WATTER-timeout",
            "GDP",
            "GAS",
            "NonSharing",
        ),
    )
    print()
    print(format_comparison_table(metrics, title="WATTER vs baselines (CDC-like)"))
    print()
    best = min(metrics, key=lambda m: m.unified_cost)
    print(
        f"Lowest unified cost: {best.algorithm} "
        f"({best.unified_cost:.0f}, service rate {best.service_rate:.2f})"
    )


if __name__ == "__main__":
    main()
