#!/usr/bin/env python3
"""Quickstart: compare the WATTER framework against the baselines.

Describes a small Chengdu-like scenario as a declarative
``ScenarioSpec``, runs WATTER-expect, WATTER-online, WATTER-timeout,
GDP, GAS and the non-sharing floor over the *same* orders through one
``Session``, and prints the four metrics of the paper (Extra Time,
Unified Cost, Service Rate, Running Time).  An event hook streams
progress out of the engine while it runs.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    ScenarioSpec,
    Session,
    SimulationHooks,
    format_comparison_table,
)


class AssignmentCounter(SimulationHooks):
    """Minimal engine observer: counts checks and final assignments."""

    def __init__(self) -> None:
        self.checks = 0
        self.assigned = 0

    def on_periodic_check(self, now: float) -> None:
        self.checks += 1

    def on_assign(self, served) -> None:
        self.assigned += 1


def main() -> None:
    # A laptop-sized workload: 120 orders over half an hour, 24 vehicles.
    spec = ScenarioSpec(
        name="quickstart",
        dataset="CDC",
        num_orders=120,
        num_workers=24,
        horizon=1800.0,
        seed=42,
    )
    print("The scenario is plain data — it could live in a JSON file:")
    print(f"  {json.dumps(spec.to_dict(), sort_keys=True)}")
    print()
    print("Generating the CDC-like workload and running all dispatchers...")
    session = Session()
    hooks = AssignmentCounter()
    results = session.compare(
        spec,
        algorithms=(
            "WATTER-expect",
            "WATTER-online",
            "WATTER-timeout",
            "GDP",
            "GAS",
            "NonSharing",
        ),
        hooks=hooks,
    )
    print()
    print(
        format_comparison_table(
            [run.metrics for run in results], title="WATTER vs baselines (CDC-like)"
        )
    )
    print()
    best = min(results, key=lambda run: run.metrics.unified_cost)
    print(
        f"Lowest unified cost: {best.algorithm} "
        f"({best.metrics.unified_cost:.0f}, service rate "
        f"{best.metrics.service_rate:.2f})"
    )
    print(
        f"Hooks saw {hooks.checks} periodic checks and {hooks.assigned} "
        f"assignments across the six runs; network graph "
        f"{results[0].graph_hash[:12]}."
    )


if __name__ == "__main__":
    main()
