#!/usr/bin/env python3
"""Train the MDP value function offline and use it online (Section VI).

The script walks through the whole WATTER-expect pipeline on top of the
``repro.api`` facade:

1. describe the evaluation scenario (and its shifted-seed training
   sibling) as ``ScenarioSpec`` values,
2. bootstrap an extra-time distribution by simulating the pooling
   framework on the training workload and fit the GMM of Section V,
3. optimise the per-order thresholds (Algorithm 3),
4. replay the training workload to record MDP transitions and train the
   value network with the combined TD + target loss (Section VI-B),
5. evaluate three threshold providers on the *fresh* evaluation
   workload via ``Session.run(spec, provider=...)``: the
   distribution-fitted optimiser, the learned value function, and a
   naive constant threshold.

Run with:

    python examples/train_value_function.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    ConstantThresholdProvider,
    GridIndex,
    LearningConfig,
    ScenarioSpec,
    Session,
    StateEncoder,
    ThresholdOptimizer,
    ValueFunctionTrainer,
    fit_extra_time_distribution,
    generate_experience,
)


def main() -> None:
    spec = ScenarioSpec(
        name="value-function",
        dataset="CDC",
        num_orders=100,
        num_workers=20,
        horizon=1800.0,
        seed=3,
        algorithm="WATTER-expect",
    )
    training_spec = spec.with_overrides(seed=1003, algorithm="WATTER-timeout")
    config = spec.config()
    training_config = training_spec.config()
    session = Session()

    print("1/5  generating the training workload...")
    training = session.workload(training_spec)

    print("2/5  bootstrapping the extra-time distribution (GMM of Section V)...")
    bootstrap = session.run(training_spec)
    extra_times = [
        outcome.extra_time
        for outcome in bootstrap.outcomes
        if outcome.served and outcome.extra_time > 0
    ]
    mixture = fit_extra_time_distribution(extra_times, seed=3)
    optimizer = ThresholdOptimizer(mixture)
    sample_penalty = training.orders[0].penalty
    print(
        f"     fitted {len(mixture.components)} components; "
        f"theta*(p={sample_penalty:.0f}s) = "
        f"{optimizer.optimal_threshold(sample_penalty):.0f}s"
    )

    print("3/5  recording MDP transitions by replaying the dispatch process...")
    encoder = StateEncoder(
        GridIndex(training.network, size=config.grid_size),
        time_slot=config.time_slot,
        horizon=config.horizon,
    )
    targets = optimizer.optimal_thresholds(training.orders)
    transitions = generate_experience(
        training, training_config, encoder, optimizer, targets
    )
    print(f"     recorded {len(transitions)} transitions")

    print("4/5  training the value network (TD loss + target loss)...")
    trainer = ValueFunctionTrainer(encoder, LearningConfig(epochs=4, loss_weight=0.5))
    trainer.add_experience(transitions)
    report = trainer.train()
    print(f"     mean loss {report.mean_loss:.1f}, final loss {report.final_loss:.1f}")

    print("5/5  evaluating the providers on a fresh workload...")
    providers = {
        "GMM thresholds (Section V)": optimizer,
        "learned value function (Section VI)": trainer.build_provider(),
        "constant 60s threshold": ConstantThresholdProvider(60.0),
    }
    print()
    print(f"{'provider':<38}{'extra time':>12}{'unified cost':>14}{'service':>9}")
    print("-" * 73)
    for label, provider in providers.items():
        result = session.run(spec, provider=provider)
        metrics = result.metrics
        print(
            f"{label:<38}{metrics.total_extra_time:>12.0f}"
            f"{metrics.unified_cost:>14.0f}{metrics.service_rate:>9.3f}"
        )


if __name__ == "__main__":
    main()
