#!/usr/bin/env python3
"""Rush-hour pooling: how demand peaks change the value of waiting.

The motivation of the paper is that during busy periods an order that
waits a few extra seconds is very likely to find a well-matching partner.
This example describes an NYC-like scenario with a pronounced demand
peak, runs WATTER-online (answer immediately) and WATTER-expect (wait
when the expected threshold says so) through one ``Session`` — sharing
the workload, the warmed oracle and the bootstrapped threshold provider
— and reports how much sharing each achieves inside versus outside the
peak, straight from the per-order outcomes on the ``RunResult``.

Run with:

    python examples/rush_hour_pooling.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ScenarioSpec, Session

PEAK_WINDOW = (1800.0, 5400.0)  # the NYC-like preset surges in this interval


def share_of_grouped_orders(result, window=None):
    """Fraction of served orders that rode in a group of two or more."""
    served = [outcome for outcome in result.outcomes if outcome.served]
    if window is not None:
        lo, hi = window
        served = [
            outcome
            for outcome in served
            if outcome.dispatch_time is not None and lo <= outcome.dispatch_time < hi
        ]
    if not served:
        return 0.0
    grouped = sum(1 for outcome in served if outcome.group_size >= 2)
    return grouped / len(served)


def main() -> None:
    spec = ScenarioSpec(
        name="rush-hour",
        dataset="NYC",
        num_orders=150,
        num_workers=30,
        horizon=7200.0,
        seed=9,
    )
    print("Generating the NYC-like workload (morning peak at 0:30-1:30)...")
    print("Running WATTER-online and WATTER-expect over the same orders...")
    session = Session()
    online, expect = session.compare(
        spec, algorithms=("WATTER-online", "WATTER-expect")
    )

    print()
    print(f"{'metric':<38}{'WATTER-online':>16}{'WATTER-expect':>16}")
    print("-" * 70)
    rows = [
        ("service rate", online.metrics.service_rate, expect.metrics.service_rate),
        ("unified cost", online.metrics.unified_cost, expect.metrics.unified_cost),
        ("total extra time (s)", online.metrics.total_extra_time,
         expect.metrics.total_extra_time),
        ("average group size", online.metrics.average_group_size,
         expect.metrics.average_group_size),
        ("grouped share (whole day)", share_of_grouped_orders(online),
         share_of_grouped_orders(expect)),
        ("grouped share (inside peak)", share_of_grouped_orders(online, PEAK_WINDOW),
         share_of_grouped_orders(expect, PEAK_WINDOW)),
    ]
    for label, a, b in rows:
        print(f"{label:<38}{a:>16.3f}{b:>16.3f}")
    print()
    print(
        "Waiting pays off most where demand is dense: WATTER-expect groups a\n"
        "larger share of the peak-hour orders, which is exactly the effect the\n"
        "paper's introduction motivates."
    )


if __name__ == "__main__":
    main()
