#!/usr/bin/env python3
"""Bring your own demand model — and replay it from CSV.

The library is not tied to the three bundled dataset presets.  This
example describes a grid city with a ``ScenarioSpec``, layers a custom
demand model (its own hotspots and rush-hour peak) over the *same*
network via the ``workload=`` escape hatch, exports the generated
orders and workers to CSV, and then replays that log through a
``workload="csv"`` spec — the end-to-end path a real order log takes.
Because the session reuses the network for every run, the replayed
scenario reproduces the original metrics exactly.

Run with:

    python examples/custom_city.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    CityModel,
    DemandHotspot,
    PeakPeriod,
    ScenarioSpec,
    Session,
    format_comparison_table,
    orders_to_csv,
    workers_to_csv,
)


def main() -> None:
    # The road network is fully described by the spec (a 12x12 lattice
    # seeded by the scenario seed), so CSV replays can rebuild it.
    spec = ScenarioSpec(
        name="RINGVILLE",
        network="grid",
        grid_rows=12,
        grid_cols=12,
        grid_edge_travel_time=65.0,
        grid_jitter=0.2,
        num_orders=100,
        num_workers=18,
        horizon=1800.0,
        seed=17,
    )
    session = Session()
    network = session.network(spec)

    # A custom demand model over that network: a dominant centre, an
    # eastern hub, and a mid-run demand peak.
    city = CityModel(
        name="RINGVILLE",
        network=network,
        pickup_hotspots=[
            DemandHotspot(x=5.5, y=5.5, spread=2.0, weight=2.0),
            DemandHotspot(x=9.0, y=5.5, spread=1.5, weight=1.0),
        ],
        dropoff_hotspots=[
            DemandHotspot(x=5.5, y=5.5, spread=2.5, weight=1.0),
            DemandHotspot(x=2.0, y=2.0, spread=2.0, weight=1.0),
        ],
        uniform_fraction=0.25,
        peak_periods=[PeakPeriod(start=600.0, end=1500.0, intensity=2.0)],
        min_trip_time=130.0,
    )
    print("Generating demand for the custom grid city...")
    workload = city.generate(spec.config())
    print(f"  {len(workload.orders)} orders, {len(workload.workers)} workers")

    algorithms = ("WATTER-online", "WATTER-timeout", "GAS", "NonSharing")
    results = session.compare(spec, algorithms=algorithms, workload=workload)
    print()
    print(
        format_comparison_table(
            [run.metrics for run in results], title="Custom city (RINGVILLE)"
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        orders_path = Path(tmp) / "ringville_orders.csv"
        workers_path = Path(tmp) / "ringville_workers.csv"
        orders_to_csv(workload.orders, orders_path)
        workers_to_csv(workload.workers, workers_path)

        replay_spec = spec.with_overrides(
            workload="csv",
            orders_csv=str(orders_path),
            workers_csv=str(workers_path),
        )
        replayed = session.run(
            replay_spec.with_overrides(algorithm="WATTER-timeout")
        )
        original = next(r for r in results if r.algorithm == "WATTER-timeout")
        print()
        print(
            f"Replayed {replayed.metrics.total_orders} orders from CSV: "
            f"service rate {replayed.metrics.service_rate:.3f} "
            f"(original {original.metrics.service_rate:.3f}), "
            f"unified cost {replayed.metrics.unified_cost:.0f} "
            f"(original {original.metrics.unified_cost:.0f})"
        )


if __name__ == "__main__":
    main()
