#!/usr/bin/env python3
"""Bring your own city: run WATTER on a custom road network and demand model.

The library is not tied to the three bundled dataset presets.  This
example builds a ring-and-spoke city, defines its own demand hotspots
and peak period, generates a workload, runs the pooling framework and
exports the orders to CSV so the exact same workload can be reloaded or
inspected elsewhere.

Run with:

    python examples/custom_city.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import default_config, format_comparison_table
from repro.datasets.io import orders_from_csv, orders_to_csv
from repro.datasets.synthetic import CityModel, DemandHotspot, PeakPeriod
from repro.experiments.runner import run_on_workload
from repro.network.generators import radial_city


def main() -> None:
    network = radial_city(rings=6, spokes=10, seed=4)
    city = CityModel(
        name="RINGVILLE",
        network=network,
        pickup_hotspots=[
            DemandHotspot(x=0.0, y=0.0, spread=1.5, weight=2.0),   # the centre
            DemandHotspot(x=4.0, y=0.0, spread=1.0, weight=1.0),   # an eastern hub
        ],
        dropoff_hotspots=[
            DemandHotspot(x=0.0, y=0.0, spread=2.0, weight=1.0),
            DemandHotspot(x=-4.0, y=-2.0, spread=1.5, weight=1.0),
        ],
        uniform_fraction=0.25,
        peak_periods=[PeakPeriod(start=600.0, end=1500.0, intensity=2.0)],
        min_trip_time=120.0,
    )
    config = default_config(
        "CDC", num_orders=100, num_workers=18, horizon=1800.0, seed=17
    )
    print("Generating demand for the custom ring-and-spoke city...")
    workload = city.generate(config)
    print(f"  {len(workload.orders)} orders, {len(workload.workers)} workers")

    results = [
        run_on_workload(name, workload, config).metrics
        for name in ("WATTER-online", "WATTER-timeout", "GAS", "NonSharing")
    ]
    print()
    print(format_comparison_table(results, title="Custom city (RINGVILLE)"))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ringville_orders.csv"
        orders_to_csv(workload.orders, path)
        reloaded = orders_from_csv(path)
        print()
        print(f"Exported and re-imported {len(reloaded)} orders via {path.name}.")


if __name__ == "__main__":
    main()
