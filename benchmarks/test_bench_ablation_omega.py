"""Appendix C/E ablation — the TD / target loss weight ``omega``.

The value network is trained with ``omega * loss_td + (1-omega) *
loss_tg``.  The ablation retrains the network on the same recorded
experience for several omegas and evaluates the resulting WATTER-expect
run, reporting the training loss and the online extra time per omega.
"""

from __future__ import annotations

from repro.config import LearningConfig
from repro.experiments.ablations import vary_loss_weight

from .conftest import bench_config

_OMEGAS = (0.0, 0.5, 1.0)


def test_ablation_loss_weight_series(benchmark):
    """Regenerate the loss-weight ablation (reduced workload, three omegas)."""
    base = bench_config("CDC", num_orders=60, num_workers=14, horizon=1200.0)
    learning = LearningConfig(epochs=2, hidden_sizes=(32,), batch_size=32)
    ablation = benchmark.pedantic(
        lambda: vary_loss_weight(
            "CDC", loss_weights=_OMEGAS, base_config=base, learning_config=learning
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Appendix C/E: loss-weight (omega) ablation (CDC) ===")
    header = f"{'omega':>6}  {'train loss':>12}  {'extra time':>12}  {'service rate':>12}"
    print(header)
    print("-" * len(header))
    for row in ablation.rows:
        print(
            f"{row['omega']:>6.2f}  {row['training_loss']:>12.1f}  "
            f"{row['extra_time']:>12.1f}  {row['service_rate']:>12.3f}"
        )
    assert ablation.omegas() == [float(omega) for omega in _OMEGAS]
    for row in ablation.rows:
        assert row["transitions"] > 0
        assert 0.0 <= row["service_rate"] <= 1.0


def test_ablation_loss_weight_benchmark(benchmark):
    """Time the training + evaluation pipeline for a single omega."""
    base = bench_config("CDC", num_orders=40, num_workers=10, horizon=900.0)
    learning = LearningConfig(epochs=1, hidden_sizes=(16,), batch_size=32)

    def run():
        return vary_loss_weight(
            "CDC", loss_weights=(0.5,), base_config=base, learning_config=learning
        )

    ablation = benchmark(run)
    assert len(ablation.rows) == 1
