"""Benchmark harness package.

This ``__init__`` exists so pytest imports the benchmark modules as the
``benchmarks`` package, which makes their ``from .conftest import ...``
relative imports resolve when running ``pytest benchmarks`` from the
repository root.
"""
