"""Appendix F ablation — sensitivity to the watch-window scale ``eta``.

The watch window bounds how long an order may wait for a partner; the
paper chose eta = 0.8.  The ablation sweeps eta over {0.4 .. 1.0} for
the WATTER variants and reports extra time and service rate.
"""

from __future__ import annotations

from repro.experiments.ablations import vary_watch_window
from repro.experiments.reporting import format_sweep_table

from .conftest import WATTER_ALGORITHMS, bench_config

_ETAS = (0.4, 0.6, 0.8, 1.0)


def test_ablation_watch_window_series(benchmark):
    """Regenerate the watch-window ablation on the CDC-like workload."""
    base = bench_config("CDC", num_orders=80, num_workers=16)
    sweep = benchmark.pedantic(
        lambda: vary_watch_window(
            "CDC",
            watch_windows=_ETAS,
            base_config=base,
            algorithms=WATTER_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Appendix F: watch-window (eta) ablation (CDC) ===")
    print(format_sweep_table(sweep, "total_extra_time"))
    print()
    print(format_sweep_table(sweep, "service_rate"))
    assert sweep.values() == [float(eta) for eta in _ETAS]
    for algorithm in WATTER_ALGORITHMS:
        assert len(sweep.series(algorithm, "total_extra_time")) == len(_ETAS)


def test_ablation_watch_window_benchmark(benchmark):
    """Time one WATTER-timeout run at the default eta."""
    from repro.experiments.runner import run_comparison

    config = bench_config("CDC", num_orders=60, num_workers=14, watch_window_scale=0.8)

    def run():
        return run_comparison("CDC", config, algorithms=("WATTER-timeout",))

    metrics = benchmark(run)
    assert metrics[0].algorithm == "WATTER-timeout"
