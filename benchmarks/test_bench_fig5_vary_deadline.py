"""Figure 5 — performance while varying the deadline scale ``tau``.

The paper sweeps tau over {1.2, 1.4, 1.6, 1.8}: with small deadlines the
WATTER variants have little room to wait and behave like the baselines;
as tau grows, waiting pays off and WATTER-expect pulls ahead.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_full_sweep_report
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import vary_deadline

from .conftest import BENCH_ALGORITHMS, bench_config

_DEADLINES = (1.2, 1.4, 1.6, 1.8)


@pytest.mark.parametrize("dataset", ("CDC", "NYC", "XIA"))
def test_fig5_vary_deadline_series(dataset, benchmark):
    """Regenerate the Figure 5 panels for one dataset."""
    base = bench_config(dataset, num_orders=100, num_workers=20)
    sweep = benchmark.pedantic(
        lambda: vary_deadline(
            dataset,
            deadline_scales=_DEADLINES,
            base_config=base,
            algorithms=BENCH_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"=== Figure 5 ({dataset}): varying the deadline scale tau ===")
    print(format_full_sweep_report(sweep))
    assert sweep.values() == [float(value) for value in _DEADLINES]
    # Shape check mirroring the paper: looser deadlines never hurt the
    # service rate of the pooling framework (within a small tolerance).
    rates = sweep.series("WATTER-expect", "service_rate")
    assert rates[-1] >= rates[0] - 0.05


def test_fig5_default_cell_benchmark(benchmark):
    """Time the default-tau cell for regression tracking."""
    config = bench_config(
        "CDC", num_orders=60, num_workers=14, horizon=1200.0, deadline_scale=1.6
    )

    def run():
        return run_comparison(
            "CDC", config, algorithms=("WATTER-online", "WATTER-timeout")
        )

    metrics = benchmark(run)
    assert len(metrics) == 2
