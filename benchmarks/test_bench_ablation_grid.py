"""Appendix D ablation — sensitivity to the grid-index size.

The paper tested several grid resolutions and chose 10x10.  The ablation
reruns the WATTER variants with grids of 5..20 cells per side and prints
extra time and running time per grid size.
"""

from __future__ import annotations

from repro.experiments.ablations import vary_grid_size
from repro.experiments.reporting import format_sweep_table

from .conftest import WATTER_ALGORITHMS, bench_config

_GRID_SIZES = (5, 10, 15, 20)


def test_ablation_grid_size_series(benchmark):
    """Regenerate the grid-size ablation on the CDC-like workload."""
    base = bench_config("CDC", num_orders=80, num_workers=16)
    sweep = benchmark.pedantic(
        lambda: vary_grid_size(
            "CDC",
            grid_sizes=_GRID_SIZES,
            base_config=base,
            algorithms=WATTER_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Appendix D: grid-index size ablation (CDC) ===")
    print(format_sweep_table(sweep, "total_extra_time"))
    print()
    print(format_sweep_table(sweep, "running_time_per_order"))
    assert sweep.values() == [float(size) for size in _GRID_SIZES]
    # The grid size is an indexing choice: the solution quality must be
    # essentially insensitive to it (paper: "tested the performance impact
    # of different grid size and choose 10x10").
    for algorithm in WATTER_ALGORITHMS:
        series = sweep.series(algorithm, "service_rate")
        assert max(series) - min(series) <= 0.25


def test_ablation_grid_size_benchmark(benchmark):
    """Time one WATTER-online run at the default grid size."""
    from repro.experiments.runner import run_comparison

    config = bench_config("CDC", num_orders=60, num_workers=14, grid_size=10)

    def run():
        return run_comparison("CDC", config, algorithms=("WATTER-online",))

    metrics = benchmark(run)
    assert metrics[0].algorithm == "WATTER-online"
