"""Figure 6 — performance while varying the maximum vehicle capacity ``Kw``.

The paper sweeps Kw over {2, 3, 4, 5}.  Larger capacities allow larger
order groups, which mostly benefits the pooling framework (WATTER) and
the batch-based baseline, while GDP's greedy insertion sees little gain.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_full_sweep_report
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import vary_capacity

from .conftest import BENCH_ALGORITHMS, bench_config

_CAPACITIES = (2, 3, 4, 5)


@pytest.mark.parametrize("dataset", ("CDC",))
def test_fig6_vary_capacity_series(dataset, benchmark):
    """Regenerate the Figure 6 panels (CDC shown; other datasets behave alike)."""
    base = bench_config(dataset, num_orders=100, num_workers=20)
    sweep = benchmark.pedantic(
        lambda: vary_capacity(
            dataset,
            capacities=_CAPACITIES,
            base_config=base,
            algorithms=BENCH_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"=== Figure 6 ({dataset}): varying the vehicle capacity Kw ===")
    print(format_full_sweep_report(sweep))
    assert sweep.values() == [float(value) for value in _CAPACITIES]
    for algorithm in BENCH_ALGORITHMS:
        assert len(sweep.series(algorithm, "unified_cost")) == len(_CAPACITIES)


def test_fig6_default_cell_benchmark(benchmark):
    """Time the default-capacity cell for regression tracking."""
    config = bench_config(
        "CDC", num_orders=60, num_workers=14, horizon=1200.0, max_capacity=4
    )

    def run():
        return run_comparison("CDC", config, algorithms=("WATTER-online", "GAS"))

    metrics = benchmark(run)
    assert len(metrics) == 2
