"""Table III — the default experimental setting.

Runs the full algorithm comparison once per dataset at the (scaled)
Table III defaults and prints the headline comparison table, i.e. the
numbers quoted in the running text of Section VII-B ("when n = 50k,
WATTER-expect achieved ... lower extra time compared to ...").
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_comparison_table
from repro.experiments.runner import run_comparison

from .conftest import BENCH_ALGORITHMS, bench_config


@pytest.mark.parametrize("dataset", ("CDC", "NYC", "XIA"))
def test_table3_default_setting(dataset, benchmark):
    """Run every compared algorithm at the dataset's default parameters."""
    config = bench_config(dataset, num_orders=120, num_workers=24)
    metrics = benchmark.pedantic(
        lambda: run_comparison(dataset, config, algorithms=BENCH_ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_comparison_table(metrics, title=f"Table III defaults ({dataset})"))
    by_name = {m.algorithm: m for m in metrics}
    assert set(by_name) == set(BENCH_ALGORITHMS)
    # Headline shape checks (see EXPERIMENTS.md for the full discussion):
    # the pooling framework must not lose to the non-sharing floor on the
    # platform-level metrics.
    assert (
        by_name["WATTER-expect"].unified_cost
        <= by_name["NonSharing"].unified_cost * 1.05
    )
    assert (
        by_name["WATTER-expect"].service_rate
        >= by_name["NonSharing"].service_rate - 0.05
    )
    # GDP answers immediately, so it must be the fastest per-order algorithm
    # among the group-forming methods (running-time shape of the paper).
    assert (
        by_name["GDP"].running_time_per_order
        <= by_name["WATTER-expect"].running_time_per_order
    )


def test_table3_single_run_benchmark(benchmark):
    """Time a single WATTER-expect run at a reduced default setting."""
    config = bench_config("CDC", num_orders=60, num_workers=14, horizon=1200.0)

    def run():
        return run_comparison("CDC", config, algorithms=("WATTER-expect",))

    metrics = benchmark(run)
    assert metrics[0].algorithm == "WATTER-expect"
