"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts
(Figures 3-6 plus the appendix ablations) as a text table printed to the
captured output, and times one representative sweep cell with
pytest-benchmark so regressions in algorithm cost show up over time.

The workloads are scaled down from Table III (see
``repro.experiments.config``) so the full harness completes in minutes;
`--benchmark-only` runs print the same tables the paper plots.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import default_config  # noqa: E402


#: Algorithms compared in every figure benchmark.  The full set of the
#: paper is used; NonSharing is added as the sanity floor.
BENCH_ALGORITHMS = (
    "WATTER-expect",
    "WATTER-online",
    "WATTER-timeout",
    "GDP",
    "GAS",
    "NonSharing",
)

#: The WATTER-only subset used by the appendix ablations.
WATTER_ALGORITHMS = ("WATTER-expect", "WATTER-online", "WATTER-timeout")


def bench_config(dataset: str, **overrides):
    """A benchmark-sized configuration: Table III shapes, reduced counts."""
    base = dict(num_orders=120, num_workers=24, horizon=1800.0, grid_size=8)
    base.update(overrides)
    return default_config(dataset, **base)


@pytest.fixture(scope="session")
def bench_datasets():
    """Datasets covered by the figure benchmarks (all three of the paper)."""
    return ("NYC", "CDC", "XIA")
