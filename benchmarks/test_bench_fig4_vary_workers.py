"""Figure 4 — performance while varying the number of workers ``m``.

The paper sweeps m over {3K, 4K, 5K, 6K}; the reproduction keeps the
same 3:4:5:6 ratio at a scaled-down magnitude and reports the same four
metrics for all compared algorithms.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_full_sweep_report
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import vary_num_workers

from .conftest import BENCH_ALGORITHMS, bench_config

_WORKER_COUNTS = (12, 16, 20, 24)


@pytest.mark.parametrize("dataset", ("CDC", "NYC", "XIA"))
def test_fig4_vary_workers_series(dataset, benchmark):
    """Regenerate the Figure 4 panels for one dataset."""
    base = bench_config(dataset, num_orders=100, num_workers=20)
    sweep = benchmark.pedantic(
        lambda: vary_num_workers(
            dataset,
            worker_counts=_WORKER_COUNTS,
            base_config=base,
            algorithms=BENCH_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"=== Figure 4 ({dataset}): varying the number of workers ===")
    print(format_full_sweep_report(sweep))
    assert sweep.values() == [float(m) for m in _WORKER_COUNTS]
    # Shape check mirroring the paper: more workers never hurt the
    # service rate of the pooling framework (within a small tolerance).
    for algorithm in ("WATTER-expect", "WATTER-online"):
        rates = sweep.series(algorithm, "service_rate")
        assert rates[-1] >= rates[0] - 0.05


def test_fig4_default_cell_benchmark(benchmark):
    """Time the default-m cell for regression tracking."""
    config = bench_config("CDC", num_orders=60, num_workers=20, horizon=1200.0)

    def run():
        return run_comparison(
            "CDC", config, algorithms=("WATTER-timeout", "GAS", "NonSharing")
        )

    metrics = benchmark(run)
    assert len(metrics) == 3
