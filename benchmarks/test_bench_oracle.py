"""Distance-oracle benchmark: query-time speedup of the new backends.

The acceptance bars for the oracle subsystem: a precomputing backend
answers the default workload's shortest-path query mix at least 2x
faster than the seed behaviour (``LazyDijkstraOracle``), the batched
many-to-one dispatch path beats the per-source forward path >=5x, and
the contraction-hierarchy backend answers cold point-to-point queries
>=5x faster than lazy while staying competitive on the many-to-one mix
— all with results that agree pair-for-pair and with preprocessing
time reported honestly.  ``benchmark_oracles`` replays an identical,
realistically shaped query sequence (worker approach legs, pickup-gap
probes, route legs) against fresh instances of every backend and
cross-checks the answers; ``benchmark_dispatch_queries`` does the same
for the 32-workers-one-pickup dispatch shape and records the timings
in ``BENCH_dispatch.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.benchmarking import (
    benchmark_dispatch_queries,
    benchmark_oracles,
    benchmark_spatial_index,
    format_dispatch_bench_table,
    format_oracle_bench_table,
    write_dispatch_trajectory,
)
from repro.network.generators import grid_city

from .conftest import bench_config

#: Query count of the timed mix; large enough that per-query dispatch
#: overhead dominates timer noise on every backend.
_NUM_QUERIES = 4000

#: Idle workers per dispatch round of the many-to-one benchmark (the
#: acceptance bar requires at least 32).
_DISPATCH_SOURCES = 32


@pytest.mark.parametrize("dataset", ("CDC", "NYC"))
def test_oracle_backends_speedup(dataset):
    """Matrix oracle must answer the default workload >=2x faster than lazy."""
    config = bench_config(dataset)
    results = {
        result.backend: result
        for result in benchmark_oracles(
            dataset, config, backends=("lazy", "landmark", "matrix", "ch"),
            num_queries=_NUM_QUERIES,
        )
    }
    print()
    print(
        format_oracle_bench_table(
            list(results.values()),
            title=f"Distance-oracle benchmark ({dataset}, {_NUM_QUERIES} queries)",
        )
    )
    lazy = results["lazy"]
    matrix = results["matrix"]
    assert matrix.query_seconds * 2.0 <= lazy.query_seconds, (
        f"matrix backend answered in {matrix.query_seconds:.4f}s, "
        f"needed <= half of lazy's {lazy.query_seconds:.4f}s"
    )
    # The precomputed backend never runs graph searches at query time.
    assert matrix.hit_rate == pytest.approx(1.0)


@pytest.fixture(scope="module")
def dispatch_bench():
    """One shared dispatch benchmark run over every registered backend.

    The query mix is the dispatch hot path: >=32 idle worker locations
    against one pickup node, each round on nodes no earlier round
    touched (one genuinely cold dispatch decision per round).  The
    timings — including each backend's honest ``precompute_seconds``
    and the CH acceptance ratios — land in ``BENCH_dispatch.json`` next
    to the repository root so CI keeps a trajectory of the speedups.
    """
    graph = grid_city(rows=32, cols=32, seed=3, jitter=0.3).graph
    results = benchmark_dispatch_queries(
        graph=graph, num_sources=_DISPATCH_SOURCES, num_rounds=24
    )
    spatial = benchmark_spatial_index(grid_dim=32, num_workers=256, num_searches=50)
    print()
    print(format_dispatch_bench_table(results, spatial))
    trajectory = Path(__file__).parent.parent / "BENCH_dispatch.json"
    write_dispatch_trajectory(trajectory, results, spatial)
    return {result.backend: result for result in results}


def test_many_to_one_dispatch_speedup(dispatch_bench):
    """Reverse-SSSP batching must beat per-source forward Dijkstra >=5x.

    The lazy backend answers the batch with a single reverse-graph
    Dijkstra instead of one forward Dijkstra per worker location.
    """
    lazy = dispatch_bench["lazy"]
    assert lazy.num_sources >= 32
    assert lazy.batched_seconds * 5.0 <= lazy.forward_seconds, (
        f"lazy many-to-one batch answered in {lazy.batched_seconds:.4f}s, "
        f"needed <= 1/5 of the per-source path's {lazy.forward_seconds:.4f}s"
    )
    # One reverse run per round replaces num_sources forward runs.
    assert lazy.reverse_sssp_runs == lazy.num_rounds


def test_ch_cold_point_to_point_speedup(dispatch_bench):
    """CH point-to-point must beat lazy's cold Dijkstra queries >=5x.

    Every dispatch round touches fresh nodes, so the per-source path is
    a cold point-to-point measurement: one full Dijkstra per query for
    ``lazy``, one bidirectional upward search for ``ch``.  The measured
    ratio (and the preprocessing time it has to amortise) is recorded
    in ``BENCH_dispatch.json`` by the shared fixture.
    """
    lazy = dispatch_bench["lazy"]
    ch = dispatch_bench["ch"]
    assert ch.forward_seconds * 5.0 <= lazy.forward_seconds, (
        f"ch answered 768 cold point-to-point queries in "
        f"{ch.forward_seconds:.4f}s, needed <= 1/5 of lazy's "
        f"{lazy.forward_seconds:.4f}s"
    )
    # Preprocessing happened and was recorded honestly (a CH build over
    # a 1024-node city cannot be free).
    assert ch.precompute_seconds > 0.0
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.json").read_text()
    )
    assert trajectory["ch"]["cold_p2p_speedup_vs_lazy"] >= 5.0
    assert trajectory["ch"]["precompute_seconds"] == ch.precompute_seconds
    assert all(
        "precompute_seconds" in backend for backend in trajectory["backends"]
    )


def test_ch_many_to_one_competitive(dispatch_bench):
    """CH's bucket/reverse-PHAST batch must stay with the best backend.

    The PR-2 backends answer the 32-workers-one-pickup mix with one
    reverse Dijkstra (lazy/matrix) or an early-terminating backward
    search (landmark); CH replaces that with a backward upward search
    plus a linear downward sweep.  It is measured fastest of the four
    at this scale — the bar is <=2x the best of the others so a noisy
    CI runner cannot flake the build.
    """
    ch = dispatch_bench["ch"]
    others = [
        result for name, result in dispatch_bench.items() if name != "ch"
    ]
    best = min(result.batched_seconds for result in others)
    assert ch.batched_seconds <= 2.0 * best, (
        f"ch many-to-one took {ch.batched_seconds:.4f}s, best other "
        f"backend {best:.4f}s"
    )


def test_spatial_index_speeds_up_find_worker_for():
    """The ring-expanding search must beat the full-fleet scan.

    On a >=1k-node network with a large fleet the pruned search may
    examine only a fraction of the workers (deterministic) and must be
    measurably faster end-to-end (wall clock, generous 1.2x bar to stay
    robust on noisy CI runners).
    """
    spatial = benchmark_spatial_index(
        grid_dim=32, num_workers=256, num_searches=60, repeats=5
    )
    assert spatial.num_nodes >= 1000
    # Deterministic pruning: well under half the fleet examined.
    assert spatial.candidates_fraction < 0.5
    assert spatial.indexed_seconds * 1.2 <= spatial.scan_seconds, (
        f"ring search took {spatial.indexed_seconds:.4f}s, "
        f"scan {spatial.scan_seconds:.4f}s"
    )


def test_oracle_query_benchmark(benchmark):
    """pytest-benchmark regression tracking of the matrix query path."""
    config = bench_config("CDC")
    results = benchmark.pedantic(
        lambda: benchmark_oracles(
            "CDC", config, backends=("matrix",), num_queries=_NUM_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    assert results[0].num_queries == _NUM_QUERIES
