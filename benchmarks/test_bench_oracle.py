"""Distance-oracle benchmark: query-time speedup of the new backends.

The acceptance bar for the oracle subsystem is that a precomputing
backend answers the default workload's shortest-path query mix at least
2x faster than the seed behaviour (``LazyDijkstraOracle``), with results
that agree pair-for-pair.  ``benchmark_oracles`` already replays an
identical, realistically shaped query sequence (worker approach legs,
pickup-gap probes, route legs) against fresh instances of every backend
and cross-checks the answers, so this module simply runs it at the
default benchmark scale, prints the table, and asserts the speedup.
"""

from __future__ import annotations

import pytest

from repro.experiments.benchmarking import (
    benchmark_oracles,
    format_oracle_bench_table,
)

from .conftest import bench_config

#: Query count of the timed mix; large enough that per-query dispatch
#: overhead dominates timer noise on every backend.
_NUM_QUERIES = 4000


@pytest.mark.parametrize("dataset", ("CDC", "NYC"))
def test_oracle_backends_speedup(dataset):
    """Matrix oracle must answer the default workload >=2x faster than lazy."""
    config = bench_config(dataset)
    results = {
        result.backend: result
        for result in benchmark_oracles(
            dataset, config, backends=("lazy", "landmark", "matrix"),
            num_queries=_NUM_QUERIES,
        )
    }
    print()
    print(
        format_oracle_bench_table(
            list(results.values()),
            title=f"Distance-oracle benchmark ({dataset}, {_NUM_QUERIES} queries)",
        )
    )
    lazy = results["lazy"]
    matrix = results["matrix"]
    assert matrix.query_seconds * 2.0 <= lazy.query_seconds, (
        f"matrix backend answered in {matrix.query_seconds:.4f}s, "
        f"needed <= half of lazy's {lazy.query_seconds:.4f}s"
    )
    # The precomputed backend never runs graph searches at query time.
    assert matrix.hit_rate == pytest.approx(1.0)


def test_oracle_query_benchmark(benchmark):
    """pytest-benchmark regression tracking of the matrix query path."""
    config = bench_config("CDC")
    results = benchmark.pedantic(
        lambda: benchmark_oracles(
            "CDC", config, backends=("matrix",), num_queries=_NUM_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    assert results[0].num_queries == _NUM_QUERIES
