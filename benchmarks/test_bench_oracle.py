"""Distance-oracle benchmark: query-time speedup of the new backends.

The acceptance bars for the oracle subsystem: a precomputing backend
answers the default workload's shortest-path query mix at least 2x
faster than the seed behaviour (``LazyDijkstraOracle``), the batched
many-to-one dispatch path beats the per-source forward path >=5x, and
the contraction-hierarchy backend answers cold point-to-point queries
>=5x faster than lazy while staying competitive on the many-to-one mix
— all with results that agree pair-for-pair and with preprocessing
time reported honestly.  ``benchmark_oracles`` replays an identical,
realistically shaped query sequence (worker approach legs, pickup-gap
probes, route legs) against fresh instances of every backend and
cross-checks the answers; ``benchmark_dispatch_queries`` does the same
for the 32-workers-one-pickup dispatch shape and records the timings
in ``BENCH_dispatch.fresh.json`` (the committed ``BENCH_dispatch.json``
is the regression-gate baseline and is never written by tests).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.experiments.benchmarking import (
    CH_CACHE_ACCEPTANCE_SPEEDUP,
    CH_COLD_P2P_ACCEPTANCE_SPEEDUP,
    COARSEN_READINESS_ACCEPTANCE_SPEEDUP,
    CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
    MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
    PARALLEL_ACCEPTANCE_MIN_CPUS,
    PARALLEL_ACCEPTANCE_SHARDS,
    PARALLEL_ACCEPTANCE_SPEEDUP,
    SPATIAL_ACCEPTANCE_SPEEDUP,
    bench_scenario_identity,
    benchmark_ch_preprocessing_cache,
    benchmark_coarsening,
    benchmark_csr_kernel,
    benchmark_dispatch_queries,
    benchmark_oracles,
    benchmark_parallel_dispatch,
    benchmark_spatial_index,
    format_dispatch_bench_table,
    format_oracle_bench_table,
    format_parallel_bench_lines,
    write_dispatch_trajectory,
)
from repro.network.generators import grid_city
from repro.simulation.parallel import usable_cpu_count

from .conftest import bench_config

#: Query count of the timed mix; large enough that per-query dispatch
#: overhead dominates timer noise on every backend.
_NUM_QUERIES = 4000

#: Idle workers per dispatch round of the many-to-one benchmark (the
#: acceptance bar requires at least 32).
_DISPATCH_SOURCES = 32


@pytest.mark.parametrize("dataset", ("CDC", "NYC"))
def test_oracle_backends_speedup(dataset):
    """Matrix oracle must answer the default workload >=2x faster than lazy."""
    config = bench_config(dataset)
    results = {
        result.backend: result
        for result in benchmark_oracles(
            dataset, config, backends=("lazy", "landmark", "matrix", "ch"),
            num_queries=_NUM_QUERIES,
        )
    }
    print()
    print(
        format_oracle_bench_table(
            list(results.values()),
            title=f"Distance-oracle benchmark ({dataset}, {_NUM_QUERIES} queries)",
        )
    )
    lazy = results["lazy"]
    matrix = results["matrix"]
    assert matrix.query_seconds * 2.0 <= lazy.query_seconds, (
        f"matrix backend answered in {matrix.query_seconds:.4f}s, "
        f"needed <= half of lazy's {lazy.query_seconds:.4f}s"
    )
    # The precomputed backend never runs graph searches at query time.
    assert matrix.hit_rate == pytest.approx(1.0)


@pytest.fixture(scope="module")
def parallel_bench():
    """The sharded periodic-check benchmark, thread and process modes.

    The 1024-node / 256-worker mix of the acceptance bar: one periodic
    check's worth of many-to-one blocks, serial vs 4 shards, results
    cross-checked pair-for-pair (the benchmark itself raises when the
    deterministic reducer's merge diverges from the serial answers).
    """
    return [
        benchmark_parallel_dispatch(
            grid_dim=32,
            num_workers=256,
            num_shards=PARALLEL_ACCEPTANCE_SHARDS,
            mode=mode,
        )
        for mode in ("thread", "process")
    ]


@pytest.fixture(scope="module")
def ch_cache_bench():
    """Cold-vs-warm CH construction on the 1024-node benchmark city.

    The cold build contracts the graph and writes the preprocessing
    cache; the warm build restores from that file (what a fresh process
    with a warm ``oracle_cache_dir`` does).  Answers are cross-checked
    inside the benchmark.
    """
    return benchmark_ch_preprocessing_cache(grid_dim=32)


@pytest.fixture(scope="module")
def csr_kernel_bench():
    """dict vs csr reverse-PHAST sweep on the 1024-node benchmark city.

    The shared backward upward seeds are computed outside the timed
    region; each kernel then produces its native arrival representation
    for 96 cold targets, cross-checked value-for-value inside the
    benchmark.  Without numpy the result records ``applicable=False``.
    """
    return benchmark_csr_kernel(grid_dim=32)


@pytest.fixture(scope="module")
def coarsen_bench():
    """Overlay readiness (coarsen + inner CH) vs direct CH contraction.

    By default the direct full-graph contraction is *skipped* — at the
    acceptance shape (>=100k nodes) it takes tens of minutes, far past
    any CI ``timeout`` — and the result records ``applicable=False``;
    the committed ``BENCH_dispatch.json`` baseline carries the full
    measurement.  ``REPRO_BENCH_COARSEN_FULL=1`` opts into measuring the
    direct side at the full city shape, ``REPRO_BENCH_COARSEN_NODES``
    overrides the node count.  Every run — full or not — cross-checks
    sampled overlay answers against exact Dijkstras inside the
    benchmark, so the overlay side is always validated.
    """
    full = os.environ.get("REPRO_BENCH_COARSEN_FULL") == "1"
    nodes = int(
        os.environ.get("REPRO_BENCH_COARSEN_NODES", "102400" if full else "2304")
    )
    side = max(8, math.isqrt(nodes))
    return benchmark_coarsening(
        rows=side, cols=side, levels=4, measure_direct=full
    )


@pytest.fixture(scope="module")
def dispatch_bench(parallel_bench, ch_cache_bench, csr_kernel_bench, coarsen_bench):
    """One shared dispatch benchmark run over every registered backend.

    The query mix is the dispatch hot path: >=32 idle worker locations
    against one pickup node, each round on nodes no earlier round
    touched (one genuinely cold dispatch decision per round).  The
    timings — including each backend's honest ``precompute_seconds``,
    the CH acceptance ratios and the sharded periodic-check numbers —
    land in ``BENCH_dispatch.fresh.json`` next to the repository root
    (untracked) so the CI regression gate can compare them against the
    *committed* ``BENCH_dispatch.json`` baseline, which stays immutable
    unless a maintainer deliberately replaces it.
    """
    graph = grid_city(rows=32, cols=32, seed=3, jitter=0.3).graph
    results = benchmark_dispatch_queries(
        graph=graph, num_sources=_DISPATCH_SOURCES, num_rounds=24
    )
    spatial = benchmark_spatial_index(grid_dim=32, num_workers=256, num_searches=50)
    print()
    print(format_dispatch_bench_table(results, spatial))
    print(format_parallel_bench_lines(parallel_bench))
    trajectory = Path(__file__).parent.parent / "BENCH_dispatch.fresh.json"
    # The scenario block makes the artifact self-describing: which
    # graph, seed and backend set produced these numbers (same schema
    # as the CLI's `bench --dispatch --json` writer).
    scenario = bench_scenario_identity(
        graph,
        [result.backend for result in results],
        scenario="dispatch-bench",
        network="grid",
        grid_rows=32,
        grid_cols=32,
        seed=3,
    )
    write_dispatch_trajectory(
        trajectory,
        results,
        spatial,
        parallel_bench,
        ch_cache=ch_cache_bench,
        csr_kernel=csr_kernel_bench,
        coarsen=coarsen_bench,
        scenario=scenario,
    )
    return {result.backend: result for result in results}


def test_many_to_one_dispatch_speedup(dispatch_bench):
    """Reverse-SSSP batching must beat per-source forward Dijkstra >=5x.

    The lazy backend answers the batch with a single reverse-graph
    Dijkstra instead of one forward Dijkstra per worker location.
    """
    lazy = dispatch_bench["lazy"]
    assert lazy.num_sources >= 32
    assert (
        lazy.batched_seconds * MANY_TO_ONE_ACCEPTANCE_SPEEDUP
        <= lazy.forward_seconds
    ), (
        f"lazy many-to-one batch answered in {lazy.batched_seconds:.4f}s, "
        f"needed <= 1/5 of the per-source path's {lazy.forward_seconds:.4f}s"
    )
    # One reverse run per round replaces num_sources forward runs.
    assert lazy.reverse_sssp_runs == lazy.num_rounds


def test_ch_cold_point_to_point_speedup(dispatch_bench):
    """CH point-to-point must beat lazy's cold Dijkstra queries >=5x.

    Every dispatch round touches fresh nodes, so the per-source path is
    a cold point-to-point measurement: one full Dijkstra per query for
    ``lazy``, one bidirectional upward search for ``ch``.  The measured
    ratio (and the preprocessing time it has to amortise) is recorded
    in ``BENCH_dispatch.fresh.json`` by the shared fixture.
    """
    lazy = dispatch_bench["lazy"]
    ch = dispatch_bench["ch"]
    assert (
        ch.forward_seconds * CH_COLD_P2P_ACCEPTANCE_SPEEDUP
        <= lazy.forward_seconds
    ), (
        f"ch answered 768 cold point-to-point queries in "
        f"{ch.forward_seconds:.4f}s, needed <= 1/5 of lazy's "
        f"{lazy.forward_seconds:.4f}s"
    )
    # Preprocessing happened and was recorded honestly (a CH build over
    # a 1024-node city cannot be free).
    assert ch.precompute_seconds > 0.0
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.fresh.json").read_text()
    )
    assert (
        trajectory["ch"]["cold_p2p_speedup_vs_lazy"]
        >= CH_COLD_P2P_ACCEPTANCE_SPEEDUP
    )
    assert trajectory["ch"]["precompute_seconds"] == ch.precompute_seconds
    assert all(
        "precompute_seconds" in backend for backend in trajectory["backends"]
    )


def test_ch_many_to_one_competitive(dispatch_bench):
    """CH's bucket/reverse-PHAST batch must stay with the best backend.

    The PR-2 backends answer the 32-workers-one-pickup mix with one
    reverse Dijkstra (lazy/matrix) or an early-terminating backward
    search (landmark); CH replaces that with a backward upward search
    plus a linear downward sweep.  It is measured fastest of the four
    at this scale — the bar is <=2x the best of the others so a noisy
    CI runner cannot flake the build.
    """
    ch = dispatch_bench["ch"]
    others = [
        result for name, result in dispatch_bench.items() if name != "ch"
    ]
    best = min(result.batched_seconds for result in others)
    assert ch.batched_seconds <= 2.0 * best, (
        f"ch many-to-one took {ch.batched_seconds:.4f}s, best other "
        f"backend {best:.4f}s"
    )


def test_parallel_dispatch_recorded_and_consistent(parallel_bench, dispatch_bench):
    """The sharded benchmark ran at 4 shards and landed in the trajectory.

    Machine-independent properties: shard count, workload shape, the
    pair-for-pair serial/parallel agreement (checked inside the
    benchmark), and the acceptance block being recorded honestly —
    including the CPU count that decides whether the >=2x bar applies.
    """
    by_mode = {result.mode: result for result in parallel_bench}
    assert set(by_mode) == {"thread", "process"}
    for result in parallel_bench:
        assert result.num_shards == PARALLEL_ACCEPTANCE_SHARDS
        assert result.num_nodes >= 1024
        assert result.num_workers == 256
        # Workers share parking nodes; the oracle is queried per
        # distinct location and the trajectory records that honestly.
        assert 0 < result.num_unique_locations <= result.num_workers
        assert result.serial_seconds > 0.0 and result.parallel_seconds > 0.0
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.fresh.json").read_text()
    )
    recorded = trajectory["parallel_dispatch"]["modes"]
    assert set(recorded) == {"thread", "process"}
    block = trajectory["acceptance"]["parallel_dispatch_speedup_4_shards"]
    assert block["threshold"] == PARALLEL_ACCEPTANCE_SPEEDUP
    assert block["value"] == pytest.approx(by_mode["process"].speedup)
    assert block["available_cpus"] == by_mode["process"].available_cpus
    assert block["applicable"] == (
        by_mode["process"].effective_mode == "process"
        and by_mode["process"].available_cpus >= PARALLEL_ACCEPTANCE_MIN_CPUS
    )


def test_parallel_periodic_check_speedup(parallel_bench):
    """4 process shards must >=2x the periodic-check throughput.

    Process shards are hardware parallelism — four forked oracle
    handles working one check's many-to-one blocks concurrently — so
    the bar only means something where four shards can actually run at
    once.  On smaller machines the measured number is still recorded in
    ``BENCH_dispatch.fresh.json`` (with its CPU count) by the fixture above;
    the assertion itself needs the cores.
    """
    cpus = usable_cpu_count()
    process = next(r for r in parallel_bench if r.mode == "process")
    if process.effective_mode != "process":
        pytest.skip("fork unavailable: process shards degraded to threads")
    if cpus < PARALLEL_ACCEPTANCE_MIN_CPUS:
        pytest.skip(
            f"{PARALLEL_ACCEPTANCE_SHARDS} process shards need >= "
            f"{PARALLEL_ACCEPTANCE_MIN_CPUS} usable CPUs, have {cpus}"
        )
    assert process.speedup >= PARALLEL_ACCEPTANCE_SPEEDUP, (
        f"4-shard periodic check ran {process.parallel_seconds:.4f}s vs "
        f"serial {process.serial_seconds:.4f}s "
        f"({process.speedup:.2f}x, needed >= "
        f"{PARALLEL_ACCEPTANCE_SPEEDUP}x on {cpus} CPUs)"
    )


def test_ch_preprocessing_cache_warm_speedup(ch_cache_bench, dispatch_bench):
    """A warm oracle cache must stand the CH backend up >=5x faster.

    The warm build replays the persisted node order and shortcuts
    (linear in the augmented graph) instead of re-running the
    contraction pass with its witness searches — this is the measured
    close-out of the ROADMAP "persist the contraction order" item.  The
    ratio and the acceptance bar land in ``BENCH_dispatch.fresh.json``
    next to the other dispatch numbers.
    """
    assert ch_cache_bench.num_nodes >= 1024
    assert ch_cache_bench.loaded_from_cache, (
        "warm construction did not come from the disk cache"
    )
    assert (
        ch_cache_bench.warm_seconds * CH_CACHE_ACCEPTANCE_SPEEDUP
        <= ch_cache_bench.cold_seconds
    ), (
        f"warm CH construction took {ch_cache_bench.warm_seconds:.4f}s, "
        f"needed <= 1/{CH_CACHE_ACCEPTANCE_SPEEDUP:.0f} of the cold "
        f"contraction's {ch_cache_bench.cold_seconds:.4f}s"
    )
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.fresh.json").read_text()
    )
    recorded = trajectory["ch_cache"]
    assert recorded["speedup"] == pytest.approx(ch_cache_bench.speedup)
    block = trajectory["acceptance"]["ch_warm_construction_speedup"]
    assert block["threshold"] == CH_CACHE_ACCEPTANCE_SPEEDUP
    assert block["met"] and block["applicable"]
    # the artifact names the scenario that produced it
    assert trajectory["scenario"]["graph_hash"]
    assert trajectory["scenario"]["backends"]


def test_csr_kernel_sweep_speedup(csr_kernel_bench, dispatch_bench):
    """The csr reverse-PHAST sweep must beat the dict sweep >=3x.

    The timed unit is the downward sweep that turns one backward upward
    search into a full arrival representation — the stage the csr
    kernel vectorises, and the linear-time half of every wide
    many-to-one dispatch batch.  The shared fixture records the ratio
    (and the numpy-availability flag that decides whether the bar
    applies) in ``BENCH_dispatch.fresh.json``.
    """
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.fresh.json").read_text()
    )
    block = trajectory["acceptance"]["csr_many_to_one_speedup"]
    assert block["threshold"] == CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP
    assert block["value"] == pytest.approx(csr_kernel_bench.speedup)
    assert block["applicable"] == csr_kernel_bench.applicable
    assert trajectory["csr_kernel"]["num_nodes"] >= 1024
    if not csr_kernel_bench.applicable:
        pytest.skip("numpy unavailable: csr kernel ran the dict path")
    assert csr_kernel_bench.speedup >= CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP, (
        f"csr sweep answered 96 cold targets in "
        f"{csr_kernel_bench.csr_seconds:.4f}s, needed <= "
        f"1/{CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP:.0f} of the dict sweep's "
        f"{csr_kernel_bench.dict_seconds:.4f}s "
        f"({csr_kernel_bench.speedup:.2f}x)"
    )


def test_coarsen_readiness(coarsen_bench, dispatch_bench):
    """Overlay readiness must beat direct CH contraction >=10x at scale.

    The shared fixture records the measurement (and whether the direct
    side actually ran) in ``BENCH_dispatch.fresh.json``; the asserted
    bar only applies when ``REPRO_BENCH_COARSEN_FULL=1`` measured the
    direct contraction — otherwise the committed baseline carries the
    full-shape numbers and this test checks the honesty invariants of
    the fresh record.
    """
    trajectory = json.loads(
        (Path(__file__).parent.parent / "BENCH_dispatch.fresh.json").read_text()
    )
    block = trajectory["acceptance"]["coarsen_readiness_speedup"]
    assert block["threshold"] == COARSEN_READINESS_ACCEPTANCE_SPEEDUP
    assert block["value"] == pytest.approx(coarsen_bench.speedup)
    assert block["applicable"] == coarsen_bench.applicable
    recorded = trajectory["coarsen"]
    # The coarsening genuinely compressed the graph, readiness cost was
    # recorded honestly, and the sampled overlay answers stayed within
    # the certified bound (the benchmark raises otherwise).
    assert 0 < recorded["coarse_nodes"] < recorded["num_nodes"]
    assert recorded["overlay_ready_seconds"] > 0.0
    assert recorded["max_relative_error"] <= recorded["error_bound"] + 1e-9
    if not coarsen_bench.applicable:
        pytest.skip(
            "direct full-graph contraction skipped "
            "(set REPRO_BENCH_COARSEN_FULL=1 to measure it)"
        )
    assert coarsen_bench.speedup >= COARSEN_READINESS_ACCEPTANCE_SPEEDUP, (
        f"overlay ready in {coarsen_bench.overlay_ready_seconds:.1f}s, "
        f"direct contraction {coarsen_bench.direct_ch_seconds:.1f}s "
        f"({coarsen_bench.speedup:.1f}x, needed "
        f">={COARSEN_READINESS_ACCEPTANCE_SPEEDUP:.0f}x)"
    )


def test_spatial_index_speeds_up_find_worker_for():
    """The ring-expanding search must beat the full-fleet scan.

    On a >=1k-node network with a large fleet the pruned search may
    examine only a fraction of the workers (deterministic) and must be
    measurably faster end-to-end (wall clock, generous 1.2x bar to stay
    robust on noisy CI runners).
    """
    spatial = benchmark_spatial_index(
        grid_dim=32, num_workers=256, num_searches=60, repeats=5
    )
    assert spatial.num_nodes >= 1000
    # Deterministic pruning: well under half the fleet examined.
    assert spatial.candidates_fraction < 0.5
    assert (
        spatial.indexed_seconds * SPATIAL_ACCEPTANCE_SPEEDUP
        <= spatial.scan_seconds
    ), (
        f"ring search took {spatial.indexed_seconds:.4f}s, "
        f"scan {spatial.scan_seconds:.4f}s"
    )


def test_oracle_query_benchmark(benchmark):
    """pytest-benchmark regression tracking of the matrix query path."""
    config = bench_config("CDC")
    results = benchmark.pedantic(
        lambda: benchmark_oracles(
            "CDC", config, backends=("matrix",), num_queries=_NUM_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    assert results[0].num_queries == _NUM_QUERIES
