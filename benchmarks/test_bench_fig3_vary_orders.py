"""Figure 3 — performance while varying the number of riders ``n``.

The paper sweeps n over {0.50, 0.75, 1.00, 1.25} x the dataset default
and reports Extra Time, Unified Cost, Service Rate and Running Time for
WATTER-expect / WATTER-online / WATTER-timeout / GDP / GAS on NYC, CDC
and XIA.  This benchmark regenerates the same series (scaled workloads,
see EXPERIMENTS.md) and prints them as text tables; pytest-benchmark
times one representative cell so algorithmic slow-downs are caught.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import format_full_sweep_report
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import vary_num_orders

from .conftest import BENCH_ALGORITHMS, bench_config

_FRACTIONS = (0.50, 0.75, 1.00, 1.25)


@pytest.mark.parametrize("dataset", ("CDC", "NYC", "XIA"))
def test_fig3_vary_orders_series(dataset, benchmark):
    """Regenerate the Figure 3 panels for one dataset."""
    base = bench_config(dataset, num_orders=100, num_workers=20)
    sweep = benchmark.pedantic(
        lambda: vary_num_orders(
            dataset,
            fractions=_FRACTIONS,
            base_config=base,
            algorithms=BENCH_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"=== Figure 3 ({dataset}): varying the number of orders ===")
    print(format_full_sweep_report(sweep))
    # Structural checks: every cell of the figure is present.
    assert sweep.values() == [float(f) for f in _FRACTIONS]
    assert set(sweep.algorithms()) == set(BENCH_ALGORITHMS)
    for algorithm in BENCH_ALGORITHMS:
        assert len(sweep.series(algorithm, "total_extra_time")) == len(_FRACTIONS)
    # Shape check mirroring the paper: the pooling framework serves at
    # least as many orders as the non-sharing floor at the default point.
    expect_rate = sweep.series("WATTER-expect", "service_rate")[2]
    floor_rate = sweep.series("NonSharing", "service_rate")[2]
    assert expect_rate >= floor_rate - 0.05


def test_fig3_default_cell_benchmark(benchmark):
    """Time the default-n cell (all algorithms, CDC) for regression tracking."""
    config = bench_config("CDC", num_orders=60, num_workers=14, horizon=1200.0)

    def run():
        return run_comparison(
            "CDC", config, algorithms=("WATTER-online", "GDP", "NonSharing")
        )

    metrics = benchmark(run)
    assert len(metrics) == 3
