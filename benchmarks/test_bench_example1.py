"""Example 1 / Figure 1 — the worked example of the introduction.

Reruns the four strategies of Example 1 on the 6-node road network and
prints the total worker travel time of each, verifying the qualitative
claim that pooling-then-grouping beats both immediate dispatch and
fixed batching.
"""

from __future__ import annotations

from repro.experiments.worked_example import run_worked_example


def test_example1_strategy_comparison(benchmark):
    """Regenerate the Example 1 comparison table."""
    result = benchmark.pedantic(run_worked_example, rounds=1, iterations=1)
    print()
    print("=== Example 1 (Figure 1 network, Table I orders) ===")
    for name, total in result.as_dict().items():
        print(f"{name:<28} total worker travel time = {total:7.1f} s")
    assert result.pooling <= result.non_sharing
    assert result.pooling <= result.batch


def test_example1_benchmark(benchmark):
    """Time the worked example end to end."""
    result = benchmark(run_worked_example)
    assert result.pooling > 0.0
