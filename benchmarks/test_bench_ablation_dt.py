"""Appendix G ablation — sensitivity to the decision time slot ``delta_t``.

A larger time slot means fewer, cheaper pool checks but coarser hold /
dispatch decisions.  The paper chose delta_t = 10 seconds.
"""

from __future__ import annotations

from repro.experiments.ablations import vary_time_slot
from repro.experiments.reporting import format_sweep_table

from .conftest import WATTER_ALGORITHMS, bench_config

_SLOTS = (5.0, 10.0, 20.0, 30.0)


def test_ablation_time_slot_series(benchmark):
    """Regenerate the time-slot ablation on the CDC-like workload."""
    base = bench_config("CDC", num_orders=80, num_workers=16)
    sweep = benchmark.pedantic(
        lambda: vary_time_slot(
            "CDC",
            time_slots=_SLOTS,
            base_config=base,
            algorithms=WATTER_ALGORITHMS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Appendix G: decision time-slot (delta_t) ablation (CDC) ===")
    print(format_sweep_table(sweep, "total_extra_time"))
    print()
    print(format_sweep_table(sweep, "running_time_per_order"))
    assert sweep.values() == [float(slot) for slot in _SLOTS]
    # Fewer checks -> lower running time per order for the pool-based methods.
    for algorithm in ("WATTER-online", "WATTER-timeout"):
        times = sweep.series(algorithm, "running_time_per_order")
        assert times[-1] <= times[0] * 1.5


def test_ablation_time_slot_benchmark(benchmark):
    """Time one WATTER-online run at the default delta_t."""
    from repro.experiments.runner import run_comparison

    config = bench_config("CDC", num_orders=60, num_workers=14, time_slot=10.0)

    def run():
        return run_comparison("CDC", config, algorithms=("WATTER-online",))

    metrics = benchmark(run)
    assert metrics[0].algorithm == "WATTER-online"
