#!/usr/bin/env python3
"""CI benchmark-regression gate over ``BENCH_dispatch.json`` trajectories.

Compares a freshly measured dispatch-benchmark trajectory against the
committed baseline and fails (exit code 1) when the hot path got
meaningfully slower:

* **Ratio regressions** — every recorded speedup *ratio* (per-backend
  many-to-one speedup, the CH cold point-to-point speedup, the
  spatial-index speedup, the sharded periodic-check speedup) must not
  degrade by more than ``--tolerance`` (default 30%) versus the
  baseline.  Ratios divide out absolute machine speed, so a faster or
  slower runner does not trip the gate — only a change in the *shape*
  of the performance does.  The parallel-dispatch ratios additionally
  depend on the core count, so they are only compared when baseline
  and candidate ran with the same number of usable CPUs.
* **Acceptance flips** — every bar in the trajectory's ``acceptance``
  section (value, threshold, met, applicable) that the baseline met
  while applicable must still be met by an applicable candidate.
  A bar that is not applicable on either side (e.g. the >=2x
  process-shard bar on a single-core container, or the csr-kernel bar
  without numpy) is reported, not failed.

The report keeps the three outcomes visibly distinct: ``ok:`` lines are
comparisons that ran and passed, ``skip:`` lines are comparisons that
could not meaningfully run on this machine (with the reason), and
``FAIL:`` lines are genuine regressions — so a build where half the
bars silently skipped can never masquerade as one where they passed.

Usage::

    python benchmarks/check_regression.py BASELINE CANDIDATE [--tolerance 0.3]

The script is dependency-free on purpose: the gate must be able to
judge a trajectory even when the library itself is broken.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.30


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read trajectory {path!r}: {exc}")


def _fmt(value) -> str:
    """Format a possibly-missing numeric field without crashing the gate."""
    if isinstance(value, (int, float)):
        return f"{value:.2f}"
    return repr(value)


def collect_ratios(trajectory: dict) -> dict[str, float]:
    """Named speedup ratios recorded in a trajectory.

    Only ratios are collected — absolute seconds depend on machine
    speed and would make the gate flake across runner generations.
    """
    ratios: dict[str, float] = {}
    for entry in trajectory.get("backends", []):
        name = entry.get("backend", "?")
        if "speedup" in entry:
            ratios[f"backend.{name}.many_to_one_speedup"] = entry["speedup"]
    ch = trajectory.get("ch", {})
    if "cold_p2p_speedup_vs_lazy" in ch:
        ratios["ch.cold_p2p_speedup_vs_lazy"] = ch["cold_p2p_speedup_vs_lazy"]
    spatial = trajectory.get("spatial_index", {})
    if "speedup" in spatial:
        ratios["spatial_index.speedup"] = spatial["speedup"]
    ch_cache = trajectory.get("ch_cache", {})
    if "speedup" in ch_cache:
        ratios["ch_cache.warm_construction_speedup"] = ch_cache["speedup"]
    csr = trajectory.get("csr_kernel", {})
    if "speedup" in csr and csr.get("applicable", True):
        # Without numpy both timings exercised the dict path and the
        # recorded 0.0 "ratio" carries no information; leaving it out
        # here routes the comparison to a skip, not a failure.
        ratios["csr_kernel.many_to_one_sweep_speedup"] = csr["speedup"]
    coarsen = trajectory.get("coarsen", {})
    if "speedup" in coarsen and coarsen.get("applicable", True):
        # When the direct full-graph contraction was skipped for time
        # (the default outside REPRO_BENCH_COARSEN_FULL=1 runs) the
        # recorded 0.0 "ratio" carries no information; leaving it out
        # routes the comparison to a skip, not a failure.
        ratios["coarsen.readiness_speedup"] = coarsen["speedup"]
    return ratios


def collect_parallel_ratios(trajectory: dict) -> dict[str, tuple[float, int]]:
    """Sharded periodic-check speedups with the CPU count they ran on."""
    ratios: dict[str, tuple[float, int]] = {}
    modes = trajectory.get("parallel_dispatch", {}).get("modes", {})
    for mode, entry in modes.items():
        if "speedup" in entry:
            ratios[f"parallel_dispatch.{mode}.speedup"] = (
                entry["speedup"],
                int(entry.get("available_cpus", 0)),
            )
    return ratios


def compare(
    baseline: dict, candidate: dict, tolerance: float
) -> tuple[list[str], list[str], list[str]]:
    """Return ``(failures, skips, notes)`` of candidate vs baseline.

    ``failures`` are genuine regressions; ``skips`` are comparisons
    that could not meaningfully run on this machine (CPU-count
    mismatch, bar not applicable) with the reason; ``notes`` are
    comparisons that ran and passed.
    """
    failures: list[str] = []
    skips: list[str] = []
    notes: list[str] = []

    base_ratios = collect_ratios(baseline)
    cand_ratios = collect_ratios(candidate)
    for name, base_value in sorted(base_ratios.items()):
        cand_value = cand_ratios.get(name)
        if cand_value is None:
            if name.startswith("csr_kernel.") and not candidate.get(
                "csr_kernel", {}
            ).get("applicable", True):
                skips.append(
                    f"{name}: csr kernel not applicable on candidate "
                    f"(numpy unavailable)"
                )
                continue
            if name.startswith("coarsen.") and not candidate.get(
                "coarsen", {}
            ).get("applicable", True):
                skips.append(
                    f"{name}: direct full-graph contraction skipped on "
                    f"candidate (REPRO_BENCH_COARSEN_FULL not set)"
                )
                continue
            failures.append(f"{name}: missing from candidate trajectory")
            continue
        floor = base_value * (1.0 - tolerance)
        if cand_value < floor:
            failures.append(
                f"{name}: {cand_value:.2f} degraded more than "
                f"{tolerance:.0%} below baseline {base_value:.2f} "
                f"(floor {floor:.2f})"
            )
        else:
            notes.append(
                f"{name}: {cand_value:.2f} vs baseline {base_value:.2f} ok"
            )

    base_parallel = collect_parallel_ratios(baseline)
    cand_parallel = collect_parallel_ratios(candidate)
    for name, (base_value, base_cpus) in sorted(base_parallel.items()):
        entry = cand_parallel.get(name)
        if entry is None:
            failures.append(f"{name}: missing from candidate trajectory")
            continue
        cand_value, cand_cpus = entry
        if base_cpus != cand_cpus:
            skips.append(
                f"{name}: baseline ran on {base_cpus} CPUs, candidate on "
                f"{cand_cpus} — shard speedups only compare like-for-like"
            )
            continue
        floor = base_value * (1.0 - tolerance)
        if cand_value < floor:
            failures.append(
                f"{name}: {cand_value:.2f} degraded more than "
                f"{tolerance:.0%} below baseline {base_value:.2f} "
                f"(floor {floor:.2f}, {cand_cpus} CPUs both sides)"
            )
        else:
            notes.append(
                f"{name}: {cand_value:.2f} vs baseline {base_value:.2f} ok"
            )

    base_acceptance = baseline.get("acceptance", {})
    cand_acceptance = candidate.get("acceptance", {})
    for name, base_block in sorted(base_acceptance.items()):
        cand_block = cand_acceptance.get(name)
        if cand_block is None:
            failures.append(f"acceptance.{name}: missing from candidate")
            continue
        base_ok = bool(base_block.get("met")) and base_block.get(
            "applicable", True
        )
        cand_applicable = cand_block.get("applicable", True)
        if not cand_applicable:
            skips.append(
                f"acceptance.{name}: not applicable on this machine "
                f"(value {cand_block.get('value')})"
            )
            continue
        if not cand_block.get("met"):
            if base_ok:
                failures.append(
                    f"acceptance.{name}: FLIPPED — baseline met the "
                    f"{base_block.get('threshold')} bar at "
                    f"{_fmt(base_block.get('value'))}, candidate measured "
                    f"{_fmt(cand_block.get('value'))}"
                )
            else:
                # The baseline machine never held this bar (e.g. a
                # 1-CPU container for the process-shard bar), so there
                # is no flip to detect.  The absolute bar itself is
                # asserted by the benchmark suite that produced the
                # candidate trajectory — failing here too would double-
                # report the same measurement; warn loudly instead.
                skips.append(
                    f"acceptance.{name}: WARNING — applicable here but "
                    f"below the {cand_block.get('threshold')} bar "
                    f"(measured {_fmt(cand_block.get('value'))}; baseline "
                    f"machine could not measure it). The benchmark "
                    f"suite's own assertion enforces this bar."
                )
        else:
            notes.append(
                f"acceptance.{name}: still met "
                f"({_fmt(cand_block.get('value'))} >= "
                f"{cand_block.get('threshold')})"
            )
    return failures, skips, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_dispatch.json")
    parser.add_argument("candidate", help="freshly measured trajectory")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional ratio degradation (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must lie in [0, 1)")
    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    failures, skips, notes = compare(baseline, candidate, args.tolerance)
    for note in notes:
        print(f"  ok: {note}")
    for skip in skips:
        print(f"  skip: {skip}")
    summary = (
        f"{len(notes)} passed, {len(skips)} skipped, {len(failures)} failed"
    )
    if failures:
        print(
            f"\nBENCHMARK REGRESSION GATE FAILED ({summary}):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate passed ({summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
