"""Unit tests for the learning substrate: MLP, replay memory, value network."""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY, np
from repro.config import LearningConfig
from repro.exceptions import LearningError
from repro.learning.mlp import MLP
from repro.learning.replay import ReplayMemory, Transition
from repro.learning.value_function import ValueNetwork, ValueThresholdProvider
from repro.core.state import StateEncoder
from repro.network.grid import GridIndex
from tests.conftest import make_order

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="this module tests numpy-only subsystems"
)


class TestMLP:
    def test_rejects_bad_shapes(self):
        with pytest.raises(LearningError):
            MLP(input_dim=0)
        with pytest.raises(LearningError):
            MLP(input_dim=4, hidden_sizes=())

    def test_predict_shapes(self):
        net = MLP(input_dim=3, hidden_sizes=(8,), seed=0)
        single = net.predict(np.zeros(3))
        batch = net.predict(np.zeros((5, 3)))
        assert single.shape == (1,)
        assert batch.shape == (5,)

    def test_dimension_mismatch_raises(self):
        net = MLP(input_dim=3, hidden_sizes=(8,), seed=0)
        with pytest.raises(LearningError):
            net.predict(np.zeros(4))

    def test_batch_size_mismatch_raises(self):
        net = MLP(input_dim=3, hidden_sizes=(8,), seed=0)
        with pytest.raises(LearningError):
            net.train_batch(np.zeros((4, 3)), np.zeros(3))

    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(256, 4))
        targets = inputs @ np.array([1.0, -2.0, 0.5, 3.0]) + 0.7
        net = MLP(input_dim=4, hidden_sizes=(32, 16), learning_rate=5e-3, seed=1)
        losses = []
        for _ in range(300):
            idx = rng.integers(0, 256, size=64)
            losses.append(net.train_batch(inputs[idx], targets[idx]))
        assert losses[-1] < losses[0] * 0.2

    def test_parameter_roundtrip(self):
        net = MLP(input_dim=3, hidden_sizes=(8,), seed=2)
        other = MLP(input_dim=3, hidden_sizes=(8,), seed=3)
        other.set_parameters(net.get_parameters())
        probe = np.ones(3)
        assert other.predict_one(probe) == pytest.approx(net.predict_one(probe))

    def test_parameter_shape_mismatch(self):
        net = MLP(input_dim=3, hidden_sizes=(8,), seed=2)
        other = MLP(input_dim=3, hidden_sizes=(4,), seed=3)
        with pytest.raises(LearningError):
            other.set_parameters(net.get_parameters())


class TestReplayMemory:
    def _transition(self, value=0.0):
        return Transition(
            state=np.array([value]),
            action=1,
            reward=value,
            next_state=None,
            done=True,
            penalty=10.0,
        )

    def test_rejects_bad_capacity(self):
        with pytest.raises(LearningError):
            ReplayMemory(capacity=0)

    def test_push_and_len(self):
        memory = ReplayMemory(capacity=5)
        memory.push(self._transition())
        assert len(memory) == 1

    def test_eviction_when_full(self):
        memory = ReplayMemory(capacity=3)
        memory.extend([self._transition(float(i)) for i in range(5)])
        assert len(memory) == 3
        rewards = {t.reward for t in memory.sample(3)}
        assert rewards.issubset({2.0, 3.0, 4.0})

    def test_sample_empty_raises(self):
        with pytest.raises(LearningError):
            ReplayMemory(capacity=3).sample(1)

    def test_sample_larger_than_buffer(self):
        memory = ReplayMemory(capacity=10, seed=1)
        memory.push(self._transition(1.0))
        batch = memory.sample(4)
        assert len(batch) == 4

    def test_clear(self):
        memory = ReplayMemory(capacity=3)
        memory.push(self._transition())
        memory.clear()
        assert len(memory) == 0


class TestValueNetwork:
    def _make(self, omega=0.5):
        config = LearningConfig(
            hidden_sizes=(16,), epochs=1, batch_size=8, loss_weight=omega, seed=0
        )
        return ValueNetwork(input_dim=4, config=config), config

    def test_train_on_empty_batch_raises(self):
        network, _ = self._make()
        with pytest.raises(LearningError):
            network.train_on_batch([])

    def test_terminal_td_target_is_reward(self):
        network, _ = self._make(omega=1.0)
        transition = Transition(
            state=np.ones(4),
            action=1,
            reward=42.0,
            next_state=None,
            done=True,
            penalty=100.0,
            target_threshold=None,
        )
        assert network._combined_target(transition) == pytest.approx(42.0)

    def test_target_loss_anchor(self):
        network, _ = self._make(omega=0.0)
        transition = Transition(
            state=np.ones(4),
            action=1,
            reward=42.0,
            next_state=None,
            done=True,
            penalty=100.0,
            target_threshold=30.0,
        )
        # omega = 0 -> pure target loss -> regression target is p - theta*.
        assert network._combined_target(transition) == pytest.approx(70.0)

    def test_training_reduces_loss(self):
        network, _ = self._make(omega=1.0)
        rng = np.random.default_rng(0)
        transitions = [
            Transition(
                state=rng.normal(size=4),
                action=1,
                reward=float(rng.normal(5.0)),
                next_state=None,
                done=True,
                penalty=10.0,
            )
            for _ in range(64)
        ]
        first = network.train_on_batch(transitions)
        for _ in range(100):
            last = network.train_on_batch(transitions)
        assert last < first

    def test_target_sync(self):
        network, _ = self._make()
        probe = np.ones(4)
        network.main.train_batch(probe.reshape(1, -1), np.array([5.0]))
        assert network.target.predict_one(probe) != pytest.approx(
            network.main.predict_one(probe)
        )
        network.sync_target()
        assert network.target.predict_one(probe) == pytest.approx(
            network.main.predict_one(probe)
        )


class TestValueThresholdProvider:
    def test_threshold_clipped_into_penalty_range(self, small_network):
        grid = GridIndex(small_network, size=3)
        encoder = StateEncoder(grid, time_slot=10.0, horizon=1800.0)
        config = LearningConfig(hidden_sizes=(8,), seed=0)
        network = ValueNetwork(encoder.dimension, config)
        provider = ValueThresholdProvider(network, encoder)
        order = make_order(small_network, 0, 35)
        theta = provider.threshold(order, now=order.release_time)
        assert 0.0 <= theta <= order.penalty

    def test_estimated_value_matches_network(self, small_network):
        grid = GridIndex(small_network, size=3)
        encoder = StateEncoder(grid, time_slot=10.0, horizon=1800.0)
        config = LearningConfig(hidden_sizes=(8,), seed=0)
        network = ValueNetwork(encoder.dimension, config)
        provider = ValueThresholdProvider(network, encoder)
        order = make_order(small_network, 0, 35)
        value = provider.estimated_value(order, now=order.release_time)
        state = encoder.encode(order, order.release_time).vector
        assert value == pytest.approx(network.value(state))
