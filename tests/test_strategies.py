"""Unit tests for the dispatch decision strategies (Algorithm 2 and variants)."""

from __future__ import annotations


from repro.core.strategies import (
    ConstantThresholdProvider,
    OnlineStrategy,
    ThresholdStrategy,
    TimeoutStrategy,
)
from repro.model.group import Group
from repro.model.route import Route, RouteStop, StopKind
from tests.conftest import make_order


def _pair_group(network, deadline_scale=1.8, release=0.0, watch_scale=0.8):
    first = make_order(
        network, 0, 24, release=release, deadline_scale=deadline_scale, watch_scale=watch_scale
    )
    second = make_order(
        network, 6, 30, release=release, deadline_scale=deadline_scale, watch_scale=watch_scale
    )
    stops = [
        RouteStop(first.pickup, first.order_id, StopKind.PICKUP),
        RouteStop(second.pickup, second.order_id, StopKind.PICKUP),
        RouteStop(first.dropoff, first.order_id, StopKind.DROPOFF),
        RouteStop(second.dropoff, second.order_id, StopKind.DROPOFF),
    ]
    return Group(orders=(first, second), route=Route(stops, network))


class TestOnlineStrategy:
    def test_always_dispatches(self, small_network):
        group = _pair_group(small_network)
        strategy = OnlineStrategy()
        assert strategy.should_dispatch(group, 0.0)
        assert strategy.should_dispatch(group, 10_000.0)

    def test_dispatches_unpaired_immediately_flag(self):
        assert OnlineStrategy().dispatches_unpaired_immediately
        assert not TimeoutStrategy().dispatches_unpaired_immediately
        assert not ThresholdStrategy(
            ConstantThresholdProvider(10.0)
        ).dispatches_unpaired_immediately

    def test_describe(self):
        assert OnlineStrategy().describe() == "WATTER-online"


class TestTimeoutStrategy:
    def test_holds_young_groups(self, small_network):
        group = _pair_group(small_network)
        strategy = TimeoutStrategy(check_period=10.0)
        assert not strategy.should_dispatch(group, 10.0)

    def test_dispatches_at_watch_window(self, small_network):
        group = _pair_group(small_network)
        strategy = TimeoutStrategy(check_period=10.0)
        assert strategy.should_dispatch(group, group.earliest_timeout() + 1.0)

    def test_dispatches_before_expiration(self, small_network):
        group = _pair_group(small_network, deadline_scale=1.3, watch_scale=2.0)
        strategy = TimeoutStrategy(check_period=10.0)
        just_before_expiry = group.expiration_time(0.0) - 1.0
        assert strategy.should_dispatch(group, just_before_expiry)


class TestThresholdStrategy:
    def test_dispatches_good_groups(self, small_network):
        group = _pair_group(small_network)
        generous = ThresholdStrategy(ConstantThresholdProvider(1e9), check_period=10.0)
        assert generous.should_dispatch(group, 10.0)

    def test_holds_bad_groups(self, small_network):
        group = _pair_group(small_network)
        strict = ThresholdStrategy(ConstantThresholdProvider(0.0), check_period=10.0)
        # average extra time is strictly positive here (pair detours), so a
        # zero threshold refuses the dispatch while the group is young.
        assert group.average_extra_time(10.0) > 0.0
        assert not strict.should_dispatch(group, 10.0)

    def test_threshold_boundary_is_inclusive(self, small_network):
        group = _pair_group(small_network)
        now = 10.0
        exact = ThresholdStrategy(
            ConstantThresholdProvider(group.average_extra_time(now)), check_period=10.0
        )
        assert exact.should_dispatch(group, now)

    def test_timeout_overrides_threshold(self, small_network):
        group = _pair_group(small_network)
        strict = ThresholdStrategy(ConstantThresholdProvider(0.0), check_period=10.0)
        assert strict.should_dispatch(group, group.earliest_timeout() + 1.0)

    def test_near_expiry_overrides_threshold(self, small_network):
        group = _pair_group(small_network, deadline_scale=1.3, watch_scale=2.0)
        strict = ThresholdStrategy(ConstantThresholdProvider(0.0), check_period=10.0)
        just_before_expiry = group.expiration_time(0.0) - 1.0
        assert strict.should_dispatch(group, just_before_expiry)

    def test_provider_is_exposed(self):
        provider = ConstantThresholdProvider(5.0)
        assert ThresholdStrategy(provider).provider is provider


class TestConstantThresholdProvider:
    def test_returns_constant(self, small_network):
        provider = ConstantThresholdProvider(123.0)
        order = make_order(small_network, 0, 5)
        assert provider.threshold(order, 0.0) == 123.0
        assert provider.threshold(order, 999.0) == 123.0
