"""Unit tests for the synthetic workload generators and CSV I/O."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.datasets.io import (
    orders_from_csv,
    orders_to_csv,
    raw_trips_to_orders,
    workers_from_csv,
    workers_to_csv,
)
from repro.datasets.synthetic import CityModel, DemandHotspot, PeakPeriod
from repro.datasets.workloads import (
    DATASET_NAMES,
    build_workload,
    city_by_name,
)
from repro.exceptions import DatasetError
from repro.network.generators import grid_city


@pytest.fixture
def tiny_config():
    return SimulationConfig(
        num_orders=40,
        num_workers=6,
        horizon=1800.0,
        deadline_scale=1.6,
        watch_window_scale=0.8,
        seed=11,
    )


class TestCityModel:
    def test_requires_hotspots(self):
        network = grid_city(rows=4, cols=4, seed=0)
        with pytest.raises(DatasetError):
            CityModel(
                name="bad",
                network=network,
                pickup_hotspots=[],
                dropoff_hotspots=[DemandHotspot(0, 0, 1.0)],
            )

    def test_uniform_fraction_bounds(self):
        network = grid_city(rows=4, cols=4, seed=0)
        with pytest.raises(DatasetError):
            CityModel(
                name="bad",
                network=network,
                pickup_hotspots=[DemandHotspot(0, 0, 1.0)],
                dropoff_hotspots=[DemandHotspot(0, 0, 1.0)],
                uniform_fraction=1.5,
            )

    def test_arrival_rate_multiplier(self):
        network = grid_city(rows=4, cols=4, seed=0)
        city = CityModel(
            name="peaky",
            network=network,
            pickup_hotspots=[DemandHotspot(0, 0, 1.0)],
            dropoff_hotspots=[DemandHotspot(3, 3, 1.0)],
            peak_periods=[PeakPeriod(start=100.0, end=200.0, intensity=3.0)],
        )
        assert city.arrival_rate_multiplier(50.0) == 1.0
        assert city.arrival_rate_multiplier(150.0) == 3.0
        assert city.arrival_rate_multiplier(250.0) == 1.0


class TestWorkloadGeneration:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_presets_generate(self, dataset, tiny_config):
        workload = build_workload(dataset, tiny_config)
        assert workload.name == dataset
        assert len(workload.orders) > 0
        assert len(workload.workers) == tiny_config.num_workers

    def test_orders_sorted_by_release(self, tiny_config):
        workload = build_workload("CDC", tiny_config)
        releases = [order.release_time for order in workload.orders]
        assert releases == sorted(releases)

    def test_order_invariants(self, tiny_config):
        workload = build_workload("CDC", tiny_config)
        for order in workload.orders:
            assert order.pickup != order.dropoff
            assert order.shortest_time > 0
            assert order.deadline == pytest.approx(
                order.release_time + tiny_config.deadline_scale * order.shortest_time
            )
            assert order.wait_limit == pytest.approx(
                tiny_config.watch_window_scale * order.shortest_time
            )
            assert 0.0 <= order.release_time <= tiny_config.horizon

    def test_worker_invariants(self, tiny_config):
        workload = build_workload("XIA", tiny_config)
        for worker in workload.workers:
            assert 2 <= worker.capacity <= tiny_config.max_capacity
            assert worker.location in workload.network

    def test_generation_is_deterministic(self, tiny_config):
        first = build_workload("CDC", tiny_config)
        second = build_workload("CDC", tiny_config)
        assert [(o.pickup, o.dropoff, o.release_time) for o in first.orders] == [
            (o.pickup, o.dropoff, o.release_time) for o in second.orders
        ]

    def test_different_seeds_differ(self, tiny_config):
        other = tiny_config.with_overrides(seed=99)
        first = build_workload("CDC", tiny_config)
        second = build_workload("CDC", other)
        assert [(o.pickup, o.dropoff) for o in first.orders] != [
            (o.pickup, o.dropoff) for o in second.orders
        ]

    def test_city_by_name_rejects_unknown(self):
        with pytest.raises(DatasetError):
            city_by_name("LONDON")

    def test_nyc_demand_is_more_concentrated_than_xia(self, tiny_config):
        from repro.network.grid import GridIndex

        config = tiny_config.with_overrides(num_orders=150)
        nyc = build_workload("NYC", config)
        xia = build_workload("XIA", config)

        def top_cell_share(workload):
            """Fraction of pickups falling in the busiest 20% of grid cells."""
            grid = GridIndex(workload.network, size=5)
            counts = sorted(
                grid.density([order.pickup for order in workload.orders]), reverse=True
            )
            top = counts[: max(grid.num_cells // 5, 1)]
            return sum(top) / max(sum(counts), 1)

        assert top_cell_share(nyc) > top_cell_share(xia)


class TestCsvRoundTrip:
    def test_orders_round_trip(self, tiny_config, tmp_path):
        workload = build_workload("CDC", tiny_config)
        path = tmp_path / "orders.csv"
        orders_to_csv(workload.orders, path)
        loaded = orders_from_csv(path)
        assert len(loaded) == len(workload.orders)
        original = {(o.order_id, o.pickup, o.dropoff) for o in workload.orders}
        restored = {(o.order_id, o.pickup, o.dropoff) for o in loaded}
        assert original == restored

    def test_workers_round_trip(self, tiny_config, tmp_path):
        workload = build_workload("CDC", tiny_config)
        path = tmp_path / "workers.csv"
        workers_to_csv(workload.workers, path)
        loaded = workers_from_csv(path)
        assert {(w.worker_id, w.location, w.capacity) for w in loaded} == {
            (w.worker_id, w.location, w.capacity) for w in workload.workers
        }

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(DatasetError):
            orders_from_csv(path)
        with pytest.raises(DatasetError):
            workers_from_csv(path)

    def test_raw_trips_to_orders(self, tiny_config):
        network = grid_city(rows=4, cols=4, jitter=0.0, seed=0)
        rows = [
            {"pickup_x": 0.1, "pickup_y": 0.1, "dropoff_x": 3.0, "dropoff_y": 3.0,
             "release_time": 5.0},
            {"pickup_x": 1.0, "pickup_y": 1.0, "dropoff_x": 1.0, "dropoff_y": 1.0,
             "release_time": 9.0},  # degenerate: same node -> skipped
        ]
        orders = raw_trips_to_orders(rows, network, tiny_config)
        assert len(orders) == 1
        assert orders[0].release_time == 5.0
        assert orders[0].shortest_time > 0
