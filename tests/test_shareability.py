"""Unit tests for the temporal shareability graph."""

from __future__ import annotations

import pytest

from repro.exceptions import DuplicateOrderError, MissingOrderError
from repro.core.shareability import TemporalShareabilityGraph
from tests.conftest import make_order


@pytest.fixture
def graph(planner):
    return TemporalShareabilityGraph(planner, capacity=4, max_group_size=3)


class TestInsertionAndEdges:
    def test_insert_creates_node(self, graph, small_network):
        order = make_order(small_network, 0, 5)
        graph.insert_order(order, 0.0)
        assert order.order_id in graph
        assert len(graph) == 1

    def test_duplicate_insert_rejected(self, graph, small_network):
        order = make_order(small_network, 0, 5)
        graph.insert_order(order, 0.0)
        with pytest.raises(DuplicateOrderError):
            graph.insert_order(order, 1.0)

    def test_shareable_pair_gets_an_edge(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 5.0)
        assert graph.number_of_edges() == 1
        assert second.order_id in graph.neighbours(first.order_id)

    def test_far_apart_pair_gets_no_edge(self, graph, small_network):
        first = make_order(small_network, 0, 1, deadline_scale=1.1)
        second = make_order(small_network, 35, 34, deadline_scale=1.1)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        assert graph.number_of_edges() == 0

    def test_edge_expiration_time_is_in_the_future(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        for edge in graph.edges():
            assert edge.expires_at > 0.0

    def test_unknown_order_queries_raise(self, graph):
        with pytest.raises(MissingOrderError):
            graph.neighbours(999)
        with pytest.raises(MissingOrderError):
            graph.best_group(999)
        with pytest.raises(MissingOrderError):
            graph.remove_order(999, 0.0)
        with pytest.raises(MissingOrderError):
            graph.order(999)


class TestBestGroups:
    def test_unpaired_order_has_no_best_group(self, graph, small_network):
        order = make_order(small_network, 0, 5)
        graph.insert_order(order, 0.0)
        assert graph.best_group(order.order_id) is None

    def test_paired_orders_share_best_group(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        group = graph.best_group(first.order_id)
        assert group is not None
        assert group.order_ids() == {first.order_id, second.order_id}

    def test_best_group_is_best_among_candidates(self, graph, small_network):
        anchor = make_order(small_network, 0, 24)
        close = make_order(small_network, 6, 30)
        farther = make_order(small_network, 4, 28)
        graph.insert_order(anchor, 0.0)
        graph.insert_order(close, 0.0)
        graph.insert_order(farther, 0.0)
        best = graph.best_group(anchor.order_id)
        assert best is not None
        candidates = []
        for clique in graph.cliques_containing(anchor.order_id, 0.0):
            members = [graph.order(order_id) for order_id in clique]
            planned = graph._planner.try_plan(members, 4, 0.0)
            if planned is not None:
                candidates.append(clique)
        # The chosen group's average extra time is minimal among validated cliques.
        assert best.order_ids() in [frozenset(c) for c in candidates]

    def test_singleton_group_helper(self, graph, small_network):
        order = make_order(small_network, 0, 5)
        graph.insert_order(order, 0.0)
        singleton = graph.singleton_group(order.order_id, 0.0)
        assert singleton is not None
        assert len(singleton) == 1
        # Once the deadline cannot be met, no singleton group exists either.
        assert graph.singleton_group(order.order_id, order.deadline) is None


class TestRemovalAndExpiry:
    def test_remove_order_cleans_edges(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        graph.remove_order(first.order_id, 1.0)
        assert first.order_id not in graph
        assert graph.number_of_edges() == 0
        assert graph.best_group(second.order_id) is None

    def test_remove_orders_bulk(self, graph, small_network):
        orders = [make_order(small_network, 0, 24), make_order(small_network, 6, 30)]
        for order in orders:
            graph.insert_order(order, 0.0)
        removed = graph.remove_orders([order.order_id for order in orders], 1.0)
        assert len(removed) == 2
        assert len(graph) == 0

    def test_expire_edges_drops_stale_pairs(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        assert graph.number_of_edges() == 1
        expired = graph.expire_edges(first.deadline + second.deadline)
        assert len(expired) == 1
        assert graph.number_of_edges() == 0
        assert graph.best_group(first.order_id) is None

    def test_expire_edges_keeps_live_pairs(self, graph, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        graph.insert_order(first, 0.0)
        graph.insert_order(second, 0.0)
        assert graph.expire_edges(1.0) == []
        assert graph.number_of_edges() == 1


class TestCliques:
    def test_cliques_require_pairwise_edges(self, graph, small_network):
        # Three mutually close orders -> a triangle -> pair and triple cliques.
        orders = [
            make_order(small_network, 0, 24),
            make_order(small_network, 6, 30),
            make_order(small_network, 6, 18),
        ]
        for order in orders:
            graph.insert_order(order, 0.0)
        cliques = list(graph.cliques_containing(orders[0].order_id, 0.0))
        sizes = sorted(len(clique) for clique in cliques)
        assert 2 in sizes
        if graph.number_of_edges() == 3:
            assert 3 in sizes

    def test_clique_members_are_pairwise_adjacent(self, graph, small_network):
        orders = [
            make_order(small_network, 0, 24),
            make_order(small_network, 6, 30),
            make_order(small_network, 6, 18),
        ]
        for order in orders:
            graph.insert_order(order, 0.0)
        import itertools

        for clique in graph.cliques_containing(orders[0].order_id, 0.0):
            for a, b in itertools.combinations(clique, 2):
                assert b in graph.neighbours(a)
