"""Concurrent-read safety of the structures the shard threads share.

The parallel dispatch engine's thread mode queries one shared oracle
from several threads at once.  The contraction-hierarchy backend
memoises reverse-PHAST arrival maps, target buckets and point-to-point
results on query — ``OrderedDict`` state that used to corrupt under
concurrent mutation — and the worker spatial index bumps its benchmark
counters inside the ring generator.  These tests hammer both from many
threads and require (a) no exception or torn state and (b) answers
identical to a single-threaded reference.
"""

from __future__ import annotations

import math
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.network.generators import grid_city
from repro.network.grid import GridIndex
from repro.network.oracle import CHOracle, LazyDijkstraOracle
from repro.simulation.spatial import WorkerSpatialIndex

_NUM_THREADS = 8
_ROUNDS_PER_THREAD = 6


@pytest.fixture(scope="module")
def city():
    return grid_city(rows=8, cols=8, seed=5, jitter=0.25)


@pytest.fixture(scope="module")
def ch_oracle(city):
    return CHOracle(city.graph)


def test_ch_oracle_declares_thread_safety(ch_oracle):
    assert ch_oracle.thread_safe_queries is True
    # The guard is the backend's own; the default contract stays
    # conservative for backends that memoise without one.
    assert LazyDijkstraOracle.thread_safe_queries is False


def _maps_close(got, want, rel=1e-9):
    """Same keys, values equal within CH's documented ulp assembly slack.

    A pair answered through the point-to-point search and the same pair
    answered through a bucket scan / arrival sweep associate their
    shortcut-weight additions differently, so which value a cache holds
    depends on query *history* — that is true single-threaded too and
    is not a concurrency defect.  Keys (reachability) must be exact.
    """
    if set(got) != set(want):
        return False
    return all(math.isclose(got[k], want[k], rel_tol=rel) for k in want)


def test_ch_oracle_concurrent_queries_match_serial(city, ch_oracle):
    """Hammer every query shape from threads; answers must match serial."""
    nodes = city.nodes_sorted()
    rng = random.Random(31)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(60)]
    targets = [rng.choice(nodes) for _ in range(12)]
    sources = [rng.choice(nodes) for _ in range(16)]

    reference_oracle = CHOracle(city.graph)
    reference_pairs = {
        pair: reference_oracle.travel_time(*pair) for pair in pairs
    }
    reference_arrivals = {
        target: dict(reference_oracle.travel_times_to(target))
        for target in targets
    }
    reference_many = reference_oracle.travel_times_many(sources, targets)

    errors: list[BaseException] = []

    def hammer(worker_id: int) -> None:
        # Each thread interleaves the three query shapes in its own
        # order so cache hits, misses and evictions race for real.
        local = random.Random(worker_id)
        try:
            for _ in range(_ROUNDS_PER_THREAD):
                for pair in local.sample(pairs, 20):
                    assert math.isclose(
                        ch_oracle.travel_time(*pair),
                        reference_pairs[pair],
                        rel_tol=1e-9,
                    )
                target = local.choice(targets)
                # Reverse-PHAST arrival maps are computed one way only,
                # so these must be exact, not merely close.
                assert dict(ch_oracle.travel_times_to(target)) == (
                    reference_arrivals[target]
                )
                assert _maps_close(
                    ch_oracle.travel_times_many(sources, targets),
                    reference_many,
                )
        except BaseException as exc:  # noqa: BLE001 - collected for the report
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=_NUM_THREADS) as executor:
        list(executor.map(hammer, range(_NUM_THREADS)))
    assert not errors, errors
    # The caches came through the stampede structurally intact: every
    # entry still answers, and the LRU bounds still hold.
    info = ch_oracle.cache_info()
    assert info.maxsize is None or info.currsize <= info.maxsize
    for pair, expected in reference_pairs.items():
        assert math.isclose(
            ch_oracle.travel_time(*pair), expected, rel_tol=1e-9
        )


def test_ch_oracle_concurrent_shortest_paths(city, ch_oracle):
    """Path unpacking (parent-tracked reruns) is also safe to share."""
    nodes = city.nodes_sorted()
    rng = random.Random(47)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(20)]
    reference = {pair: ch_oracle.shortest_path(*pair) for pair in pairs}

    def hammer(worker_id: int) -> list[tuple]:
        local = random.Random(100 + worker_id)
        mismatches = []
        for _ in range(_ROUNDS_PER_THREAD):
            for pair in local.sample(pairs, len(pairs)):
                if ch_oracle.shortest_path(*pair) != reference[pair]:
                    mismatches.append(pair)
        return mismatches

    with ThreadPoolExecutor(max_workers=_NUM_THREADS) as executor:
        results = list(executor.map(hammer, range(_NUM_THREADS)))
    assert all(not mismatches for mismatches in results), results


def test_spatial_index_concurrent_rings_match_serial(city):
    """Concurrent ring searches see identical rings and exact counters."""
    grid = GridIndex(city, size=4)
    index = WorkerSpatialIndex(city, grid)
    nodes = city.nodes_sorted()
    rng = random.Random(13)
    for worker_id in range(40):
        index.insert(worker_id, rng.choice(nodes))
    query_nodes = [rng.choice(nodes) for _ in range(10)]
    reference = {node: list(index.rings(node)) for node in query_nodes}
    searches_before = index.searches
    yielded_before = index.candidates_yielded

    barrier = threading.Barrier(_NUM_THREADS)

    def hammer(worker_id: int) -> tuple[bool, list[int]]:
        local = random.Random(worker_id)
        barrier.wait()  # maximise overlap between the generators
        ok = True
        queried: list[int] = []
        for _ in range(_ROUNDS_PER_THREAD):
            node = local.choice(query_nodes)
            queried.append(node)
            ok = ok and list(index.rings(node)) == reference[node]
        return ok, queried

    with ThreadPoolExecutor(max_workers=_NUM_THREADS) as executor:
        results = list(executor.map(hammer, range(_NUM_THREADS)))
    assert all(ok for ok, _ in results)
    # Counter updates are locked, so none of the concurrent increments
    # were lost (exact equality, not just monotonicity).
    total_searches = _NUM_THREADS * _ROUNDS_PER_THREAD
    assert index.searches == searches_before + total_searches
    per_query_yield = {
        node: sum(len(ids) for _, ids in reference[node])
        for node in query_nodes
    }
    expected_yield = sum(
        per_query_yield[node] for _, queried in results for node in queried
    )
    assert index.candidates_yielded == yielded_before + expected_yield


def test_session_concurrent_prepare_builds_oracle_once():
    """The Session facade's memoisation is a real critical section.

    Eight threads racing ``prepare`` on one spec must converge on one
    network, one workload object and exactly one oracle build — the
    invariant the serving layer's session pool leans on when concurrent
    requests land on the same pooled session.
    """
    from repro.api import ScenarioSpec, Session

    spec = ScenarioSpec(
        network="grid", grid_rows=5, grid_cols=5, num_orders=16,
        num_workers=4, horizon=300.0, seed=11, algorithm="GDP",
        oracle_backend="ch",
    )
    session = Session()
    barrier = threading.Barrier(_NUM_THREADS)

    def prepare(_worker_id: int):
        barrier.wait()  # maximise overlap on the cold session
        return session.prepare(spec)

    with ThreadPoolExecutor(max_workers=_NUM_THREADS) as executor:
        workloads = list(executor.map(prepare, range(_NUM_THREADS)))
    first = workloads[0]
    assert all(workload is first for workload in workloads)
    assert session.oracle_builds == 1
