"""Tests for the worker spatial index and the fleet's pruned search.

Covers:

* bucket maintenance (insert / move / remove) and the incremental
  updates driven by ``WorkerFleet.assign`` / ``release_finished``,
* soundness of the ring lower bounds (never above the true travel
  time) and monotonicity of the ring expansion,
* exact equivalence of the ring-expanding ``find_worker_for`` with the
  full-fleet scan it replaces, across random fleets and assignments,
* the ``(group, now)`` search memo that lets ``can_serve`` and the
  following ``assign`` share one search.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ExtraTimeWeights
from repro.model.group import Group
from repro.model.worker import Worker
from repro.network.generators import grid_city
from repro.network.grid import GridIndex
from repro.routing.planner import RoutePlanner
from repro.simulation.fleet import WorkerFleet
from repro.simulation.spatial import WorkerSpatialIndex

from tests.conftest import make_order


def _network(rows=8, cols=8, seed=5):
    return grid_city(rows=rows, cols=cols, seed=seed, jitter=0.25)


def _singleton_group(network, order):
    planner = RoutePlanner(network)
    planned = planner.try_plan([order], 4, order.release_time)
    assert planned is not None
    return Group(
        orders=(order,),
        route=planned.route,
        created_at=order.release_time,
        weights=ExtraTimeWeights(),
    )


class TestIndexMaintenance:
    def test_insert_move_remove(self):
        network = _network()
        grid = GridIndex(network, size=4)
        index = WorkerSpatialIndex(network, grid)
        index.insert(7, 0)
        assert 7 in index and len(index) == 1
        assert 7 in index.workers_in_cell(grid.cell_of(0))
        index.move(7, 63)
        assert 7 not in index.workers_in_cell(grid.cell_of(0))
        assert 7 in index.workers_in_cell(grid.cell_of(63))
        index.remove(7)
        assert 7 not in index and len(index) == 0
        index.remove(7)  # absent removal is a no-op

    def test_fleet_updates_index_on_assign_and_release(self):
        network = _network()
        workers = [Worker(location=0, capacity=4), Worker(location=63, capacity=4)]
        fleet = WorkerFleet(workers, network, GridIndex(network, size=4))
        index = fleet.spatial_index
        assert index is not None and len(index) == 2
        order = make_order(network, pickup=1, dropoff=10)
        group = _singleton_group(network, order)
        worker = fleet.find_worker_for(group, 0.0)
        assert worker is workers[0]
        assignment = fleet.assign(worker, group, 0.0)
        # The busy worker is indexed at the route's end node already.
        end_cell = GridIndex(network, size=4).cell_of(group.route.end_node)
        assert worker.worker_id in index.workers_in_cell(end_cell)
        # Release keeps the location, so the bucket does not change.
        fleet.release_finished(assignment.finish_time + 1.0)
        assert worker.is_idle
        assert worker.worker_id in index.workers_in_cell(end_cell)


class TestRingSoundness:
    def test_rings_yield_every_worker_once_with_monotone_bounds(self):
        network = _network()
        grid = GridIndex(network, size=5)
        index = WorkerSpatialIndex(network, grid)
        rng = random.Random(9)
        nodes = sorted(network.nodes())
        locations = {wid: rng.choice(nodes) for wid in range(30)}
        for wid, node in locations.items():
            index.insert(wid, node)
        query = nodes[len(nodes) // 2]
        seen: list[int] = []
        previous_bound = -1.0
        for bound, worker_ids in index.rings(query):
            assert bound >= previous_bound
            previous_bound = bound
            seen.extend(worker_ids)
        assert sorted(seen) == sorted(locations)

    def test_ring_bound_never_exceeds_true_travel_time(self):
        """The ring bound must lower-bound every member's approach time."""
        network = _network()
        grid = GridIndex(network, size=5)
        index = WorkerSpatialIndex(network, grid)
        rng = random.Random(11)
        nodes = sorted(network.nodes())
        locations = {wid: rng.choice(nodes) for wid in range(25)}
        for wid, node in locations.items():
            index.insert(wid, node)
        for query in rng.sample(nodes, 5):
            for bound, worker_ids in index.rings(query):
                for wid in worker_ids:
                    actual = network.travel_time(locations[wid], query)
                    assert bound <= actual + 1e-9, (wid, bound, actual)


class TestSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ring_search_matches_full_scan(self, seed):
        network = _network(rows=10, cols=10, seed=seed)
        rng = random.Random(seed)
        nodes = sorted(network.nodes())
        locations = [rng.choice(nodes) for _ in range(24)]
        capacities = [rng.choice([1, 2, 4]) for _ in range(24)]
        workers_a = [
            Worker(location=loc, capacity=cap, worker_id=wid)
            for wid, (loc, cap) in enumerate(zip(locations, capacities))
        ]
        workers_b = [worker.clone() for worker in workers_a]
        fleet_rings = WorkerFleet(workers_a, network, GridIndex(network, size=6))
        fleet_scan = WorkerFleet(
            workers_b, network, GridIndex(network, size=6), use_spatial_index=False
        )
        now = 0.0
        for step in range(30):
            pickup, dropoff = rng.sample(nodes, 2)
            try:
                order = make_order(
                    network, pickup, dropoff, release=now, riders=rng.choice([1, 2])
                )
            except Exception:
                continue
            group = _singleton_group(network, order)
            found_rings = fleet_rings.find_worker_for(group, now)
            found_scan = fleet_scan.find_worker_for(group, now)
            if found_rings is None:
                assert found_scan is None
            else:
                assert found_scan is not None
                assert found_rings.worker_id == found_scan.worker_id
                if rng.random() < 0.6:
                    fleet_rings.assign(found_rings, group, now)
                    fleet_scan.assign(
                        fleet_scan.worker(found_scan.worker_id), group, now
                    )
            now += rng.uniform(0.0, 120.0)
        assert fleet_rings.total_travel_time == fleet_scan.total_travel_time

    def test_ring_search_prunes_candidates(self):
        """On a big network the ring search must not examine the whole fleet."""
        network = _network(rows=16, cols=16, seed=3)
        rng = random.Random(3)
        nodes = sorted(network.nodes())
        workers = [
            Worker(location=rng.choice(nodes), capacity=4, worker_id=wid)
            for wid in range(64)
        ]
        fleet = WorkerFleet(workers, network, GridIndex(network, size=8))
        index = fleet.spatial_index
        assert index is not None
        searches = 0
        for _ in range(20):
            pickup, dropoff = rng.sample(nodes, 2)
            order = make_order(network, pickup, dropoff)
            group = _singleton_group(network, order)
            fleet.find_worker_for(group, 0.0)
            searches += 1
        assert index.candidates_yielded < searches * len(fleet)


class TestFindMemo:
    def test_can_serve_then_assign_searches_once(self, monkeypatch):
        network = _network()
        workers = [Worker(location=0, capacity=4), Worker(location=63, capacity=4)]
        fleet = WorkerFleet(workers, network, GridIndex(network, size=4))
        order = make_order(network, pickup=1, dropoff=10)
        group = _singleton_group(network, order)
        calls = {"count": 0}
        original = WorkerFleet._find_by_rings

        def counting(self, group, now):
            calls["count"] += 1
            return original(self, group, now)

        monkeypatch.setattr(WorkerFleet, "_find_by_rings", counting)
        assert fleet.can_serve(group, 0.0)
        worker = fleet.find_worker_for(group, 0.0)
        assert worker is not None
        assert calls["count"] == 1
        # Booking invalidates the memo: the same probe searches again.
        fleet.assign(worker, group, 0.0)
        fleet.can_serve(group, 0.0)
        assert calls["count"] == 2

    def test_memo_invalidated_by_release(self):
        network = _network()
        worker = Worker(location=0, capacity=4)
        fleet = WorkerFleet([worker], network, GridIndex(network, size=4))
        order = make_order(network, pickup=1, dropoff=10)
        group = _singleton_group(network, order)
        found = fleet.find_worker_for(group, 0.0)
        assert found is worker
        assignment = fleet.assign(found, group, 0.0)
        assert fleet.find_worker_for(group, 0.0) is None
        # Once the route finishes the released worker must be found for
        # a fresh feasible group — the stale None memo may not survive.
        later = assignment.finish_time + 1.0
        fresh = _singleton_group(
            network, make_order(network, pickup=11, dropoff=20, release=later)
        )
        assert fleet.find_worker_for(fresh, later) is worker

    def test_distinct_groups_are_not_conflated(self, order_factory, small_network):
        workers = [Worker(location=0, capacity=4), Worker(location=35, capacity=4)]
        fleet = WorkerFleet(workers, small_network, GridIndex(small_network, size=3))
        group_a = _singleton_group(small_network, order_factory(1, 10))
        group_b = _singleton_group(small_network, order_factory(34, 20))
        first = fleet.find_worker_for(group_a, 0.0)
        second = fleet.find_worker_for(group_b, 0.0)
        assert first is workers[0]
        assert second is workers[1]
