"""Unit tests for the spatial grid index."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, UnknownNodeError
from repro.network.grid import GridIndex


class TestGridIndex:
    def test_rejects_non_positive_size(self, small_network):
        with pytest.raises(ConfigurationError):
            GridIndex(small_network, size=0)

    def test_every_node_gets_a_cell(self, small_network):
        grid = GridIndex(small_network, size=3)
        for node in small_network.nodes():
            assert 0 <= grid.cell_of(node) < grid.num_cells

    def test_unknown_node_raises(self, small_network):
        grid = GridIndex(small_network, size=3)
        with pytest.raises(UnknownNodeError):
            grid.cell_of(123456)

    def test_corner_cells(self, small_network):
        grid = GridIndex(small_network, size=3)
        # node 0 sits at (0, 0) -> cell 0; node 35 sits at (5, 5) -> last cell.
        assert grid.cell_of(0) == 0
        assert grid.cell_of(35) == grid.num_cells - 1

    def test_cell_of_xy_clamps_out_of_bounds(self, small_network):
        grid = GridIndex(small_network, size=3)
        assert grid.cell_of_xy(-100.0, -100.0) == 0
        assert grid.cell_of_xy(100.0, 100.0) == grid.num_cells - 1

    def test_nodes_in_cell_round_trip(self, small_network):
        grid = GridIndex(small_network, size=3)
        for cell in range(grid.num_cells):
            for node in grid.nodes_in_cell(cell):
                assert grid.cell_of(node) == cell

    def test_cell_coordinates_inverse(self, small_network):
        grid = GridIndex(small_network, size=4)
        for cell in range(grid.num_cells):
            row, col = grid.cell_coordinates(cell)
            assert row * grid.size + col == cell

    def test_cell_coordinates_out_of_range(self, small_network):
        grid = GridIndex(small_network, size=3)
        with pytest.raises(ConfigurationError):
            grid.cell_coordinates(grid.num_cells)

    def test_neighbourhood_contains_self_first(self, small_network):
        grid = GridIndex(small_network, size=3)
        cells = list(grid.neighbourhood(4, rings=1))
        assert cells[0] == 4

    def test_neighbourhood_respects_bounds(self, small_network):
        grid = GridIndex(small_network, size=3)
        cells = list(grid.neighbourhood(0, rings=1))
        assert all(0 <= cell < grid.num_cells for cell in cells)
        # corner cell has itself plus three neighbours
        assert len(cells) == 4

    def test_neighbourhood_full_coverage(self, small_network):
        grid = GridIndex(small_network, size=3)
        cells = set(grid.neighbourhood(4, rings=2))
        assert cells == set(range(grid.num_cells))

    def test_density_counts_all_nodes(self, small_network):
        grid = GridIndex(small_network, size=3)
        nodes = small_network.nodes_sorted()
        density = grid.density(nodes)
        assert sum(density) == len(nodes)
        assert len(density) == grid.num_cells

    def test_density_empty_input(self, small_network):
        grid = GridIndex(small_network, size=3)
        assert sum(grid.density([])) == 0

    def test_single_point_network_does_not_crash(self):
        from repro.network.graph import build_network

        network = build_network(nodes=[(0, 2.0, 3.0)], edges=[])
        grid = GridIndex(network, size=5)
        assert grid.cell_of(0) == 0
