"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec, save_spec
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert args.dataset == "CDC"
        assert "WATTER-expect" in args.algorithms

    def test_sweep_figure_choices(self):
        args = build_parser().parse_args(["sweep", "--figure", "fig5"])
        assert args.figure == "fig5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--figure", "fig99"])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithms", "FancyAlgo"])

    def test_workload_overrides_parsed(self):
        args = build_parser().parse_args(
            ["compare", "--orders", "50", "--workers", "10", "--seed", "3"]
        )
        assert (args.orders, args.workers, args.seed) == (50, 10, 3)


class TestMain:
    def test_compare_command_prints_table(self, capsys):
        exit_code = main(
            [
                "compare",
                "--dataset",
                "CDC",
                "--orders",
                "25",
                "--workers",
                "6",
                "--horizon",
                "900",
                "--algorithms",
                "WATTER-online",
                "NonSharing",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "WATTER-online" in captured
        assert "NonSharing" in captured
        assert "service rate" in captured

    def test_example1_command(self, capsys):
        exit_code = main(["example1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Example 1" in captured
        assert "WATTER-timeout (pooling)" in captured

    def test_compare_output_is_self_describing(self, capsys):
        exit_code = main(
            [
                "compare",
                "--dataset",
                "CDC",
                "--orders",
                "20",
                "--workers",
                "5",
                "--horizon",
                "900",
                "--seed",
                "4",
                "--oracle",
                "matrix",
                "--algorithms",
                "NonSharing",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario:" in captured
        assert "oracle=matrix" in captured
        assert "seed=4" in captured
        assert "graph=" in captured

    def test_run_command_executes_a_spec_file(self, capsys, tmp_path):
        spec = ScenarioSpec(
            name="cli-spec",
            dataset="CDC",
            num_orders=20,
            num_workers=5,
            horizon=900.0,
            seed=3,
            algorithm="NonSharing",
        )
        path = save_spec(spec, tmp_path / "scenario.json")
        exit_code = main(["run", "--spec", str(path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "cli-spec" in captured
        assert "NonSharing" in captured
        assert "scenario:" in captured
