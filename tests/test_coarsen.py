"""Tests for the multilevel coarsening layer and the overlay oracle.

The property tests pin the invariants the overlay's certified error
bound rests on:

* every level's supernodes partition the finer level exactly,
* a coarse edge's weight equals the minimum over the base edges
  crossing its two coarsest clusters (so the coarse distance is a true
  lower bound),
* overlay answers stay within the configured relative error bound of
  the exact Dijkstra distance, and unreachability verdicts are exact,
* exact-refinement mode reproduces Dijkstra's distances.

The unit tests cover hierarchy persistence, the coarsening-based CH
contraction order, the registry/spec/config plumbing, the city-scale
generator and the local-trip demand model.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.api.spec import OracleSpec, ScenarioSpec
from repro.config import SimulationConfig
from repro.datasets.synthetic import CityModel, DemandHotspot
from repro.datasets.workloads import LARGE_DATASET_NAMES, city_by_name
from repro.exceptions import ConfigurationError, UnreachableError
from repro.network.coarsen import (
    CONTRACTION_ORDERS,
    CoarseningParams,
    MultilevelCoarsener,
    OverlayOracle,
    coarsen_cache_path,
    coarsening_contraction_order,
    load_hierarchy,
    save_hierarchy,
)
from repro.network.generators import grid_city, large_city
from repro.network.graph import build_network
from repro.network.oracle import create_oracle
from repro.network.oracle.cache import graph_signature
from repro.network.oracle.ch import CHOracle

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_digraphs(draw):
    """Small random directed graphs with positive ``travel_time`` weights.

    Roughly half the drawn edges are inserted in both directions so the
    graphs mix strongly-connected cores with genuinely one-way streets
    (the case that breaks naive corridor inflation).
    """
    num_nodes = draw(st.integers(4, 18))
    graph = nx.DiGraph()
    graph.add_nodes_from(range(num_nodes))
    num_edges = draw(st.integers(num_nodes, 4 * num_nodes))
    for _ in range(num_edges):
        u = draw(st.integers(0, num_nodes - 1))
        v = draw(st.integers(0, num_nodes - 1))
        if u == v:
            continue
        weight = draw(
            st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False)
        )
        graph.add_edge(u, v, travel_time=weight)
        if draw(st.booleans()):
            graph.add_edge(v, u, travel_time=weight)
    assume(graph.number_of_edges() > 0)
    return graph


def _exact_distance(graph, source, target):
    try:
        return nx.dijkstra_path_length(graph, source, target, weight="travel_time")
    except nx.NetworkXNoPath:
        return None


class TestCoarseningProperties:
    @_SETTINGS
    @given(graph=weighted_digraphs(), levels=st.integers(1, 4))
    def test_each_level_partitions_the_finer_level(self, graph, levels):
        hierarchy = MultilevelCoarsener(graph, levels=levels).build()
        finer_nodes = set(graph.nodes)
        for level in hierarchy.levels:
            seen: set = set()
            for anchor, children in level.children.items():
                assert anchor in children
                overlap = seen.intersection(children)
                assert not overlap, f"nodes in two supernodes: {overlap}"
                seen.update(children)
            assert seen == finer_nodes
            # Parent map agrees with the children tuples.
            for node in finer_nodes:
                assert node in level.children[level.parent[node]]
            finer_nodes = set(level.graph.nodes)

    @_SETTINGS
    @given(graph=weighted_digraphs(), levels=st.integers(1, 4))
    def test_coarse_weight_is_min_crossing_base_weight(self, graph, levels):
        hierarchy = MultilevelCoarsener(graph, levels=levels).build()
        members = {
            anchor: set(hierarchy.members(anchor))
            for anchor in hierarchy.coarse_graph.nodes
        }
        for a, b, data in hierarchy.coarse_graph.edges(data=True):
            crossing = [
                float(attrs["travel_time"])
                for u, v, attrs in graph.edges(data=True)
                if u in members[a] and v in members[b]
            ]
            assert crossing, f"coarse edge {a}->{b} has no base crossing edge"
            assert data["travel_time"] == pytest.approx(min(crossing))
            # The recorded realising edge is itself a crossing base edge
            # of exactly that weight.
            u, v, weight = hierarchy.crossing(a, b)
            assert u in members[a] and v in members[b]
            assert weight == pytest.approx(min(crossing))

    @_SETTINGS
    @given(
        graph=weighted_digraphs(),
        error_bound=st.floats(0.0, 0.5, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    def test_overlay_error_within_certified_bound(self, graph, error_bound, seed):
        oracle = OverlayOracle(graph, levels=3, error_bound=error_bound)
        rng = random.Random(seed)
        nodes = sorted(graph.nodes)
        for _ in range(10):
            source, target = rng.sample(nodes, 2)
            want = _exact_distance(graph, source, target)
            if want is None:
                with pytest.raises(UnreachableError):
                    oracle.travel_time(source, target)
                continue
            got = oracle.travel_time(source, target)
            if want == 0.0:
                assert got == pytest.approx(0.0, abs=1e-9)
            else:
                assert abs(got - want) / want <= error_bound + 1e-9

    @_SETTINGS
    @given(graph=weighted_digraphs(), seed=st.integers(0, 2**16))
    def test_exact_refinement_matches_dijkstra(self, graph, seed):
        oracle = OverlayOracle(graph, levels=3, refine=True)
        rng = random.Random(seed)
        nodes = sorted(graph.nodes)
        for _ in range(10):
            source, target = rng.sample(nodes, 2)
            want = _exact_distance(graph, source, target)
            if want is None:
                with pytest.raises(UnreachableError):
                    oracle.travel_time(source, target)
            else:
                got = oracle.travel_time(source, target)
                assert got == pytest.approx(want, rel=1e-9, abs=1e-9)


class TestOverlayOracle:
    def test_batched_answers_match_single_queries(self):
        graph = grid_city(rows=8, cols=8, seed=4).graph
        oracle = OverlayOracle(graph, levels=2)
        nodes = sorted(graph.nodes)
        sources = nodes[:6]
        target = nodes[-1]
        block = oracle.travel_times_many(sources, [target])
        for source in sources:
            assert block[(source, target)] == pytest.approx(
                oracle.travel_time(source, target)
            )

    def test_unreachable_verdict_is_exact(self):
        graph = nx.DiGraph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, travel_time=60.0)  # one way only
        oracle = OverlayOracle(graph, levels=2)
        assert oracle.travel_time(0, 1) == pytest.approx(60.0)
        with pytest.raises(UnreachableError):
            oracle.travel_time(1, 0)

    def test_stats_report_coarsening_block(self):
        graph = grid_city(rows=6, cols=6, seed=1).graph
        oracle = OverlayOracle(graph, levels=2)
        nodes = sorted(graph.nodes)
        oracle.travel_time(nodes[0], nodes[-1])
        extras = oracle.stats().extras
        assert extras["levels_built"] >= 1
        assert 0 < extras["coarse_nodes"] < len(nodes)
        assert extras["compression_ratio"] > 1.0

    def test_tighter_bound_refines_more(self):
        graph = grid_city(rows=10, cols=10, seed=2).graph
        loose = OverlayOracle(graph, levels=2, error_bound=10.0)
        tight = OverlayOracle(graph, levels=2, error_bound=0.0)
        rng = random.Random(9)
        nodes = sorted(graph.nodes)
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
        for source, target in pairs:
            loose.travel_time(source, target)
            got = tight.travel_time(source, target)
            # error_bound=0 answers are exact.
            assert got == pytest.approx(
                _exact_distance(graph, source, target), rel=1e-9
            )
        assert tight._refined_queries >= loose._refined_queries


class TestPersistence:
    def test_round_trip_preserves_the_hierarchy(self, tmp_path):
        graph = grid_city(rows=7, cols=7, seed=5).graph
        params = CoarseningParams(levels=2)
        hierarchy = MultilevelCoarsener(graph, levels=2).build()
        path = coarsen_cache_path(tmp_path, graph, params)
        save_hierarchy(path, hierarchy, graph)
        loaded = load_hierarchy(path, graph, params)
        assert loaded is not None
        assert loaded.levels_built == hierarchy.levels_built
        for node in graph.nodes:
            assert loaded.representative(node) == hierarchy.representative(node)
        assert set(loaded.coarse_graph.edges) == set(
            hierarchy.coarse_graph.edges
        )
        for a, b in hierarchy.coarse_graph.edges:
            assert loaded.coarse_graph[a][b]["travel_time"] == pytest.approx(
                hierarchy.coarse_graph[a][b]["travel_time"]
            )

    def test_wrong_params_or_graph_miss(self, tmp_path):
        graph = grid_city(rows=6, cols=6, seed=6).graph
        params = CoarseningParams(levels=2)
        hierarchy = MultilevelCoarsener(graph, levels=2).build()
        path = coarsen_cache_path(tmp_path, graph, params)
        save_hierarchy(path, hierarchy, graph)
        assert load_hierarchy(path, graph, CoarseningParams(levels=3)) is None
        other = grid_city(rows=6, cols=6, seed=7).graph
        assert load_hierarchy(path, other, params) is None

    def test_corrupt_cache_is_quarantined_not_fatal(self, tmp_path):
        graph = grid_city(rows=5, cols=5, seed=8).graph
        params = CoarseningParams(levels=2)
        path = coarsen_cache_path(tmp_path, graph, params)
        path.write_text("{not json")
        assert load_hierarchy(path, graph, params) is None
        assert not path.exists()  # moved aside, not left to fail again


class TestContractionOrder:
    def test_order_is_a_permutation(self):
        graph = grid_city(rows=8, cols=8, seed=3).graph
        order = coarsening_contraction_order(graph, levels=3)
        assert sorted(order) == sorted(graph.nodes)

    def test_ch_with_coarsening_order_stays_exact(self):
        network = grid_city(rows=8, cols=8, seed=10)
        graph = network.graph
        oracle = create_oracle("ch", graph, contraction_order="coarsening")
        assert isinstance(oracle, CHOracle)
        assert oracle.contraction_order == "coarsening"
        rng = random.Random(11)
        nodes = sorted(graph.nodes)
        for _ in range(30):
            source, target = rng.sample(nodes, 2)
            want = _exact_distance(graph, source, target)
            assert oracle.travel_time(source, target) == pytest.approx(
                want, rel=1e-9
            )

    def test_registry_rejects_unknown_order(self):
        graph = grid_city(rows=4, cols=4, seed=0).graph
        with pytest.raises(ConfigurationError):
            create_oracle("ch", graph, contraction_order="alphabetical")
        assert "coarsening" in CONTRACTION_ORDERS


class TestRegistryAndSpec:
    def test_overlay_backend_registered(self):
        from repro.network.oracle import available_backends

        assert "overlay" in available_backends()

    def test_create_overlay_oracle(self):
        graph = grid_city(rows=6, cols=6, seed=12).graph
        oracle = create_oracle(
            "overlay", graph, coarsen_levels=2, coarsen_error_bound=0.1
        )
        assert isinstance(oracle, OverlayOracle)
        assert oracle.coarsen_levels == 2
        assert oracle.error_bound == 0.1
        assert oracle.hierarchy_from_cache is False

    def test_overlay_hierarchy_cache_round_trip(self, tmp_path):
        graph = grid_city(rows=6, cols=6, seed=13).graph
        cold = create_oracle(
            "overlay", graph, coarsen_levels=2, cache_dir=str(tmp_path)
        )
        assert cold.hierarchy_from_cache is False
        warm = create_oracle(
            "overlay", graph, coarsen_levels=2, cache_dir=str(tmp_path)
        )
        assert warm.hierarchy_from_cache is True
        nodes = sorted(graph.nodes)
        assert warm.travel_time(nodes[0], nodes[-1]) == pytest.approx(
            cold.travel_time(nodes[0], nodes[-1])
        )

    def test_oracle_spec_accepts_overlay_options(self):
        spec = OracleSpec(
            backend="overlay",
            coarsen_levels=4,
            coarsen_alpha=2.0,
            coarsen_error_bound=0.1,
            coarsen_refine=True,
        )
        config = ScenarioSpec(dataset="CDC", oracle=spec).config()
        assert config.oracle_backend == "overlay"
        assert config.oracle_coarsen_levels == 4
        assert config.oracle_coarsen_alpha == 2.0
        assert config.oracle_coarsen_error_bound == 0.1
        assert config.oracle_coarsen_refine is True

    def test_oracle_spec_rejects_coarsen_options_on_lazy(self):
        with pytest.raises(ConfigurationError):
            OracleSpec(backend="lazy", coarsen_levels=3)

    def test_oracle_spec_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            OracleSpec(backend="overlay", coarsen_levels=0)
        with pytest.raises(ConfigurationError):
            OracleSpec(backend="overlay", coarsen_alpha=-1.0)
        with pytest.raises(ConfigurationError):
            OracleSpec(backend="ch", contraction_order="alphabetical")

    def test_config_validates_coarsen_fields(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_coarsen_levels=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_coarsen_beta=-0.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_contraction_order="random")

    def test_spec_config_round_trip_with_coarsen_fields(self):
        config = SimulationConfig(
            oracle_backend="overlay",
            oracle_coarsen_levels=4,
            oracle_coarsen_error_bound=0.05,
        )
        spec = ScenarioSpec.from_config("CDC", config)
        assert spec.config() == config


class TestLargeCity:
    def test_shape_and_arterials(self):
        network = large_city(rows=16, cols=16, jitter=0.0, arterial_period=4)
        graph = network.graph
        assert graph.number_of_nodes() == 256
        # Eastward edges on an arterial row are cheaper than a normal row.
        arterial = graph[0][1]["travel_time"]
        side_street = graph[16][17]["travel_time"]
        assert arterial == pytest.approx(0.5 * side_street)
        # Strongly connected: build_network inserts both directions.
        assert nx.is_strongly_connected(graph)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            large_city(rows=1, cols=5)
        with pytest.raises(ConfigurationError):
            large_city(rows=4, cols=4, arterial_period=1)
        with pytest.raises(ConfigurationError):
            large_city(rows=4, cols=4, arterial_factor=0.0)

    def test_large_dataset_registered(self):
        assert set(LARGE_DATASET_NAMES) == {"LARGE", "LARGE-SYNTHETIC"}
        with pytest.raises(Exception) as excinfo:
            city_by_name("nowhere")
        assert "LARGE" in str(excinfo.value)


class TestLocalTripDemand:
    def _city(self):
        network = grid_city(rows=10, cols=10, edge_travel_time=60.0, seed=14)
        return CityModel(
            name="local",
            network=network,
            pickup_hotspots=[DemandHotspot(x=5.0, y=5.0, spread=3.0)],
            dropoff_hotspots=[DemandHotspot(x=5.0, y=5.0, spread=3.0)],
            uniform_fraction=0.2,
            min_trip_time=120.0,
            local_trip_spread=3.0,
        )

    def test_orders_carry_exact_shortest_times(self):
        city = self._city()
        config = SimulationConfig(num_orders=15, num_workers=3, seed=21)
        workload = city.generate(config)
        assert workload.orders
        for order in workload.orders:
            want = nx.dijkstra_path_length(
                city.network.graph,
                order.pickup,
                order.dropoff,
                weight="travel_time",
            )
            assert order.shortest_time == pytest.approx(want)
            assert order.shortest_time >= city.min_trip_time

    def test_generation_is_deterministic(self):
        config = SimulationConfig(num_orders=10, num_workers=2, seed=22)
        first = self._city().generate(config)
        second = self._city().generate(config)
        assert [
            (o.pickup, o.dropoff, o.release_time) for o in first.orders
        ] == [(o.pickup, o.dropoff, o.release_time) for o in second.orders]

    def test_spread_must_be_positive(self):
        network = grid_city(rows=4, cols=4, seed=0)
        with pytest.raises(Exception):
            CityModel(
                name="bad",
                network=network,
                pickup_hotspots=[DemandHotspot(x=1.0, y=1.0, spread=1.0)],
                dropoff_hotspots=[DemandHotspot(x=1.0, y=1.0, spread=1.0)],
                local_trip_spread=0.0,
            )


class TestNearestNodeIndex:
    def test_matches_linear_scan(self):
        network = grid_city(rows=9, cols=9, seed=15)
        graph = network.graph
        entries = [
            (node, data["x"], data["y"]) for node, data in graph.nodes(data=True)
        ]
        rng = random.Random(16)
        probes = [(rng.uniform(-2.0, 10.0), rng.uniform(-2.0, 10.0)) for _ in range(200)]
        # Exact-tie probes: the midpoint of two nodes must resolve to the
        # same winner the linear scan picks (first in iteration order).
        probes.append((0.5, 0.0))
        probes.append((4.5, 4.5))
        for x, y in probes:
            best = min(
                entries,
                key=lambda entry: (
                    (entry[1] - x) ** 2 + (entry[2] - y) ** 2,
                    entries.index(entry),
                ),
            )[0]
            assert network.nearest_node(x, y) == best


class TestGraphSignature:
    def test_signature_is_stable_and_content_sensitive(self):
        network = grid_city(rows=5, cols=5, seed=17)
        graph = network.graph
        assert graph_signature(graph) == graph_signature(graph)
        other = grid_city(rows=5, cols=5, seed=17).graph
        assert graph_signature(graph) == graph_signature(other)
        other[0][1]["travel_time"] += 1.0
        assert graph_signature(graph) != graph_signature(other)
