"""Tests for the Session facade: legacy equivalence, oracle reuse and
persistence, event hooks, CSV replay, and the deprecation shims."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.api import (
    ScenarioSpec,
    Session,
    SimulationHooks,
    compare,
    orders_to_csv,
    run_scenario,
    sweep,
    workers_to_csv,
)
from repro.config import SimulationConfig
from repro.datasets.workloads import build_workload
from repro.exceptions import ConfigurationError
from repro.experiments.config import default_config
from repro.experiments.runner import run_on_workload
from repro.network.oracle import HAVE_NUMPY, available_backends, create_oracle
from repro.network.oracle.cache import (
    ch_cache_path,
    graph_signature,
    load_ch_preprocessing,
)
from repro.network.generators import grid_city


def _small_spec(**overrides) -> ScenarioSpec:
    base = dict(
        dataset="CDC",
        num_orders=24,
        num_workers=6,
        horizon=900.0,
        seed=3,
        algorithm="WATTER-timeout",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _strip_ids(outcomes) -> list:
    return [
        dataclasses.replace(outcome, order_id=0, worker_id=None)
        for outcome in outcomes
    ]


def _deterministic(metrics) -> dict:
    """Metric fields that must agree between execution paths.

    Wall-clock timings differ between any two runs and the oracle
    counters depend on cache warmth; everything decision-derived must
    be identical.
    """
    data = dataclasses.asdict(metrics)
    for key in ("running_time_total", "running_time_per_order", "oracle_stats"):
        data.pop(key)
    return data


class TestLegacyEquivalence:
    """The ISSUE's acceptance bar: legacy path == facade path, all four
    backends, serial and sharded."""

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    @pytest.mark.parametrize("workers", (1, 2))
    def test_run_on_workload_matches_session_run(self, backend, workers):
        spec = _small_spec(oracle_backend=backend, dispatch_workers=workers)
        config = spec.config()
        workload = build_workload("CDC", config)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            legacy = run_on_workload("WATTER-timeout", workload, config)
        facade = Session().run(spec)
        assert _deterministic(facade.metrics) == _deterministic(legacy.metrics)
        # The per-order accounting agrees too, not just the aggregates.
        # Order/worker ids are process-global counters, so two
        # separately generated (but identical) workloads shift them by
        # a constant; everything decision-derived must match exactly.
        assert _strip_ids(facade.outcomes) == _strip_ids(legacy.collector.outcomes)

    def test_run_comparison_adapter_matches_direct_session(self):
        config = default_config("CDC", num_orders=24, num_workers=6, horizon=900.0)
        from repro.experiments.runner import run_comparison

        legacy = run_comparison(
            "CDC", config, algorithms=("WATTER-online", "NonSharing")
        )
        spec = ScenarioSpec.from_config("CDC", config)
        facade = Session().compare(spec, algorithms=("WATTER-online", "NonSharing"))
        assert [_deterministic(m) for m in legacy] == [
            _deterministic(run.metrics) for run in facade
        ]


class TestDeprecationShims:
    def test_direct_config_construction_warns_once(self):
        with pytest.warns(DeprecationWarning, match="repro.api.ScenarioSpec"):
            SimulationConfig(num_orders=10)

    def test_internal_construction_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            default_config("CDC", num_orders=10)
            ScenarioSpec(num_orders=10).config()
            Session().network(ScenarioSpec(network="grid", grid_rows=4, grid_cols=4))
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations


class TestSessionReuse:
    def test_ch_oracle_built_once_for_two_scenarios(self):
        session = Session()
        spec = _small_spec(oracle_backend="ch", num_orders=16)
        first = session.run(spec)
        oracle_after_first = session.network(spec).oracle
        second = session.run(spec.with_overrides(num_orders=20))
        assert session.network(spec).oracle is oracle_after_first
        assert session.oracle_builds == 1
        assert first.metrics.total_orders != second.metrics.total_orders

    def test_workloads_are_memoised_per_shape(self):
        session = Session()
        spec = _small_spec()
        assert session.workload(spec) is session.workload(spec)
        assert session.workload(spec) is not session.workload(
            spec.with_overrides(num_orders=30)
        )

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="WATTER-expect needs numpy (GMM fitting)"
    )
    def test_custom_workload_providers_are_not_shared(self):
        session = Session()
        spec = _small_spec(algorithm="WATTER-expect")
        first = session.workload(spec.with_overrides(seed=100))
        second = session.workload(spec.with_overrides(seed=200))
        # a provider fitted to one demand model must never silently
        # serve another caller-built workload
        assert session.expect_provider(spec, workload=first) is not (
            session.expect_provider(spec, workload=second)
        )

    def test_compare_preserves_the_specs_use_rl(self):
        # the module-level facade must not clobber spec.use_rl with a
        # False default; None means "keep the spec's setting"
        spec = _small_spec(algorithm="NonSharing", use_rl=True)
        result = compare(spec, algorithms=("NonSharing",))[0]
        assert result.spec.use_rl is True

    def test_compare_shares_one_workload(self):
        session = Session()
        spec = _small_spec()
        results = session.compare(spec, algorithms=("WATTER-online", "NonSharing"))
        assert [run.algorithm for run in results] == ["WATTER-online", "NonSharing"]
        assert len({run.graph_hash for run in results}) == 1
        assert all(
            run.metrics.total_orders == results[0].metrics.total_orders
            for run in results
        )


class TestOracleCachePersistence:
    def test_fresh_session_loads_preprocessing_from_disk(self, tmp_path):
        spec = ScenarioSpec(
            network="grid",
            grid_rows=8,
            grid_cols=8,
            num_orders=10,
            num_workers=3,
            horizon=600.0,
            seed=5,
            oracle_backend="ch",
            oracle_cache_dir=str(tmp_path),
        )
        cold = Session()
        cold.prepare(spec)
        assert not cold.network(spec).oracle.preprocessing_loaded
        assert list(tmp_path.glob("ch-*.json"))
        # a brand-new session (fresh process stand-in: no shared state)
        warm = Session()
        warm.prepare(spec)
        assert warm.network(spec).oracle.preprocessing_loaded

    def test_session_level_cache_dir_applies_to_specs(self, tmp_path):
        spec = ScenarioSpec(
            network="grid",
            grid_rows=6,
            grid_cols=6,
            num_orders=10,
            num_workers=3,
            horizon=600.0,
            oracle_backend="ch",
        )
        session = Session(oracle_cache_dir=str(tmp_path))
        session.prepare(spec)
        assert list(tmp_path.glob("ch-*.json"))

    def test_restored_oracle_answers_identically(self, tmp_path):
        graph = grid_city(rows=7, cols=7, seed=2, jitter=0.2).graph
        cold = create_oracle("ch", graph, cache_dir=str(tmp_path))
        warm = create_oracle("ch", graph, cache_dir=str(tmp_path))
        assert warm.preprocessing_loaded and not cold.preprocessing_loaded
        nodes = sorted(graph.nodes)
        for source in nodes[::5]:
            for target in nodes[::7]:
                assert warm.travel_time(source, target) == pytest.approx(
                    cold.travel_time(source, target), rel=1e-9
                )
        # path unpacking works through restored shortcut middles
        path = warm.shortest_path(nodes[0], nodes[-1])
        assert path[0] == nodes[0] and path[-1] == nodes[-1]

    def test_corrupt_cache_file_is_rebuilt(self, tmp_path):
        graph = grid_city(rows=5, cols=5, seed=2, jitter=0.2).graph
        create_oracle("ch", graph, cache_dir=str(tmp_path))
        path = ch_cache_path(tmp_path, graph, 5)
        path.write_text("{not json")
        rebuilt = create_oracle("ch", graph, cache_dir=str(tmp_path))
        assert not rebuilt.preprocessing_loaded
        # and the file was repaired for the next process
        assert load_ch_preprocessing(path, graph, 5) is not None

    def test_duplicated_order_entry_forces_rebuild(self, tmp_path):
        import json

        graph = grid_city(rows=5, cols=5, seed=1, jitter=0.2).graph
        create_oracle("ch", graph, cache_dir=str(tmp_path))
        path = ch_cache_path(tmp_path, graph, 5)
        payload = json.loads(path.read_text())
        # a non-permutation order would silently corrupt rank-based
        # up/down edge classification; it must be rejected on load
        payload["data"]["order"][1] = payload["data"]["order"][0]
        path.write_text(json.dumps(payload))
        rebuilt = create_oracle("ch", graph, cache_dir=str(tmp_path))
        assert not rebuilt.preprocessing_loaded

    def test_cache_is_keyed_by_graph_content(self, tmp_path):
        one = grid_city(rows=5, cols=5, seed=1, jitter=0.2).graph
        two = grid_city(rows=5, cols=5, seed=9, jitter=0.2).graph
        assert graph_signature(one) != graph_signature(two)
        create_oracle("ch", one, cache_dir=str(tmp_path))
        other = create_oracle("ch", two, cache_dir=str(tmp_path))
        assert not other.preprocessing_loaded
        assert len(list(tmp_path.glob("ch-*.json"))) == 2


class TestCacheBenchmark:
    def test_cold_measurement_survives_a_warm_cache_dir(self, tmp_path):
        from repro.experiments.benchmarking import benchmark_ch_preprocessing_cache

        graph = grid_city(rows=7, cols=7, seed=2, jitter=0.2).graph
        first = benchmark_ch_preprocessing_cache(
            graph=graph, cache_dir=str(tmp_path)
        )
        # Second call against the now-warm persistent directory: the
        # "cold" side must still contract (not restore), so the ratio
        # stays a contraction-vs-restore measurement.
        second = benchmark_ch_preprocessing_cache(
            graph=graph, cache_dir=str(tmp_path)
        )
        for result in (first, second):
            assert result.loaded_from_cache
            assert result.speedup > 1.5

    def test_training_subsample_thins_a_fixed_workload(self):
        from repro.api.session import _training_subsample

        session = Session()
        spec = _small_spec(num_orders=20)
        workload = session.workload(spec)
        training = _training_subsample(workload, spec.config())
        assert 0 < len(training.orders) < len(workload.orders)
        assert set(o.order_id for o in training.orders) <= set(
            o.order_id for o in workload.orders
        )
        assert training.network is workload.network


class _CountingHooks(SimulationHooks):
    def __init__(self) -> None:
        self.arrivals = []
        self.checks = []
        self.assigned = []

    def on_order_arrival(self, order, now):
        self.arrivals.append((order.order_id, now))

    def on_periodic_check(self, now):
        self.checks.append(now)

    def on_assign(self, served):
        self.assigned.append(served.order.order_id)


class TestEventHooks:
    def test_hooks_observe_the_whole_run(self):
        hooks = _CountingHooks()
        result = Session().run(_small_spec(), hooks=hooks)
        assert len(hooks.arrivals) == result.metrics.total_orders
        assert len(hooks.assigned) == result.metrics.served_orders
        assert hooks.checks == sorted(hooks.checks)
        assert len(hooks.checks) > 0
        # arrivals are reported at their release times
        assert all(now >= 0 for _, now in hooks.arrivals)

    def test_hooks_do_not_change_metrics(self):
        plain = Session().run(_small_spec())
        hooked = Session().run(_small_spec(), hooks=_CountingHooks())
        assert _deterministic(plain.metrics) == _deterministic(hooked.metrics)


class TestCsvReplay:
    def test_replay_reproduces_the_source_workload(self, tmp_path):
        # The shared name keeps the workload label identical between the
        # synthetic run and its CSV replay, so metrics compare exactly.
        spec = ScenarioSpec(
            name="replay-city",
            network="grid",
            grid_rows=8,
            grid_cols=8,
            num_orders=20,
            num_workers=5,
            horizon=900.0,
            seed=4,
            algorithm="WATTER-timeout",
        )
        session = Session()
        source = session.workload(spec)
        orders_csv = tmp_path / "orders.csv"
        workers_csv = tmp_path / "workers.csv"
        orders_to_csv(source.orders, orders_csv)
        workers_to_csv(source.workers, workers_csv)
        replay = spec.with_overrides(
            workload="csv",
            orders_csv=str(orders_csv),
            workers_csv=str(workers_csv),
        )
        direct = session.run(spec)
        replayed = session.run(replay)
        # same orders, same workers, same (session-shared) network: the
        # replay is bit-for-bit the original run
        assert _deterministic(replayed.metrics) == _deterministic(direct.metrics)

    def test_replay_rejects_foreign_nodes(self, tmp_path):
        spec = ScenarioSpec(
            network="grid",
            grid_rows=6,
            grid_cols=6,
            num_orders=10,
            num_workers=3,
            horizon=600.0,
            seed=4,
        )
        session = Session()
        source = session.workload(spec)
        orders_csv = tmp_path / "orders.csv"
        orders_to_csv(source.orders, orders_csv)
        wrong_network = spec.with_overrides(
            grid_rows=3,
            grid_cols=3,
            workload="csv",
            orders_csv=str(orders_csv),
        )
        with pytest.raises(ConfigurationError, match="absent from"):
            session.workload(wrong_network)


class TestFacadeFunctions:
    def test_run_scenario_and_compare(self):
        spec = _small_spec(algorithm="NonSharing")
        single = run_scenario(spec)
        assert single.algorithm == "NonSharing"
        several = compare(spec, algorithms=("NonSharing", "WATTER-online"))
        assert _deterministic(several[0].metrics) == _deterministic(single.metrics)

    def test_sweep_shares_a_session(self):
        points = sweep(
            _small_spec(algorithm="NonSharing"),
            "num_orders",
            (12, 18),
            algorithms=("NonSharing",),
        )
        assert [point.value for point in points] == [12, 18]
        totals = [point.results[0].metrics.total_orders for point in points]
        assert totals == [12, 18]
        # same network either way: the sweep shares one session
        hashes = {point.results[0].graph_hash for point in points}
        assert len(hashes) == 1

    def test_run_result_is_self_describing(self):
        result = run_scenario(_small_spec(name="probe"))
        assert result.spec.name == "probe"
        assert len(result.graph_hash) == 64
        assert set(result.timings) == {
            "prepare_seconds",
            "run_seconds",
            "total_seconds",
        }
        summary = result.summary()
        assert summary["scenario"] == "probe"
        assert summary["graph_hash"] == result.graph_hash
