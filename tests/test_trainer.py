"""Tests for offline experience generation and value-function training."""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY
from repro.config import LearningConfig, SimulationConfig
from repro.core.state import StateEncoder
from repro.core.strategies import ConstantThresholdProvider
from repro.datasets.workloads import build_workload
from repro.exceptions import LearningError
from repro.learning.trainer import ValueFunctionTrainer, generate_experience
from repro.network.grid import GridIndex

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="value-function training is numpy-only"
)


@pytest.fixture(scope="module")
def training_setup():
    config = SimulationConfig(
        num_orders=30,
        num_workers=6,
        horizon=900.0,
        check_period=15.0,
        time_slot=15.0,
        grid_size=4,
        seed=5,
    )
    workload = build_workload("CDC", config)
    encoder = StateEncoder(
        GridIndex(workload.network, size=config.grid_size),
        time_slot=config.time_slot,
        horizon=config.horizon,
    )
    provider = ConstantThresholdProvider(120.0)
    transitions = generate_experience(workload, config, encoder, provider)
    return config, workload, encoder, transitions


class TestGenerateExperience:
    def test_produces_transitions(self, training_setup):
        _, workload, encoder, transitions = training_setup
        assert len(transitions) > 0
        for transition in transitions:
            assert transition.state.shape == (encoder.dimension,)
            assert transition.action in (0, 1)
            assert transition.penalty >= 0.0

    def test_every_order_has_a_terminal_transition(self, training_setup):
        _, workload, _, transitions = training_setup
        terminal = [t for t in transitions if t.done]
        # every order eventually terminates (dispatch or rejection)
        assert len(terminal) >= 1
        assert all(t.next_state is None for t in terminal)

    def test_wait_transitions_have_negative_slot_reward(self, training_setup):
        config, _, _, transitions = training_setup
        waits = [t for t in transitions if not t.done]
        assert waits, "expected at least one wait transition"
        for transition in waits:
            assert transition.reward == pytest.approx(-config.time_slot)
            assert transition.next_state is not None

    def test_dispatch_rewards_bounded_by_penalty(self, training_setup):
        _, _, _, transitions = training_setup
        for transition in transitions:
            if transition.done and transition.action == 1:
                assert transition.reward <= transition.penalty + 1e-6

    def test_workload_not_mutated(self, training_setup):
        _, workload, _, _ = training_setup
        # the workers in the workload stay idle: the trainer clones them
        assert all(worker.is_idle for worker in workload.workers)


class TestValueFunctionTrainer:
    def test_training_requires_experience(self, training_setup):
        config, _, encoder, _ = training_setup
        trainer = ValueFunctionTrainer(encoder, LearningConfig(epochs=1))
        with pytest.raises(LearningError):
            trainer.train()

    def test_training_produces_report_and_provider(self, training_setup):
        config, workload, encoder, transitions = training_setup
        learning = LearningConfig(epochs=2, batch_size=16, hidden_sizes=(16,), seed=2)
        trainer = ValueFunctionTrainer(encoder, learning)
        trainer.add_experience(transitions)
        report = trainer.train()
        assert report.transitions == len(transitions)
        assert report.epochs == 2
        assert len(report.losses) >= 2
        assert report.final_loss == report.losses[-1]
        assert report.mean_loss >= 0.0

        provider = trainer.build_provider()
        order = workload.orders[0]
        theta = provider.threshold(order, order.release_time)
        assert 0.0 <= theta <= order.penalty

    def test_training_improves_fit_on_terminal_transitions(self, training_setup):
        """On stationary targets (terminal transitions only, no bootstrap)
        the value network's fit to the recorded returns must improve."""
        import numpy as np

        _, _, encoder, transitions = training_setup
        terminal = [t for t in transitions if t.done]
        assert terminal, "expected terminal transitions in the experience"
        states = np.vstack([t.state for t in terminal])
        returns = np.array([t.reward for t in terminal])
        learning = LearningConfig(
            epochs=30, batch_size=16, hidden_sizes=(16,), learning_rate=5e-3, seed=3
        )
        trainer = ValueFunctionTrainer(encoder, learning)
        trainer.add_experience(terminal)
        mse_before = float(np.mean((trainer.network.values(states) - returns) ** 2))
        trainer.train()
        mse_after = float(np.mean((trainer.network.values(states) - returns) ** 2))
        assert mse_after < mse_before
