"""Chaos and resilience tests for the fault-tolerance runtime.

Covers the ``repro.resilience`` building blocks in isolation (retry,
cancellation, circuit breaker, fault injector), the degradation chains
threaded through the oracle registry and the dispatch engine, and the
end-to-end contract the committed fault schedules in
``tests/fault_schedules/`` pin down: under injected faults a run either
completes with metrics identical to a fault-free baseline, or fails with
a structured error naming the fault site — it never hangs and never
silently returns different numbers.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, Session
from repro.network.generators import grid_city
from repro.network.oracle import create_oracle
from repro.network.oracle.cache import (
    ch_cache_path,
    load_ch_preprocessing_outcome,
)
from repro.resilience import (
    CancellationToken,
    CircuitBreaker,
    DegradationLog,
    FaultInjector,
    InjectedOSError,
    InjectedRuntimeError,
    RetryPolicy,
    RunCancelled,
    active_injector,
    injected_faults,
    retry_call,
)
from repro.resilience.degradation import CLOSED, HALF_OPEN, OPEN
from repro.serve import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    ProtocolError,
    ScenarioService,
)

SCHEDULE_DIR = Path(__file__).parent / "fault_schedules"
SCHEDULES = sorted(SCHEDULE_DIR.glob("*.json"))

_WAIT = 240.0  # generous per-run bound; the chaos CI job enforces a hard one


def _grid_spec(**overrides) -> ScenarioSpec:
    base = dict(
        network="grid",
        grid_rows=4,
        grid_cols=4,
        num_orders=12,
        num_workers=4,
        horizon=200.0,
        seed=7,
        algorithm="GDP",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _assert_rows_equal(got: dict, want: dict) -> None:
    """Summary rows must agree exactly, floats within fp tolerance."""
    assert set(got) == set(want)
    for key, expected in want.items():
        if key == "running_time":
            continue
        if isinstance(expected, float):
            assert got[key] == pytest.approx(expected, rel=1e-9), key
        else:
            assert got[key] == expected, key


class FakeClock:
    """Deterministic monotonic clock for deadline and breaker tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_delays_are_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=42)
        delays = policy.delays()
        assert delays == policy.delays()  # same seed, same jitter
        assert len(delays) == 3
        assert all(delay >= 0.0 for delay in delays)
        assert delays != RetryPolicy(max_attempts=4, base_delay=0.1, seed=43).delays()

    def test_recovers_after_transient_failures(self):
        calls = []
        sleeps: list[float] = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return 7

        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        result = retry_call(flaky, policy=policy, sleep=sleeps.append)
        assert result == 7
        assert len(calls) == 3
        assert sleeps == policy.delays()[:2]

    def test_exhaustion_reraises_last_failure(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError(f"attempt {len(calls)}")

        with pytest.raises(OSError, match="attempt 3"):
            retry_call(
                always_fails,
                policy=RetryPolicy(max_attempts=3, base_delay=0.01),
                sleep=lambda _: None,
            )
        assert len(calls) == 3

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(
                wrong_kind,
                policy=RetryPolicy(max_attempts=5, base_delay=0.01),
                sleep=lambda _: None,
            )
        assert len(calls) == 1

    def test_on_retry_observes_each_attempt(self):
        seen: list[tuple[int, str]] = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("blip")
            return "ok"

        retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=2, base_delay=0.01),
            on_retry=lambda attempt, exc, delay: seen.append((attempt, str(exc))),
            sleep=lambda _: None,
        )
        assert seen == [(1, "blip")]


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
class TestCancellationToken:
    def test_deadline_expiry(self):
        clock = FakeClock()
        token = CancellationToken(5.0, clock=clock)
        token.start()
        token.check()  # inside budget
        clock.advance(5.1)
        with pytest.raises(RunCancelled) as exc_info:
            token.check()
        assert "deadline" in exc_info.value.reason
        assert token.cancelled

    def test_deadline_measured_from_start_not_construction(self):
        clock = FakeClock()
        token = CancellationToken(1.0, clock=clock)
        clock.advance(10.0)  # queueing time must not consume the budget
        token.start()
        token.check()
        clock.advance(1.5)
        with pytest.raises(RunCancelled):
            token.check()

    def test_start_is_idempotent(self):
        clock = FakeClock()
        token = CancellationToken(1.0, clock=clock)
        token.start()
        clock.advance(0.9)
        token.start()  # must not re-arm the deadline
        clock.advance(0.2)
        with pytest.raises(RunCancelled):
            token.check()

    def test_explicit_cancel_first_reason_wins(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        with pytest.raises(RunCancelled) as exc_info:
            token.check()
        assert exc_info.value.reason == "first"

    def test_no_deadline_never_expires(self):
        clock = FakeClock()
        token = CancellationToken(clock=clock)
        token.start()
        clock.advance(1e9)
        token.check()
        assert token.remaining_seconds() is None


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=30.0, clock=clock)
        assert breaker.state == CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.seconds_until_retry() == pytest.approx(30.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits for its verdict

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)  # not a full cool-down yet
        assert not breaker.allow()


# ----------------------------------------------------------------------
# degradation log
# ----------------------------------------------------------------------
class TestDegradationLog:
    def test_records_structured_events(self):
        log = DegradationLog()
        log.record("oracle.backend", "ch", "lazy", "construction failed")
        assert len(log) == 1
        (event,) = log.as_dicts()
        assert event == {
            "site": "oracle.backend",
            "from": "ch",
            "to": "lazy",
            "reason": "construction failed",
        }


# ----------------------------------------------------------------------
# fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_unknown_schedule_key_is_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule keys"):
            FaultInjector({"some.site": {"explode": True}})

    def test_from_dict_accepts_wrapper_and_ignores_metadata(self):
        injector = FaultInjector.from_dict(
            {
                "expect": "identical",
                "seed": 9,
                "spec_overrides": {"oracle_backend": "ch"},
                "faults": {"oracle.cache.load": {"fail_first": 1}},
            }
        )
        assert injector.sites() == ("oracle.cache.load",)

    def test_fires_on_scheduled_calls_only(self):
        injector = FaultInjector({"io.site": {"fail_calls": [2]}})
        injector.fire("io.site")  # call 1: clean
        with pytest.raises(InjectedOSError) as exc_info:
            injector.fire("io.site")  # call 2: scheduled
        assert exc_info.value.site == "io.site"
        assert exc_info.value.call == 2
        injector.fire("io.site")  # call 3: clean again
        assert injector.counts() == {"io.site": 3}

    def test_runtime_exception_kind(self):
        injector = FaultInjector(
            {"build.site": {"fail_first": 1, "exception": "runtime"}}
        )
        with pytest.raises(InjectedRuntimeError):
            injector.fire("build.site")

    def test_kill_outside_a_worker_raises_instead_of_exiting(self):
        injector = FaultInjector({"dispatch.shard": {"kill_calls": [1]}})
        with pytest.raises(InjectedRuntimeError, match="outside a worker"):
            injector.fire("dispatch.shard")

    def test_corrupt_file_is_deterministic(self, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text('{"payload": 1}')
        path_b.write_text('{"payload": 1}')
        schedule = {"oracle.cache.file": {"corrupt_first": 1}}
        assert FaultInjector(schedule, seed=5).corrupt_file(
            "oracle.cache.file", path_a
        )
        assert FaultInjector(schedule, seed=5).corrupt_file(
            "oracle.cache.file", path_b
        )
        assert path_a.read_bytes() == path_b.read_bytes()
        assert path_a.read_bytes().startswith(b"\x00corrupt\x00")

    def test_corrupt_never_creates_missing_files(self, tmp_path):
        missing = tmp_path / "nope.json"
        injector = FaultInjector({"oracle.cache.file": {"corrupt_first": 1}})
        assert not injector.corrupt_file("oracle.cache.file", missing)
        assert not missing.exists()

    def test_injected_faults_scopes_installation(self):
        from repro.resilience import fault_point

        injector = FaultInjector({"scoped.site": {"fail_first": 1}})
        assert active_injector() is None
        with injected_faults(injector):
            assert active_injector() is injector
            with pytest.raises(InjectedOSError):
                fault_point("scoped.site")
        assert active_injector() is None
        fault_point("scoped.site")  # no-op once uninstalled

    def test_scheduled_latency_is_applied(self):
        injector = FaultInjector({"slow.site": {"latency_seconds": 0.05}})
        started = time.perf_counter()
        injector.fire("slow.site")
        assert time.perf_counter() - started >= 0.05


# ----------------------------------------------------------------------
# oracle cache failure accounting (satellite: load failures + quarantine)
# ----------------------------------------------------------------------
class TestCacheFailureHandling:
    HOPS = 5  # the registry's default witness hop limit

    def _warm_cache(self, tmp_path):
        network = grid_city(4, 4, seed=0)
        cache_dir = tmp_path / "ch-cache"
        cache_dir.mkdir()
        create_oracle("ch", network.graph, cache_dir=str(cache_dir))
        path = ch_cache_path(cache_dir, network.graph, self.HOPS)
        assert path.exists()
        return network, cache_dir, path

    def test_unparseable_cache_is_quarantined(self, tmp_path):
        network, _cache_dir, path = self._warm_cache(tmp_path)
        path.write_text("definitely not json {")
        outcome = load_ch_preprocessing_outcome(path, network.graph, self.HOPS)
        assert outcome.payload is None
        assert outcome.corrupt
        assert outcome.load_failures >= 1
        assert outcome.quarantined is not None
        assert outcome.quarantined.name.endswith(".corrupt")
        assert outcome.quarantined.exists()
        assert not path.exists()  # the rotten file was moved aside

    def test_transient_load_failures_are_counted_in_stats(self, tmp_path):
        network, cache_dir, _path = self._warm_cache(tmp_path)
        injector = FaultInjector(
            {"oracle.cache.load": {"fail_first": 2, "exception": "os"}}
        )
        with injected_faults(injector):
            oracle = create_oracle(
                "ch", network.graph, cache_dir=str(cache_dir)
            )
        # Two failed reads, then the retried third succeeded — served
        # from cache, failures on the books.
        assert oracle.cache_load_failures == 2
        assert oracle.stats().as_dict()["ch.cache_load_failures"] == 2.0

    def test_corrupt_cache_rebuilds_and_records_degradation(self, tmp_path):
        network, cache_dir, path = self._warm_cache(tmp_path)
        log = DegradationLog()
        injector = FaultInjector({"oracle.cache.file": {"corrupt_first": 1}})
        with injected_faults(injector):
            oracle = create_oracle(
                "ch", network.graph, cache_dir=str(cache_dir), degradations=log
            )
        events = log.as_dicts()
        assert any(
            event["site"] == "oracle.cache" and event["to"] == "rebuild"
            for event in events
        )
        assert path.with_name(path.name + ".corrupt").exists()
        assert path.exists()  # rebuilt and re-persisted
        assert oracle.cache_load_failures >= 1
        nodes = list(network.graph.nodes)
        assert oracle.travel_time(nodes[0], nodes[-1]) >= 0.0


# ----------------------------------------------------------------------
# oracle backend degradation (ch build failure -> lazy stand-in)
# ----------------------------------------------------------------------
class TestOracleBackendFallback:
    def test_ch_build_failure_degrades_to_lazy_and_stays_sticky(self):
        session = Session()
        spec = _grid_spec(oracle_backend="ch")
        injector = FaultInjector(
            {"oracle.ch.build": {"fail_first": 8, "exception": "runtime"}}
        )
        with injected_faults(injector):
            first = session.run(spec)
            assert any(
                event["site"] == "oracle.backend" and event["to"] == "lazy"
                for event in first.degradations
            )
            build_attempts = injector.counts()["oracle.ch.build"]
            assert build_attempts == 1
            # The stand-in is sticky: a second run must not re-run the
            # failing construction (and records no new degradation).
            second = session.run(spec)
            assert injector.counts()["oracle.ch.build"] == build_attempts
        assert second.degradations == ()
        _assert_rows_equal(
            second.metrics.summary_row(), first.metrics.summary_row()
        )


# ----------------------------------------------------------------------
# deadlines end-to-end
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_spec_field_is_validated(self):
        with pytest.raises(Exception, match="deadline"):
            _grid_spec(deadline_seconds=0.0)

    def test_deadline_cancels_run_with_partial_and_no_leaked_threads(self):
        # An auto-advancing clock expires the 1s budget a few reads in,
        # deterministically — no reliance on wall-clock race timing.
        clock = FakeClock()
        original = clock.__call__

        def ticking() -> float:
            clock.advance(0.25)
            return original()

        token = CancellationToken(1.0, clock=ticking)
        session = Session()
        spec = _grid_spec(dispatch_workers=2)
        with pytest.raises(RunCancelled) as exc_info:
            session.run(spec, cancellation=token)
        assert "deadline" in exc_info.value.reason
        partial = exc_info.value.partial
        assert partial is not None
        assert set(partial["timings"]) == {
            "prepare_seconds",
            "run_seconds",
            "total_seconds",
        }
        assert partial["graph_hash"]
        assert isinstance(partial["degradations"], list)
        # The engine's finally-close joined its shard executor: nothing
        # named dispatch-shard may survive the unwound run.
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("dispatch-shard") and thread.is_alive()
        ]
        assert leaked == []


# ----------------------------------------------------------------------
# service-level resilience (cancel, admission queue, quarantine)
# ----------------------------------------------------------------------
class TestServiceResilience:
    def test_deadline_run_reaches_cancelled_state(self):
        spec = _grid_spec(num_orders=60, horizon=2000.0, deadline_seconds=0.001)
        with ScenarioService(max_runs=1) as service:
            record = service.submit_spec(spec)
            record = service.wait(record.run_id, timeout=_WAIT)
            assert record.status == CANCELLED
            assert record.error["error"] == "cancelled"
            assert "deadline" in record.error["detail"]
            assert record.result is not None  # the partial snapshot
            assert "timings" in record.result
            metrics = service.metrics()
            assert metrics["runs"][CANCELLED] == 1

    def test_cancel_queued_run_before_it_starts(self):
        injector = FaultInjector({"session.prepare": {"latency_seconds": 0.4}})
        with injected_faults(injector):
            with ScenarioService(max_runs=1) as service:
                first = service.submit_spec(_grid_spec())
                queued = service.submit_spec(_grid_spec(seed=8))
                cancelled = service.cancel(queued.run_id, reason="superseded")
                assert cancelled.status == CANCELLED
                assert cancelled.error["detail"] == "superseded"
                first = service.wait(first.run_id, timeout=_WAIT)
                assert first.status == COMPLETED
        # The cancelled run never executed: no result beyond the marker.
        assert cancelled.result is None

    def test_cancel_running_run_stops_at_next_checkpoint(self):
        injector = FaultInjector({"session.prepare": {"latency_seconds": 0.5}})
        with injected_faults(injector):
            with ScenarioService(max_runs=1) as service:
                record = service.submit_spec(_grid_spec())
                deadline = time.monotonic() + _WAIT
                while record.status == QUEUED and time.monotonic() < deadline:
                    time.sleep(0.01)  # wait for the executor to claim it
                service.cancel(record.run_id, reason="operator said stop")
                record = service.wait(record.run_id, timeout=_WAIT)
                assert record.status == CANCELLED
                assert record.error["detail"] == "operator said stop"

    def test_cancel_unknown_run_is_404(self):
        with ScenarioService(max_runs=1) as service:
            with pytest.raises(ProtocolError) as exc_info:
                service.cancel("run-999999")
            assert exc_info.value.status == 404

    def test_admission_queue_bound_rejects_with_429(self):
        injector = FaultInjector({"session.prepare": {"latency_seconds": 0.4}})
        with injected_faults(injector):
            with ScenarioService(max_runs=1, max_queue=1) as service:
                running = service.submit_spec(_grid_spec())
                queued = service.submit_spec(_grid_spec(seed=8))
                with pytest.raises(ProtocolError) as exc_info:
                    service.submit_spec(_grid_spec(seed=9))
                assert exc_info.value.status == 429
                assert exc_info.value.error == "overloaded"
                metrics = service.metrics()
                assert metrics["rejected_total"] == 1
                assert metrics["max_queue"] == 1
                service.cancel(queued.run_id)
                assert service.wait(running.run_id, timeout=_WAIT).status == COMPLETED

    def test_persistent_prepare_failure_trips_the_breaker(self):
        spec = _grid_spec()
        injector = FaultInjector(
            {"session.prepare": {"fail_first": 50, "exception": "os"}}
        )
        with injected_faults(injector):
            with ScenarioService(max_runs=1) as service:
                for _ in range(3):  # the pool's breaker threshold
                    record = service.submit_spec(spec)
                    record = service.wait(record.run_id, timeout=_WAIT)
                    assert record.status == FAILED
                    assert record.error["error"] == "run-failed"
                    assert "session.prepare" in record.error["detail"]
                with pytest.raises(ProtocolError) as exc_info:
                    service.submit_spec(spec)
                assert exc_info.value.status == 503
                assert exc_info.value.error == "session-quarantined"
                assert service.metrics()["pool"]["quarantined"] == 1


# ----------------------------------------------------------------------
# committed fault schedules: identical metrics or structured failure
# ----------------------------------------------------------------------
class TestFaultSchedules:
    def test_schedule_directory_is_not_empty(self):
        assert SCHEDULES, "tests/fault_schedules/ must ship committed schedules"

    @pytest.mark.parametrize(
        "schedule_path", SCHEDULES, ids=lambda path: path.stem
    )
    def test_run_under_schedule_is_identical_or_attributed(
        self, schedule_path, tmp_path
    ):
        doc = json.loads(schedule_path.read_text())
        expect = doc["expect"]
        assert expect in {"identical", "degraded", "error"}
        overrides = dict(doc.get("spec_overrides", {}))
        needs_cache = overrides.pop("needs_cache_dir", False)
        fresh_cache = overrides.pop("fresh_cache_dir", False)
        needs_state = overrides.pop("needs_state_dir", False)
        spec = _grid_spec(**overrides)

        shared_cache = None
        if needs_cache:
            shared_cache = tmp_path / "oracle-cache"
            shared_cache.mkdir()

        # Fault-free baseline on a fresh service; with a shared cache
        # dir this also warms the CH cache the fault run will load.
        with ScenarioService(
            max_runs=1,
            oracle_cache_dir=str(shared_cache) if shared_cache else None,
        ) as baseline_service:
            record = baseline_service.submit_spec(spec)
            baseline = baseline_service.wait(record.run_id, timeout=_WAIT)
        assert baseline.status == COMPLETED, baseline.error

        fault_cache = shared_cache
        if fresh_cache:
            # Save-path schedules need a cold cache so the build + save
            # actually run under injection.
            fault_cache = tmp_path / "fault-cache"
            fault_cache.mkdir()

        durable_kwargs = {}
        if needs_state:
            # Durability schedules (journal.append / checkpoint.write)
            # only fire on a service with a state dir; a small interval
            # guarantees checkpoints actually happen on a short run.
            durable_kwargs = {
                "state_dir": tmp_path / "state",
                "checkpoint_interval": 3,
            }

        injector = FaultInjector.from_dict(doc)
        with injected_faults(injector):
            with ScenarioService(
                max_runs=1,
                oracle_cache_dir=str(fault_cache) if fault_cache else None,
                **durable_kwargs,
            ) as service:
                record = service.submit_spec(spec)
                record = service.wait(record.run_id, timeout=_WAIT)

        assert record.status in {COMPLETED, FAILED}, "a faulted run must not hang"
        if expect == "error":
            assert record.status == FAILED
            # The structured error names the fault site it died at.
            assert any(
                site in record.error["detail"] for site in injector.sites()
            ), record.error
        else:
            assert record.status == COMPLETED, record.error
            _assert_rows_equal(
                record.result["metrics"], baseline.result["metrics"]
            )
            if expect == "degraded":
                assert record.result["degradations"], (
                    "schedule promises a recorded degradation"
                )


# ----------------------------------------------------------------------
# worker death mid-check (satellite: process dispatch equivalence)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process dispatch requires the fork start method",
)
class TestWorkerDeath:
    def test_killed_workers_degrade_without_changing_metrics(self):
        base = ScenarioSpec(
            dataset="CDC",
            num_orders=48,
            num_workers=6,
            horizon=1800.0,
            seed=23,
            check_period=15.0,
            algorithm="WATTER-timeout",
        )
        session = Session()
        serial = session.run(base)

        # Every forked worker inherits a zeroed call counter, so each
        # dies on its very first shard task: the first batch breaks the
        # pool, the restarted pool breaks again, and the engine degrades
        # to serial — which must answer with the exact same numbers.
        injector = FaultInjector({"dispatch.shard": {"kill_calls": [1]}})
        with injected_faults(injector):
            faulted = session.run(
                base.with_overrides(dispatch_workers=4, dispatch_mode="process")
            )
        _assert_rows_equal(
            faulted.metrics.summary_row(), serial.metrics.summary_row()
        )
        assert any(
            event["site"] == "dispatch.mode" and event["to"] == "serial"
            for event in faulted.degradations
        ), faulted.degradations
