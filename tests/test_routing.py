"""Unit tests for feasibility checks, route planning and greedy insertion."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleGroupError
from repro.model.route import Route, RouteStop, StopKind
from repro.routing.feasibility import (
    FeasibilityReport,
    check_capacity,
    check_deadlines,
    check_route,
    check_sequential,
)
from repro.routing.insertion import insert_order_into_route
from repro.routing.planner import RoutePlanner
from tests.conftest import make_order


class TestFeasibility:
    def test_report_helpers(self):
        assert FeasibilityReport.ok().feasible
        failure = FeasibilityReport.fail("bad")
        assert not failure.feasible
        assert failure.violations == ("bad",)

    def test_sequential_violation_detected(self, small_network):
        order = make_order(small_network, 0, 2)
        backwards = Route(
            [
                RouteStop(2, order.order_id, StopKind.DROPOFF),
                RouteStop(0, order.order_id, StopKind.PICKUP),
            ],
            small_network,
        )
        assert check_sequential(backwards, [order])

    def test_missing_stop_is_a_violation_not_a_crash(self, small_network):
        order = make_order(small_network, 0, 2)
        other = make_order(small_network, 1, 3)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        assert check_sequential(route, [other])

    def test_deadline_violation_detected(self, small_network):
        order = make_order(small_network, 0, 2, release=0.0)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        late_start = order.deadline  # starting at the deadline must fail
        assert check_deadlines(route, [order], start_time=late_start)

    def test_deadline_includes_approach_time(self, small_network):
        order = make_order(small_network, 0, 2, release=0.0)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        slack = order.max_response_time
        assert not check_deadlines(route, [order], 0.0, approach_time=slack - 1.0)
        assert check_deadlines(route, [order], 0.0, approach_time=slack + 1.0)

    def test_capacity_violation_detected(self, small_network):
        first = make_order(small_network, 0, 2, riders=2)
        second = make_order(small_network, 1, 3, riders=2)
        route = Route(
            [
                RouteStop(0, first.order_id, StopKind.PICKUP),
                RouteStop(1, second.order_id, StopKind.PICKUP),
                RouteStop(2, first.order_id, StopKind.DROPOFF),
                RouteStop(3, second.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        assert check_capacity(route, [first, second], capacity=3)
        assert not check_capacity(route, [first, second], capacity=4)

    def test_check_route_aggregates(self, small_network):
        order = make_order(small_network, 0, 2, release=0.0)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        assert check_route(route, [order], capacity=4, start_time=0.0).feasible


class TestRoutePlanner:
    def test_single_order_route_is_direct(self, planner, small_network):
        order = make_order(small_network, 0, 5)
        planned = planner.plan([order], capacity=4, start_time=0.0)
        assert planned.total_travel_time == pytest.approx(
            small_network.travel_time(0, 5)
        )

    def test_empty_group_rejected(self, planner):
        with pytest.raises(InfeasibleGroupError):
            planner.plan([], capacity=4, start_time=0.0)

    def test_pair_route_is_no_worse_than_sequential(self, planner, small_network):
        first = make_order(small_network, 0, 2)
        second = make_order(small_network, 1, 3)
        planned = planner.plan([first, second], capacity=4, start_time=0.0)
        sequential = (
            small_network.travel_time(0, 2)
            + small_network.travel_time(2, 1)
            + small_network.travel_time(1, 3)
        )
        assert planned.total_travel_time <= sequential + 1e-9

    def test_pair_route_respects_deadlines(self, planner, small_network):
        first = make_order(small_network, 0, 2, deadline_scale=1.2)
        second = make_order(small_network, 35, 30, deadline_scale=1.2)
        # Opposite corners with tight deadlines: no shared route is feasible.
        assert planner.try_plan([first, second], capacity=4, start_time=0.0) is None

    def test_capacity_limits_sharing(self, planner, small_network):
        first = make_order(small_network, 0, 2, riders=3)
        second = make_order(small_network, 1, 3, riders=3)
        assert planner.can_share(first, second, capacity=4, start_time=0.0) is None

    def test_can_share_close_orders(self, planner, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        assert planner.can_share(first, second, capacity=4, start_time=0.0) is not None

    def test_start_node_affects_feasibility(self, planner, small_network):
        order = make_order(small_network, 0, 2, deadline_scale=1.1)
        # Starting far away makes the approach eat the whole slack.
        assert planner.try_plan([order], 4, 0.0, start_node=35) is None
        assert planner.try_plan([order], 4, 0.0, start_node=0) is not None

    def test_large_group_uses_insertion_fallback(self, small_network):
        planner = RoutePlanner(small_network, exact_group_limit=2)
        orders = [
            make_order(small_network, 0, 24),
            make_order(small_network, 6, 30),
            make_order(small_network, 12, 30, deadline_scale=2.5),
        ]
        planned = planner.try_plan(orders, capacity=6, start_time=0.0)
        assert planned is not None
        assert set(planned.route.order_ids()) == {o.order_id for o in orders}

    def test_planned_route_is_feasible(self, planner, small_network):
        orders = [
            make_order(small_network, 0, 14),
            make_order(small_network, 1, 15),
        ]
        planned = planner.plan(orders, capacity=4, start_time=0.0)
        report = check_route(planned.route, orders, capacity=4, start_time=0.0)
        assert report.feasible


class TestInsertion:
    def test_insert_into_empty_route(self, small_network):
        order = make_order(small_network, 0, 5)
        result = insert_order_into_route(
            None, order, [], capacity=4, start_time=0.0, network=small_network
        )
        assert result is not None
        assert result.added_travel_time == pytest.approx(
            small_network.travel_time(0, 5)
        )

    def test_insert_second_order_keeps_first_feasible(self, small_network):
        first = make_order(small_network, 0, 14)
        base = insert_order_into_route(
            None, first, [], capacity=4, start_time=0.0, network=small_network
        )
        second = make_order(small_network, 1, 15)
        result = insert_order_into_route(
            base.route, second, [first], capacity=4, start_time=0.0, network=small_network
        )
        assert result is not None
        assert result.added_travel_time >= 0.0
        assert set(result.route.order_ids()) == {first.order_id, second.order_id}

    def test_infeasible_insertion_returns_none(self, small_network):
        first = make_order(small_network, 0, 2, deadline_scale=1.05)
        base = insert_order_into_route(
            None, first, [], capacity=4, start_time=0.0, network=small_network
        )
        far = make_order(small_network, 35, 30, deadline_scale=1.05)
        result = insert_order_into_route(
            base.route, far, [first], capacity=4, start_time=0.0, network=small_network
        )
        assert result is None

    def test_capacity_blocks_insertion(self, small_network):
        first = make_order(small_network, 0, 14, riders=2)
        base = insert_order_into_route(
            None, first, [], capacity=2, start_time=0.0, network=small_network
        )
        second = make_order(small_network, 1, 15, riders=2)
        overlapping = insert_order_into_route(
            base.route, second, [first], capacity=2, start_time=0.0, network=small_network
        )
        # The only feasible insertions must avoid overlapping occupancy.
        if overlapping is not None:
            assert overlapping.route.max_onboard_riders([first, second]) <= 2
