"""The benchmark regression gate's three-way ok/skip/fail classification.

``benchmarks/check_regression.py`` is deliberately dependency-free and
lives outside the package, so these tests load it by path.  What they
pin down is the reporting contract: a comparison that cannot run on
this machine (CPU-count mismatch, bar not applicable, csr kernel
missing because the candidate had no numpy) is a *skip* with a reason,
never a silent pass and never a spurious failure — and the summary
counts all three buckets so a half-skipped build is visible.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _trajectory(
    *,
    csr_speedup: float | None = 4.5,
    csr_applicable: bool = True,
    shard_speedup: float = 2.4,
    cpus: int = 4,
    bar_value: float = 4.5,
    bar_met: bool = True,
    bar_applicable: bool = True,
) -> dict:
    data = {
        "backends": [{"backend": "ch", "speedup": 20.0}],
        "parallel_dispatch": {
            "modes": {
                "process": {"speedup": shard_speedup, "available_cpus": cpus}
            }
        },
        "acceptance": {
            "csr_many_to_one_speedup": {
                "value": bar_value,
                "threshold": 3.0,
                "met": bar_met,
                "applicable": bar_applicable,
            }
        },
    }
    if csr_speedup is not None or not csr_applicable:
        data["csr_kernel"] = {
            "speedup": csr_speedup if csr_speedup is not None else 0.0,
            "applicable": csr_applicable,
        }
    return data


def test_identical_trajectories_all_pass():
    base = _trajectory()
    failures, skips, notes = check_regression.compare(base, _trajectory(), 0.3)
    assert failures == []
    assert skips == []
    assert len(notes) == 4  # ch ratio, csr ratio, shard ratio, bar


def test_degraded_ratio_fails():
    failures, _, _ = check_regression.compare(
        _trajectory(), _trajectory(csr_speedup=2.0), 0.3
    )
    assert any("csr_kernel" in failure for failure in failures)


def test_candidate_without_numpy_skips_the_csr_comparison():
    candidate = _trajectory(
        csr_speedup=0.0,
        csr_applicable=False,
        bar_value=0.0,
        bar_met=False,
        bar_applicable=False,
    )
    failures, skips, notes = check_regression.compare(
        _trajectory(), candidate, 0.3
    )
    assert failures == []
    assert any("numpy unavailable" in skip for skip in skips)
    assert any("not applicable" in skip for skip in skips)
    assert all("csr" not in note for note in notes)


def test_candidate_without_direct_contraction_skips_the_coarsen_ratio():
    """A fresh run that skipped the direct CH side must skip, not fail.

    The committed baseline carries the full >=100k-node measurement
    (applicable, met); default CI runs skip the tens-of-minutes direct
    contraction and record ``applicable: false`` — the gate must route
    both the ratio and the acceptance bar to skips with reasons.
    """
    baseline = _trajectory()
    baseline["coarsen"] = {"speedup": 40.0, "applicable": True}
    baseline["acceptance"]["coarsen_readiness_speedup"] = {
        "value": 40.0,
        "threshold": 10.0,
        "met": True,
        "applicable": True,
    }
    candidate = _trajectory()
    candidate["coarsen"] = {"speedup": 0.0, "applicable": False}
    candidate["acceptance"]["coarsen_readiness_speedup"] = {
        "value": 0.0,
        "threshold": 10.0,
        "met": False,
        "applicable": False,
    }
    failures, skips, notes = check_regression.compare(baseline, candidate, 0.3)
    assert failures == []
    assert any("REPRO_BENCH_COARSEN_FULL" in skip for skip in skips)
    assert any("coarsen_readiness_speedup" in skip for skip in skips)
    assert all("coarsen" not in note for note in notes)


def test_degraded_coarsen_ratio_fails_when_both_sides_measured():
    baseline = _trajectory()
    baseline["coarsen"] = {"speedup": 40.0, "applicable": True}
    candidate = _trajectory()
    candidate["coarsen"] = {"speedup": 12.0, "applicable": True}
    failures, _, _ = check_regression.compare(baseline, candidate, 0.3)
    assert any("coarsen.readiness_speedup" in failure for failure in failures)


def test_cpu_count_mismatch_skips_the_shard_comparison():
    failures, skips, _ = check_regression.compare(
        _trajectory(cpus=4), _trajectory(cpus=1, shard_speedup=0.6), 0.3
    )
    assert failures == []
    assert any("CPUs" in skip for skip in skips)


def test_acceptance_flip_fails():
    failures, _, _ = check_regression.compare(
        _trajectory(), _trajectory(bar_value=1.0, bar_met=False), 0.3
    )
    assert any("FLIPPED" in failure for failure in failures)


def test_bar_baseline_never_held_warns_instead_of_failing():
    baseline = _trajectory(bar_value=0.0, bar_met=False, bar_applicable=False)
    candidate = _trajectory(bar_value=1.0, bar_met=False)
    failures, skips, _ = check_regression.compare(baseline, candidate, 0.3)
    assert failures == []
    assert any("WARNING" in skip for skip in skips)


@pytest.mark.parametrize(
    "mutate, expected_exit",
    [(lambda t: t, 0), (lambda t: t["backends"][0].update(speedup=5.0) or t, 1)],
)
def test_main_exit_codes_and_summary(tmp_path, capsys, mutate, expected_exit):
    base_path = tmp_path / "base.json"
    cand_path = tmp_path / "cand.json"
    base_path.write_text(json.dumps(_trajectory()))
    cand_path.write_text(json.dumps(mutate(_trajectory())))
    exit_code = check_regression.main([str(base_path), str(cand_path)])
    assert exit_code == expected_exit
    captured = capsys.readouterr()
    output = captured.out + captured.err
    assert "passed," in output and "skipped," in output and "failed" in output
