"""Tests for the distance-oracle subsystem.

Covers:

* property-style agreement of every backend with plain Dijkstra on
  random grid and Manhattan-like networks (reachable and unreachable
  pairs),
* the batched ``travel_times_many`` API,
* LRU bounding and ``cache_info`` of the lazy backend,
* matrix batched refresh,
* the backend registry, and
* backend selection through ``SimulationConfig`` and the CLI.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.cli import build_parser, main
from repro.config import SimulationConfig
from repro.exceptions import ConfigurationError, UnreachableError
from repro.network.generators import grid_city, manhattan_like_city
from repro.network.graph import build_network
from repro.network.oracle import (
    CHOracle,
    DistanceOracle,
    LandmarkOracle,
    LazyDijkstraOracle,
    MatrixOracle,
    available_backends,
    configure_oracle,
    create_oracle,
    register_oracle,
)
from repro.network.oracle.registry import ORACLE_BACKENDS

BACKEND_CLASSES = {
    "lazy": LazyDijkstraOracle,
    "landmark": LandmarkOracle,
    "matrix": MatrixOracle,
    "ch": CHOracle,
}

#: Backends that assemble distances from precomputed parts (half-paths,
#: shortcut weights) whose float additions can associate differently
#: than a monolithic Dijkstra's — exact, but not bitwise identical.
REASSOCIATING_BACKENDS = {"landmark", "ch"}


def _make(backend: str, graph: nx.DiGraph) -> DistanceOracle:
    return create_oracle(backend, graph, num_landmarks=6)


def _reference_distances(graph: nx.DiGraph, source: int) -> dict[int, float]:
    return nx.single_source_dijkstra_path_length(
        graph, source, weight="travel_time"
    )


@pytest.fixture(scope="module")
def networks():
    return {
        "grid": grid_city(8, 8, seed=11, jitter=0.35),
        "manhattan": manhattan_like_city(10, 6, seed=4),
    }


@pytest.fixture(scope="module")
def directed_network():
    """Two components, one of them a one-way chain: 0 -> 1 -> 2, {3, 4}."""
    return build_network(
        nodes=[(0, 0, 0), (1, 1, 0), (2, 2, 0), (3, 5, 5), (4, 6, 5)],
        edges=[(0, 1, 10.0), (1, 2, 5.0), (3, 4, 7.0)],
        bidirectional=False,
    )


class TestBackendAgreement:
    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    @pytest.mark.parametrize("city", ["grid", "manhattan"])
    def test_matches_dijkstra_on_sampled_pairs(self, networks, backend, city):
        graph = networks[city].graph
        oracle = _make(backend, graph)
        nodes = sorted(graph.nodes)
        import random

        rng = random.Random(42)
        for _ in range(150):
            source, target = rng.choice(nodes), rng.choice(nodes)
            want = _reference_distances(graph, source).get(target)
            if want is None:
                with pytest.raises(UnreachableError):
                    oracle.travel_time(source, target)
            else:
                got = oracle.travel_time(source, target)
                assert got == pytest.approx(want, rel=1e-9, abs=1e-6)

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_exact_backends_are_bitwise_identical(self, networks, backend):
        if backend in REASSOCIATING_BACKENDS:
            pytest.skip(f"{backend} assembles distances from precomputed parts")
        graph = networks["grid"].graph
        oracle = _make(backend, graph)
        nodes = sorted(graph.nodes)
        source = nodes[0]
        reference = _reference_distances(graph, source)
        for target in nodes[:: max(1, len(nodes) // 20)]:
            if target == source:
                continue
            assert oracle.travel_time(source, target) == reference[target]

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_unreachable_pairs_raise(self, directed_network, backend):
        oracle = _make(backend, directed_network.graph)
        assert oracle.travel_time(0, 2) == 15.0
        for source, target in [(2, 0), (0, 4), (4, 3), (3, 0)]:
            with pytest.raises(UnreachableError):
                oracle.travel_time(source, target)
            assert not oracle.is_reachable(source, target)

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_self_distance_is_zero(self, networks, backend):
        graph = networks["grid"].graph
        oracle = _make(backend, graph)
        node = sorted(graph.nodes)[5]
        assert oracle.travel_time(node, node) == 0.0


class TestTravelTimesMany:
    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_cross_product_matches_scalar_queries(self, networks, backend):
        graph = networks["manhattan"].graph
        oracle = _make(backend, graph)
        nodes = sorted(graph.nodes)
        sources, targets = nodes[:5], nodes[-5:] + nodes[:2]
        block = oracle.travel_times_many(sources, targets)
        for source in sources:
            reference = _reference_distances(graph, source)
            for target in set(targets):
                want = 0.0 if source == target else reference.get(target)
                if want is None:
                    assert (source, target) not in block
                else:
                    assert block[(source, target)] == pytest.approx(
                        want, rel=1e-9, abs=1e-6
                    )

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_unreachable_pairs_are_absent(self, directed_network, backend):
        oracle = _make(backend, directed_network.graph)
        block = oracle.travel_times_many([0, 2, 3], [2, 4])
        assert block[(0, 2)] == 15.0
        assert block[(3, 4)] == 7.0
        assert (2, 4) not in block and (0, 4) not in block

    def test_network_level_api_validates_nodes(self, networks):
        network = networks["grid"]
        with pytest.raises(Exception):
            network.travel_times_many([0], [999_999])


def _random_digraph(
    num_nodes: int, seed: int, strongly_connected: bool
) -> nx.DiGraph:
    """Random directed graph with asymmetric travel times.

    ``strongly_connected`` adds a directed Hamiltonian cycle so every
    node reaches every other; otherwise only a random oriented tree
    keeps the graph weakly connected, leaving plenty of unreachable
    (ordered) pairs.  Extra one-way edges with independent weights make
    ``d(a, b) != d(b, a)`` the common case either way.
    """
    rng = random.Random(seed)
    graph = nx.DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, x=rng.uniform(0.0, 10.0), y=rng.uniform(0.0, 10.0))
    if strongly_connected:
        cycle = list(range(num_nodes))
        rng.shuffle(cycle)
        for u, v in zip(cycle, cycle[1:] + cycle[:1]):
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    else:
        for node in range(1, num_nodes):
            parent = rng.randrange(node)
            u, v = (parent, node) if rng.random() < 0.5 else (node, parent)
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    for _ in range(3 * num_nodes):
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    return graph


class TestReverseForwardAgreement:
    """``travel_times_to`` must agree with per-pair *forward* queries.

    The subtle correctness risk of reverse-SSSP batching: on a directed
    graph a search from the target must run over the *reversed* edges,
    otherwise it silently computes ``d(target, source)`` instead of
    ``d(source, target)``.  These properties pin that down for every
    backend on strongly and weakly connected digraphs with asymmetric
    edges, including unreachable pairs.
    """

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    @pytest.mark.parametrize(
        "seed,strongly", [(13, True), (14, True), (21, False), (22, False)]
    )
    def test_travel_times_to_matches_forward_pairs(self, backend, seed, strongly):
        graph = _random_digraph(40, seed=seed, strongly_connected=strongly)
        oracle = _make(backend, graph)
        rng = random.Random(seed + 1)
        for target in rng.sample(sorted(graph.nodes), 5):
            arrivals = oracle.travel_times_to(target)
            for source in graph.nodes:
                want = _reference_distances(graph, source).get(target)
                got = arrivals.get(source)
                if want is None:
                    assert got is None, (source, target)
                else:
                    assert got == pytest.approx(want, rel=1e-9, abs=1e-6)

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_many_to_one_batch_matches_forward_pairs(self, backend):
        graph = _random_digraph(40, seed=31, strongly_connected=False)
        oracle = _make(backend, graph)
        nodes = sorted(graph.nodes)
        target = nodes[7]
        block = oracle.travel_times_many(nodes, [target])
        for source in nodes:
            want = (
                0.0
                if source == target
                else _reference_distances(graph, source).get(target)
            )
            if want is None:
                assert (source, target) not in block
            else:
                assert block[(source, target)] == pytest.approx(
                    want, rel=1e-9, abs=1e-6
                )

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_reverse_is_not_forward_on_asymmetric_graphs(self, backend):
        """Regression guard: reverse != transpose-free search."""
        graph = _random_digraph(30, seed=47, strongly_connected=True)
        oracle = _make(backend, graph)
        nodes = sorted(graph.nodes)
        asymmetric = 0
        for target in nodes[:6]:
            arrivals = oracle.travel_times_to(target)
            departures = oracle.travel_times_from(target)
            for source in nodes:
                if source == target:
                    continue
                if arrivals[source] != pytest.approx(departures[source]):
                    asymmetric += 1
        # A random strongly connected digraph with one-way weights must
        # produce plenty of d(s, t) != d(t, s) pairs; a backend whose
        # reverse search forgot to flip the edges would make these equal.
        assert asymmetric > 0

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_one_way_chain_reverse_queries(self, directed_network, backend):
        oracle = _make(backend, directed_network.graph)
        arrivals = oracle.travel_times_to(2)
        assert arrivals[0] == 15.0
        assert arrivals[1] == 5.0
        assert 3 not in arrivals and 4 not in arrivals
        # Nothing reaches node 0 except itself on the one-way chain.
        assert set(oracle.travel_times_to(0)) == {0}


class TestBatchStatsContract:
    """``travel_times_many`` counters: attempted vs answered pairs.

    ``batched_queries`` counts every pair of the requested product,
    ``queries`` only the pairs actually answered, and cache misses are
    charged once per distance map built — not once per pair, and not a
    second time through ``travel_times_from``.
    """

    def test_lazy_many_to_one_counts_one_miss_per_map(self, directed_network):
        oracle = LazyDijkstraOracle(directed_network.graph)
        block = oracle.travel_times_many([0, 1, 3], [2])
        stats = oracle.stats()
        assert stats.batched_queries == 3
        # (3, 2) is unreachable: only two pairs were answered.
        assert len(block) == 2
        assert stats.queries == 2
        # One reverse map for target 2 serves the whole batch.
        assert stats.cache_misses == 1
        assert stats.reverse_sssp_runs == 1
        assert stats.sssp_runs == 0

    def test_lazy_forward_batch_counts_one_miss_per_source(self, networks):
        graph = networks["grid"].graph
        oracle = LazyDijkstraOracle(graph)
        nodes = sorted(graph.nodes)
        sources, targets = nodes[:2], nodes[3:7]
        block = oracle.travel_times_many(sources, targets)
        stats = oracle.stats()
        assert stats.batched_queries == 8
        assert stats.queries == len(block) == 8
        assert stats.cache_misses == 2  # one forward map per source
        assert stats.sssp_runs == 2
        # Re-running the same batch is pure cache hits, no new misses.
        oracle.travel_times_many(sources, targets)
        stats = oracle.stats()
        assert stats.cache_misses == 2
        assert stats.cache_hits == 2

    def test_travel_times_from_not_double_counted(self, networks):
        graph = networks["grid"].graph
        oracle = LazyDijkstraOracle(graph)
        nodes = sorted(graph.nodes)
        oracle.travel_times_many([nodes[0]], [nodes[1], nodes[2]])
        stats = oracle.stats()
        assert stats.queries == 2
        assert stats.cache_misses == 1
        # The same source through the full-map API: one more query, one
        # hit, and crucially no second miss for the already built map.
        oracle.travel_times_from(nodes[0])
        stats = oracle.stats()
        assert stats.queries == 3
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1


class TestLazyLru:
    def test_cache_is_bounded_and_counts_evictions(self, networks):
        graph = networks["grid"].graph
        oracle = LazyDijkstraOracle(graph, max_sources=3)
        nodes = sorted(graph.nodes)
        target = nodes[-1]
        for source in nodes[:6]:
            oracle.travel_time(source, target)
        info = oracle.cache_info()
        assert info.currsize == 3
        assert info.maxsize == 3
        assert info.misses == 6
        assert oracle.stats().evictions == 3

    def test_repeat_queries_hit_the_cache(self, networks):
        graph = networks["grid"].graph
        oracle = LazyDijkstraOracle(graph, max_sources=8)
        nodes = sorted(graph.nodes)
        oracle.travel_time(nodes[0], nodes[1])
        oracle.travel_time(nodes[0], nodes[2])
        info = oracle.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_network_cache_info_and_clear(self, networks):
        network = grid_city(4, 4, seed=0)
        first = network.travel_times_from(0)
        assert network.travel_times_from(0) is first
        assert network.cache_info().currsize == 1
        network.clear_cache()
        assert network.cache_info().currsize == 0

    def test_rejects_nonpositive_bound(self, networks):
        with pytest.raises(ValueError):
            LazyDijkstraOracle(networks["grid"].graph, max_sources=0)


class TestMatrixRefresh:
    def test_unseen_sources_trigger_batched_refresh(self, networks):
        graph = networks["grid"].graph
        nodes = sorted(graph.nodes)
        oracle = MatrixOracle(graph, nodes=nodes[:4])
        assert oracle.num_rows == 4
        refreshes_before = oracle.stats().extras["matrix_refreshes"]
        block = oracle.travel_times_many(nodes[4:9], nodes[:3])
        assert oracle.num_rows == 9
        # Five new sources, one refresh: that is the batching.
        assert oracle.stats().extras["matrix_refreshes"] == refreshes_before + 1
        assert len(block) == 15

    def test_row_bound_evicts_oldest(self, networks):
        graph = networks["grid"].graph
        nodes = sorted(graph.nodes)
        oracle = MatrixOracle(graph, nodes=nodes[:2], max_rows=2)
        oracle.travel_time(nodes[5], nodes[0])
        info = oracle.cache_info()
        assert info.currsize == 2
        assert oracle.stats().evictions == 1


class TestContractionHierarchy:
    """CH-specific behaviour: unpacking, degenerate graphs, counters."""

    def test_shortest_path_unpacks_to_original_edges(self, networks):
        graph = networks["grid"].graph
        oracle = CHOracle(graph)
        nodes = sorted(graph.nodes)
        rng = random.Random(9)
        for _ in range(40):
            source, target = rng.choice(nodes), rng.choice(nodes)
            path = oracle.shortest_path(source, target)
            assert path[0] == source and path[-1] == target
            total = sum(
                graph[u][v]["travel_time"] for u, v in zip(path, path[1:])
            )
            want = nx.dijkstra_path_length(
                graph, source, target, weight="travel_time"
            )
            assert total == pytest.approx(want, rel=1e-9, abs=1e-6)

    def test_shortest_path_unreachable_raises(self, directed_network):
        oracle = CHOracle(directed_network.graph)
        assert oracle.shortest_path(0, 2) == [0, 1, 2]
        with pytest.raises(UnreachableError):
            oracle.shortest_path(2, 0)

    def test_non_path_backends_decline(self, networks):
        graph = networks["grid"].graph
        for backend in ("lazy", "landmark", "matrix"):
            assert _make(backend, graph).shortest_path(0, 1) is None

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_single_node_graph(self, backend):
        graph = nx.DiGraph()
        graph.add_node(0, x=0.0, y=0.0)
        oracle = _make(backend, graph)
        assert oracle.travel_time(0, 0) == 0.0
        assert dict(oracle.travel_times_from(0)) == {0: 0.0}
        assert dict(oracle.travel_times_to(0)) == {0: 0.0}
        assert oracle.travel_times_many([0], [0]) == {(0, 0): 0.0}

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_edgeless_graph(self, backend):
        graph = nx.DiGraph()
        for node in range(4):
            graph.add_node(node, x=float(node), y=0.0)
        oracle = _make(backend, graph)
        with pytest.raises(UnreachableError):
            oracle.travel_time(0, 3)
        assert dict(oracle.travel_times_to(2)) == {2: 0.0}
        block = oracle.travel_times_many([0, 1, 2], [2, 3])
        assert block == {(2, 2): 0.0}

    def test_both_batch_paths_agree_with_dijkstra(self):
        """Bucket scans (narrow) and reverse PHAST (wide) are both exact."""
        graph = _random_digraph(40, seed=77, strongly_connected=False)
        nodes = sorted(graph.nodes)
        target = nodes[11]
        narrow = CHOracle(graph).travel_times_many(nodes[:4], [target])
        wide = CHOracle(graph).travel_times_many(nodes, [target])
        for source in nodes:
            want = (
                0.0
                if source == target
                else _reference_distances(graph, source).get(target)
            )
            for block, members in ((narrow, nodes[:4]), (wide, nodes)):
                if source not in members:
                    continue
                got = block.get((source, target))
                if want is None:
                    assert got is None
                else:
                    assert got == pytest.approx(want, rel=1e-9, abs=1e-6)

    def test_tight_witness_hop_limit_stays_exact(self, networks):
        """A hop limit of 1 adds many more shortcuts but never wrong ones."""
        graph = networks["grid"].graph
        loose = CHOracle(graph)
        tight = CHOracle(graph, witness_hop_limit=1)
        assert (
            tight.stats().extras["shortcuts_added"]
            >= loose.stats().extras["shortcuts_added"]
        )
        nodes = sorted(graph.nodes)
        rng = random.Random(3)
        for _ in range(60):
            source, target = rng.choice(nodes), rng.choice(nodes)
            want = _reference_distances(graph, source).get(target)
            if want is None:
                with pytest.raises(UnreachableError):
                    tight.travel_time(source, target)
            else:
                assert tight.travel_time(source, target) == pytest.approx(
                    want, rel=1e-9, abs=1e-6
                )
        with pytest.raises(ValueError):
            CHOracle(graph, witness_hop_limit=0)

    def test_counters_flow_through_stats(self, networks):
        graph = networks["grid"].graph
        oracle = CHOracle(graph)
        stats = oracle.stats()
        assert stats.backend == "ch"
        assert stats.precompute_seconds > 0.0
        assert stats.extras["shortcuts_added"] > 0
        nodes = sorted(graph.nodes)
        oracle.travel_time(nodes[0], nodes[-1])
        oracle.travel_times_many(nodes[:3], [nodes[-1], nodes[-2]])
        stats = oracle.stats()
        assert stats.pp_searches == 1
        assert stats.extras["upward_settles"] > 0
        assert stats.extras["bucket_scans"] > 0
        assert stats.queries == 1 + 6
        assert stats.batched_queries == 6
        # The pair cache memoises both directions of work.
        info = oracle.cache_info()
        assert info.currsize > 0
        assert info.maxsize is not None
        # Repeating the batch is pure cache hits.
        hits_before = oracle.stats().cache_hits
        oracle.travel_times_many(nodes[:3], [nodes[-1], nodes[-2]])
        assert oracle.stats().cache_hits > hits_before
        oracle.clear()
        assert oracle.cache_info().currsize == 0


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"lazy", "landmark", "matrix", "ch"}

    def test_unknown_backend_rejected(self, networks):
        with pytest.raises(ConfigurationError):
            create_oracle("warp-drive", networks["grid"].graph)

    def test_unknown_backend_error_lists_registered_names(self, networks):
        with pytest.raises(ConfigurationError) as excinfo:
            create_oracle("warp-drive", networks["grid"].graph)
        message = str(excinfo.value)
        for name in available_backends():
            assert name in message

    @pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
    def test_every_factory_tolerates_uniform_options(self, networks, backend):
        """Factories must accept the full option set configure_oracle emits.

        Every registered factory receives the uniform names (``nodes``,
        ``cache_size``, ``reverse_cache_size``, ``num_landmarks``,
        ``witness_hop_limit``, ``seed``) and ignores the ones it has no
        use for — a backend that chokes on an option another backend
        needs would make the backends non-interchangeable.
        """
        graph = networks["grid"].graph
        nodes = sorted(graph.nodes)
        oracle = create_oracle(
            backend,
            graph,
            nodes=nodes[:4],
            cache_size=64,
            reverse_cache_size=32,
            num_landmarks=4,
            witness_hop_limit=3,
            seed=5,
        )
        assert isinstance(oracle, BACKEND_CLASSES[backend])
        want = _reference_distances(graph, nodes[0])[nodes[-1]]
        assert oracle.travel_time(nodes[0], nodes[-1]) == pytest.approx(
            want, rel=1e-9, abs=1e-6
        )

    def test_custom_backend_round_trip(self, networks):
        class EchoOracle(LazyDijkstraOracle):
            name = "echo"

        register_oracle("echo", lambda graph, **options: EchoOracle(graph))
        try:
            oracle = create_oracle("echo", networks["grid"].graph)
            assert oracle.name == "echo"
            config = SimulationConfig(oracle_backend="echo")
            assert config.oracle_backend == "echo"
        finally:
            ORACLE_BACKENDS.pop("echo", None)

    def test_use_backend_attaches_to_network(self):
        network = grid_city(5, 5, seed=2)
        oracle = network.use_backend("matrix")
        assert network.oracle is oracle
        assert isinstance(network.oracle, MatrixOracle)
        assert network.travel_time(0, 1) > 0


class TestConfigSelection:
    def test_config_validates_backend_name(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_backend="nope")
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_cache_size=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_landmarks=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(oracle_witness_hops=0)
        assert SimulationConfig(oracle_backend="ch").oracle_backend == "ch"

    def test_configure_oracle_attaches_named_backend(self):
        network = grid_city(5, 5, seed=2)
        config = SimulationConfig(oracle_backend="matrix")
        oracle = configure_oracle(network, config, nodes=[0, 1, 2])
        assert network.oracle is oracle
        assert isinstance(oracle, MatrixOracle)
        # Same backend requested again: the warm oracle is reused.
        assert configure_oracle(network, config) is oracle
        # Different backend: swapped out.
        lazy = configure_oracle(network, config.with_overrides(oracle_backend="lazy"))
        assert network.oracle is lazy
        assert isinstance(lazy, LazyDijkstraOracle)

    def test_changed_options_rebuild_the_oracle(self):
        network = grid_city(5, 5, seed=2)
        config = SimulationConfig(oracle_backend="lazy", oracle_cache_size=1024)
        first = configure_oracle(network, config)
        bigger = configure_oracle(
            network, config.with_overrides(oracle_cache_size=4096)
        )
        assert bigger is not first
        assert bigger.cache_info().maxsize == 4096
        landmark_config = config.with_overrides(
            oracle_backend="landmark", oracle_landmarks=4
        )
        small = configure_oracle(network, landmark_config)
        grown = configure_oracle(
            network, landmark_config.with_overrides(oracle_landmarks=6)
        )
        assert grown is not small
        ch_config = config.with_overrides(
            oracle_backend="ch", oracle_witness_hops=3
        )
        shallow = configure_oracle(network, ch_config)
        assert isinstance(shallow, CHOracle)
        assert configure_oracle(network, ch_config) is shallow
        deeper = configure_oracle(
            network, ch_config.with_overrides(oracle_witness_hops=6)
        )
        assert deeper is not shallow
        assert deeper.witness_hop_limit == 6
        rebucketed = configure_oracle(
            network, ch_config.with_overrides(
                oracle_witness_hops=6, oracle_cache_size=8
            )
        )
        assert rebucketed is not deeper
        assert rebucketed.bucket_cache_size == 8

    def test_simulator_honours_config_backend(self):
        """run_simulation (no runner involved) must attach the named backend."""
        from repro.datasets.workloads import build_workload
        from repro.experiments.config import default_config
        from repro.experiments.runner import make_dispatcher
        from repro.simulation.engine import run_simulation

        config = default_config(
            "CDC",
            num_orders=15,
            num_workers=4,
            horizon=900.0,
            oracle_backend="matrix",
        )
        workload = build_workload("CDC", config)
        dispatcher = make_dispatcher("NonSharing", workload, config)
        result = run_simulation(workload, dispatcher, config)
        assert isinstance(workload.network.oracle, MatrixOracle)
        assert result.metrics.oracle_stats["backend"] == "matrix"

    def test_run_is_backend_independent(self):
        """Lazy and matrix backends produce bit-identical simulations."""
        from repro.datasets.workloads import build_workload
        from repro.experiments.config import default_config
        from repro.experiments.runner import run_on_workload

        base = default_config("CDC", num_orders=25, num_workers=6, horizon=900.0)
        outcomes = {}
        for backend in ("lazy", "matrix"):
            config = base.with_overrides(oracle_backend=backend)
            workload = build_workload("CDC", config)
            result = run_on_workload("WATTER-online", workload, config)
            metrics = result.metrics
            assert metrics.oracle_stats is not None
            assert metrics.oracle_stats["backend"] == backend
            assert metrics.oracle_stats["queries"] > 0
            outcomes[backend] = (
                metrics.served_orders,
                metrics.total_extra_time,
                metrics.unified_cost,
                metrics.service_rate,
            )
        assert outcomes["lazy"] == outcomes["matrix"]

    def test_ch_run_agrees_with_lazy(self):
        """The CH backend reproduces lazy's simulation outcome.

        CH distances can differ from a monolithic Dijkstra's in the
        last few ulps (shortcut additions associate differently), so
        the float metrics are compared with a tight relative tolerance
        rather than bitwise; the discrete outcomes must match exactly.
        """
        from repro.datasets.workloads import build_workload
        from repro.experiments.config import default_config
        from repro.experiments.runner import run_on_workload

        base = default_config("CDC", num_orders=25, num_workers=6, horizon=900.0)
        outcomes = {}
        for backend in ("lazy", "ch"):
            config = base.with_overrides(oracle_backend=backend)
            workload = build_workload("CDC", config)
            metrics = run_on_workload("WATTER-online", workload, config).metrics
            assert metrics.oracle_stats["backend"] == backend
            outcomes[backend] = metrics
        lazy, ch = outcomes["lazy"], outcomes["ch"]
        assert ch.served_orders == lazy.served_orders
        assert ch.rejected_orders == lazy.rejected_orders
        assert ch.service_rate == lazy.service_rate
        assert ch.average_group_size == lazy.average_group_size
        assert ch.total_extra_time == pytest.approx(
            lazy.total_extra_time, rel=1e-9
        )
        assert ch.unified_cost == pytest.approx(lazy.unified_cost, rel=1e-9)
        assert ch.oracle_stats["ch.shortcuts_added"] > 0


class TestCliSelection:
    def test_parser_accepts_oracle_flag(self):
        args = build_parser().parse_args(["compare", "--oracle", "matrix"])
        assert args.oracle == "matrix"
        args = build_parser().parse_args(["compare", "--oracle", "ch"])
        assert args.oracle == "ch"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--oracle", "bogus"])

    def test_bench_subcommand_parsed(self):
        args = build_parser().parse_args(
            ["bench", "--queries", "500", "--backends", "lazy", "matrix"]
        )
        assert args.command == "bench"
        assert args.queries == 500
        assert args.backends == ["lazy", "matrix"]
        assert args.dispatch is False
        assert args.json is None

    def test_bench_dispatch_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "bench",
                "--dispatch",
                "--dispatch-sources",
                "48",
                "--json",
                "BENCH_dispatch.json",
            ]
        )
        assert args.dispatch is True
        assert args.dispatch_sources == 48
        assert args.json == "BENCH_dispatch.json"

    def test_compare_with_oracle_flag_runs(self, capsys):
        exit_code = main(
            [
                "compare",
                "--dataset",
                "CDC",
                "--orders",
                "20",
                "--workers",
                "6",
                "--horizon",
                "900",
                "--algorithms",
                "NonSharing",
                "--oracle",
                "matrix",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "matrix" in captured
        assert "Distance-oracle cache statistics" in captured

    def test_compare_with_ch_oracle_runs(self, capsys):
        exit_code = main(
            [
                "compare",
                "--dataset",
                "CDC",
                "--orders",
                "20",
                "--workers",
                "6",
                "--horizon",
                "900",
                "--algorithms",
                "NonSharing",
                "GDP",
                "--oracle",
                "ch",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ch" in captured
        assert "Distance-oracle cache statistics" in captured
        # The CH counters flow into the printed stats table.
        assert "shortcuts" in captured and "bucket scans" in captured

    def test_bench_command_prints_backend_table(self, capsys):
        exit_code = main(
            [
                "bench",
                "--dataset",
                "CDC",
                "--orders",
                "20",
                "--workers",
                "6",
                "--horizon",
                "900",
                "--queries",
                "200",
                "--backends",
                "lazy",
                "matrix",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "lazy" in captured and "matrix" in captured
        assert "us/query" in captured


class TestStatsDelta:
    def test_counter_extras_are_subtracted_gauges_kept(self):
        from repro.network.oracle import OracleStats

        before = OracleStats(
            backend="ch",
            queries=10,
            extras={
                "bucket_scans": 100.0,
                "upward_settles": 50.0,
                "shortcuts_added": 7.0,
                "bucket_cached_targets": 3.0,
            },
        )
        after = OracleStats(
            backend="ch",
            queries=25,
            extras={
                "bucket_scans": 160.0,
                "upward_settles": 80.0,
                "shortcuts_added": 7.0,
                "bucket_cached_targets": 5.0,
            },
        )
        delta = after - before
        assert delta.queries == 15
        # Counters report per-run work...
        assert delta.extras["bucket_scans"] == 60.0
        assert delta.extras["upward_settles"] == 30.0
        # ...while structural constants and gauges keep their snapshot.
        assert delta.extras["shortcuts_added"] == 7.0
        assert delta.extras["bucket_cached_targets"] == 5.0
