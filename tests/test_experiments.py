"""Tests for the experiment harness: configs, sweeps, reporting, worked example."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.experiments.config import (
    DATASET_DEFAULTS,
    PARAMETER_GRID,
    default_config,
    worker_counts_scaled,
)
from repro.experiments.reporting import (
    format_comparison_table,
    format_full_sweep_report,
    format_sweep_table,
)
from repro.experiments.runner import run_comparison
from repro.experiments.sweeps import vary_deadline, vary_num_orders
from repro.experiments.worked_example import (
    example_config,
    example_orders,
    example_workload,
    run_worked_example,
)

_FAST = dict(num_orders=30, num_workers=8, horizon=900.0, grid_size=5)
_FAST_ALGOS = ("WATTER-online", "WATTER-timeout", "NonSharing")


class TestExperimentConfig:
    def test_dataset_defaults_cover_all_datasets(self):
        assert set(DATASET_DEFAULTS) == {
            "NYC", "CDC", "XIA", "LARGE", "LARGE-SYNTHETIC"
        }

    def test_large_defaults_mirror_cdc(self):
        assert DATASET_DEFAULTS["LARGE"] == DATASET_DEFAULTS["CDC"]
        assert DATASET_DEFAULTS["LARGE-SYNTHETIC"] == DATASET_DEFAULTS["CDC"]

    def test_default_config_uses_table3_values(self):
        config = default_config("CDC")
        assert config.deadline_scale == 1.6
        assert config.max_capacity == 4
        assert config.watch_window_scale == 0.8
        assert config.grid_size == 10

    def test_default_config_overrides(self):
        config = default_config("NYC", num_orders=50)
        assert config.num_orders == 50

    def test_parameter_grid_matches_table3(self):
        assert PARAMETER_GRID["deadline_scales"] == (1.2, 1.4, 1.6, 1.8)
        assert PARAMETER_GRID["capacities"] == (2, 3, 4, 5)
        assert PARAMETER_GRID["order_fractions"] == (0.50, 0.75, 1.00, 1.25)

    def test_worker_counts_scaled_preserves_ratios(self):
        counts = worker_counts_scaled()
        assert len(counts) == 4
        assert counts[0] < counts[-1]


class TestSweeps:
    @pytest.fixture(scope="class")
    def order_sweep(self):
        base = default_config("CDC", **_FAST)
        return vary_num_orders(
            "CDC", fractions=(0.5, 1.0), base_config=base, algorithms=_FAST_ALGOS
        )

    def test_sweep_covers_all_cells(self, order_sweep):
        assert len(order_sweep.runs) == 2 * len(_FAST_ALGOS)
        assert order_sweep.values() == [0.5, 1.0]
        assert set(order_sweep.algorithms()) == set(_FAST_ALGOS)

    def test_series_lengths(self, order_sweep):
        for algorithm in _FAST_ALGOS:
            series = order_sweep.series(algorithm, "service_rate")
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_deadline_sweep_changes_config(self):
        base = default_config("CDC", **_FAST)
        sweep = vary_deadline(
            "CDC",
            deadline_scales=(1.2, 1.8),
            base_config=base,
            algorithms=("NonSharing",),
        )
        assert sweep.values() == [1.2, 1.8]
        # a looser deadline can only help the service rate on the same workload
        series = sweep.series("NonSharing", "service_rate")
        assert series[1] >= series[0] - 0.1


class TestReporting:
    @pytest.fixture(scope="class")
    def metrics_list(self):
        config = default_config("CDC", **_FAST)
        return run_comparison("CDC", config, algorithms=_FAST_ALGOS)

    def test_comparison_table_contains_all_algorithms(self, metrics_list):
        table = format_comparison_table(metrics_list)
        for metrics in metrics_list:
            assert metrics.algorithm in table

    def test_sweep_table_rendering(self):
        base = default_config("CDC", **_FAST)
        sweep = vary_num_orders(
            "CDC", fractions=(1.0,), base_config=base, algorithms=("NonSharing",)
        )
        table = format_sweep_table(sweep, "service_rate")
        assert "Service Rate" in table
        assert "NonSharing" in table
        full = format_full_sweep_report(sweep)
        assert "Extra Time" in full and "Unified Cost" in full

    def test_sweep_table_rejects_unknown_metric(self):
        base = default_config("CDC", **_FAST)
        sweep = vary_num_orders(
            "CDC", fractions=(1.0,), base_config=base, algorithms=("NonSharing",)
        )
        with pytest.raises(KeyError):
            format_sweep_table(sweep, "not_a_metric")


class TestWorkedExample:
    def test_orders_match_table1(self):
        orders = example_orders()
        assert len(orders) == 4
        assert [order.release_time for order in orders] == [5.0, 8.0, 10.0, 12.0]

    def test_workload_has_two_workers(self):
        workload = example_workload()
        assert len(workload.workers) == 2
        assert workload.name == "Example1"

    def test_example_config_is_valid(self):
        assert isinstance(example_config(), SimulationConfig)

    def test_pooling_beats_non_sharing(self):
        """The qualitative claim of Example 1: waiting for the right partner
        reduces the total worker travel time compared to serving riders
        one by one or grouping only inside a batch."""
        result = run_worked_example()
        assert result.pooling <= result.non_sharing
        assert result.pooling <= result.batch
        assert set(result.as_dict()) == {
            "NonSharing",
            "WATTER-online",
            "GAS (batch)",
            "WATTER-timeout (pooling)",
        }
