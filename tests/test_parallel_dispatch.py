"""Serial/parallel dispatch equivalence and the engine's primitives.

The sharded dispatch engine's contract is strong: a parallel run makes
*exactly* the dispatch decisions a serial run makes — same assignment
winners, same tie-breaks, same served/rejected sets, same costs — for
any shard count, any execution mode and any oracle backend, because
the shards only precompute travel times while the decision loop stays
the unchanged serial algorithm.  These tests hold every simulation
metric (except wall-clock and oracle counters, which legitimately
differ) fixed across shard counts 1/2/7 on all four backends, in both
thread and process modes, including a fleet smaller than the shard
count.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.datasets.workloads import build_workload
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_on_workload
from repro.network.oracle import available_backends
from repro.simulation.parallel import (
    DISPATCH_MODES,
    ParallelDispatchEngine,
    merge_shard_results,
    partition_shards,
)

BACKENDS = ("lazy", "landmark", "matrix", "ch")

#: Shard counts of the equivalence sweep: the serial engine path, an
#: even split, and a prime count that exceeds parts of the workload.
SHARD_COUNTS = (1, 2, 7)


def _small_config(**overrides) -> SimulationConfig:
    base = dict(
        num_orders=48,
        num_workers=6,
        horizon=1800.0,
        seed=23,
        check_period=15.0,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _core_metrics(metrics) -> dict:
    """Every metric field that must be identical across shard counts.

    Wall-clock (``running_time_*``) and ``oracle_stats`` are excluded:
    the first is nondeterministic by nature, the second intentionally
    differs (parallel runs add scheduling and per-shard counters).
    """
    data = {
        name: getattr(metrics, name) for name in metrics.__dataclass_fields__
    }
    data.pop("oracle_stats")
    data.pop("running_time_total")
    data.pop("running_time_per_order")
    return data


def _assert_metrics_equal(got: dict, want: dict, backend: str, label: str):
    """Bitwise equality — except ``ch``'s documented last-ulp slack.

    The ``lazy``/``matrix``/``landmark`` backends produce the same
    float no matter how a pair is queried, so equality is exact.  The
    ``ch`` backend assembles distances from shortcut parts and its
    docstring warns different query paths can differ in the last ulp;
    prefetching may steer a pair down a different path than a serial
    ring query, so its float metrics are compared within 1e-9 relative
    (counts and discrete decisions stay exact).
    """
    if backend != "ch":
        assert got == want, f"{backend} diverged at {label}"
        return
    assert set(got) == set(want)
    for name in want:
        a, b = got[name], want[name]
        if isinstance(b, float):
            assert a == pytest.approx(b, rel=1e-9), (
                f"ch {name} diverged at {label}: {a!r} != {b!r}"
            )
        else:
            assert a == b, f"ch {name} diverged at {label}: {a!r} != {b!r}"


def _run(config: SimulationConfig, algorithm: str = "WATTER-timeout"):
    workload = build_workload("CDC", config)
    return run_on_workload(algorithm, workload, config)


# ---------------------------------------------------------------------------
# end-to-end equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_dispatch_matches_serial_all_backends(backend):
    """Thread-sharded runs equal serial runs on every oracle backend."""
    assert set(BACKENDS) <= set(available_backends())
    serial = _run(_small_config(oracle_backend=backend))
    reference = _core_metrics(serial.metrics)
    assert serial.metrics.served_orders > 0  # the workload is non-trivial
    for shards in SHARD_COUNTS:
        parallel = _run(
            _small_config(oracle_backend=backend, dispatch_workers=shards)
        )
        _assert_metrics_equal(
            _core_metrics(parallel.metrics),
            reference,
            backend,
            f"{shards} thread shards",
        )


@pytest.mark.parametrize("backend", ("lazy", "ch"))
def test_process_sharded_dispatch_matches_serial(backend):
    """Forked per-shard oracle handles reproduce serial metrics exactly."""
    serial = _run(_small_config(oracle_backend=backend))
    parallel = _run(
        _small_config(
            oracle_backend=backend,
            dispatch_workers=4,
            dispatch_mode="process",
        )
    )
    _assert_metrics_equal(
        _core_metrics(parallel.metrics),
        _core_metrics(serial.metrics),
        backend,
        "4 process shards",
    )
    # The run really went through the engine: prefetches were issued
    # and, when fork is available, answered by shard processes whose
    # results the decision loop then consumed from the overlay.
    stats = parallel.metrics.oracle_stats
    assert stats["dispatch_workers"] == 4
    if stats["dispatch_mode"] == "process":
        assert stats["prefetch_calls"] > 0
        assert stats["shard_tasks"] > 0
        assert stats["overlay_hits"] > 0


def test_fleet_smaller_than_shard_count():
    """7 shards over a 3-worker fleet: empty shards, identical outcome."""
    serial = _run(_small_config(num_workers=3, num_orders=30))
    for mode in DISPATCH_MODES:
        parallel = _run(
            _small_config(
                num_workers=3,
                num_orders=30,
                dispatch_workers=7,
                dispatch_mode=mode,
            )
        )
        assert _core_metrics(parallel.metrics) == _core_metrics(serial.metrics)


def test_parallel_dispatch_other_algorithms_unaffected():
    """Baselines without a prefetch hook still run (and match serial)."""
    config = _small_config()
    serial = _run(config, algorithm="GDP")
    parallel = _run(
        _small_config(dispatch_workers=3), algorithm="GDP"
    )
    assert _core_metrics(parallel.metrics) == _core_metrics(serial.metrics)


# ---------------------------------------------------------------------------
# the engine's primitives
# ---------------------------------------------------------------------------


def test_partition_shards_deterministic_and_even():
    items = list(range(10))
    chunks = partition_shards(items, 3)
    assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    assert partition_shards(items, 3) == chunks  # pure function
    # More shards than items: tail shards are empty, nothing is lost.
    chunks = partition_shards([1, 2], 7)
    assert [c for c in chunks if c] == [[1], [2]]
    assert len(chunks) == 7
    assert partition_shards([], 4) == [[], [], [], []]
    with pytest.raises(ConfigurationError):
        partition_shards(items, 0)


def test_merge_shard_results_is_order_independent_and_strict():
    a = {(1, 9): 4.0, (2, 9): 5.0}
    b = {(3, 8): 1.5}
    assert merge_shard_results([a, b]) == merge_shard_results([b, a])
    assert merge_shard_results([a, b]) == {**a, **b}
    # Any overlap means the target partition was wrong — refuse even
    # when the duplicated values agree (that is silent double work).
    with pytest.raises(AssertionError):
        merge_shard_results([a, {(1, 9): 4.0}])
    with pytest.raises(AssertionError):
        merge_shard_results([a, {(1, 9): 4.25}])


def test_engine_travel_times_many_matches_network():
    """Engine answers (overlay or fallback) equal direct network answers."""
    from repro.network.generators import grid_city

    network = grid_city(rows=6, cols=6, seed=2, jitter=0.2)
    nodes = network.nodes_sorted()
    sources, targets = nodes[:8], nodes[10:14]
    expected = network.travel_times_many(sources, targets)
    with ParallelDispatchEngine(network, num_shards=3, mode="process") as engine:
        prefetched = engine.prefetch_many_to_one(sources, targets)
        assert prefetched == expected
        # Served from the overlay now (process mode retains results).
        answered = engine.travel_times_many(sources, [targets[0]])
        assert answered == {
            pair: value for pair, value in expected.items()
            if pair[1] == targets[0]
        }
        # Uncovered pairs fall back to the exact network call.
        fresh = nodes[20:22]
        assert engine.travel_times_many(fresh, [targets[1]]) == (
            network.travel_times_many(fresh, [targets[1]])
        )
    # Closed engines degrade to inline serial execution, not errors.
    assert engine.prefetch_many_to_one(sources, targets) == expected


def test_engine_overlay_is_bounded():
    """Old targets are evicted (LRU) and transparently recomputed."""
    from repro.network.generators import grid_city

    network = grid_city(rows=6, cols=6, seed=2, jitter=0.2)
    nodes = network.nodes_sorted()
    sources = nodes[:5]
    with ParallelDispatchEngine(network, num_shards=2, mode="process") as engine:
        engine._overlay_bound = 3
        engine.prefetch_many_to_one(sources, nodes[10:16])
        assert len(engine._coverage) == 3  # oldest targets evicted
        assert set(engine._values) == set(engine._coverage)
        # An evicted target still answers — through the network fallback
        # — with exactly the values a direct call produces.
        evicted = nodes[10]
        assert evicted not in engine._coverage
        assert engine.travel_times_many(sources, [evicted]) == (
            network.travel_times_many(sources, [evicted])
        )


def test_engine_modes_and_validation():
    from repro.network.generators import grid_city

    network = grid_city(rows=4, cols=4, seed=1)
    with pytest.raises(ConfigurationError):
        ParallelDispatchEngine(network, num_shards=0)
    with pytest.raises(ConfigurationError):
        ParallelDispatchEngine(network, num_shards=2, mode="fibers")
    engine = ParallelDispatchEngine(network, num_shards=1, mode="thread")
    # A single shard starts no pool; the stats say so instead of
    # claiming a thread pool that does not exist.
    assert engine.effective_mode == "inline"
    assert engine.prefetch_worthwhile is False
    engine.close()
    engine.close()  # idempotent


# ---------------------------------------------------------------------------
# config / CLI wiring
# ---------------------------------------------------------------------------


def test_config_dispatch_fields_validate():
    config = SimulationConfig(dispatch_workers=4, dispatch_mode="process")
    assert config.dispatch_workers == 4
    assert config.as_dict()["dispatch_mode"] == "process"
    with pytest.raises(ConfigurationError):
        SimulationConfig(dispatch_workers=0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(dispatch_mode="gevent")


def test_cli_dispatch_worker_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        [
            "compare",
            "--dispatch-workers", "4",
            "--dispatch-mode", "process",
            "--orders", "10",
        ]
    )
    assert args.dispatch_workers == 4
    assert args.dispatch_mode == "process"
    from repro.cli import _config_from_args

    config = _config_from_args(args)
    assert config.dispatch_workers == 4
    assert config.dispatch_mode == "process"
    # Defaults stay fully serial.
    args = parser.parse_args(["compare"])
    assert _config_from_args(args).dispatch_workers == 1
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "--dispatch-workers", "0"])
