"""Unit tests for Route and Group cost accounting."""

from __future__ import annotations

import pytest

from repro.config import ExtraTimeWeights
from repro.exceptions import RoutingError
from repro.model.group import Group, orders_by_id
from repro.model.route import Route, RouteStop, StopKind
from tests.conftest import make_order


def _pair_route(network, first, second):
    """Route p1 -> p2 -> d1 -> d2."""
    stops = [
        RouteStop(first.pickup, first.order_id, StopKind.PICKUP),
        RouteStop(second.pickup, second.order_id, StopKind.PICKUP),
        RouteStop(first.dropoff, first.order_id, StopKind.DROPOFF),
        RouteStop(second.dropoff, second.order_id, StopKind.DROPOFF),
    ]
    return Route(stops, network)


class TestRoute:
    def test_empty_route_rejected(self, small_network):
        with pytest.raises(RoutingError):
            Route([], small_network)

    def test_total_travel_time_sums_legs(self, small_network):
        order = make_order(small_network, 0, 2)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        assert route.total_travel_time == pytest.approx(
            small_network.travel_time(0, 2)
        )

    def test_sub_route_time_for_shared_route(self, small_network):
        first = make_order(small_network, 0, 2)
        second = make_order(small_network, 1, 3)
        route = _pair_route(small_network, first, second)
        expected_first = small_network.travel_time(0, 1) + small_network.travel_time(
            1, 2
        )
        assert route.sub_route_time(first.order_id) == pytest.approx(expected_first)
        assert route.sub_route_time(second.order_id) == pytest.approx(
            route.total_travel_time
        )

    def test_detour_time_is_non_negative(self, small_network):
        first = make_order(small_network, 0, 2)
        second = make_order(small_network, 1, 3)
        route = _pair_route(small_network, first, second)
        assert route.detour_time(first) >= 0.0
        assert route.detour_time(second) >= 0.0

    def test_detour_zero_on_direct_route(self, small_network):
        order = make_order(small_network, 0, 5)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(5, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        assert route.detour_time(order) == pytest.approx(0.0)

    def test_missing_stop_raises(self, small_network):
        order = make_order(small_network, 0, 2)
        other = make_order(small_network, 1, 3)
        route = Route(
            [
                RouteStop(0, order.order_id, StopKind.PICKUP),
                RouteStop(2, order.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        with pytest.raises(RoutingError):
            route.pickup_index(other.order_id)
        with pytest.raises(RoutingError):
            route.dropoff_index(other.order_id)

    def test_max_onboard_riders(self, small_network):
        first = make_order(small_network, 0, 2, riders=2)
        second = make_order(small_network, 1, 3, riders=1)
        route = _pair_route(small_network, first, second)
        assert route.max_onboard_riders([first, second]) == 3

    def test_order_ids_in_first_visit_order(self, small_network):
        first = make_order(small_network, 0, 2)
        second = make_order(small_network, 1, 3)
        route = _pair_route(small_network, first, second)
        assert route.order_ids() == [first.order_id, second.order_id]


class TestGroup:
    def test_requires_route_members_to_match(self, small_network):
        first = make_order(small_network, 0, 2)
        second = make_order(small_network, 1, 3)
        route = _pair_route(small_network, first, second)
        with pytest.raises(RoutingError):
            Group(orders=(first,), route=route)

    def test_average_extra_time_combines_detour_and_response(self, small_network):
        first = make_order(small_network, 0, 2, release=0.0)
        second = make_order(small_network, 1, 3, release=30.0)
        route = _pair_route(small_network, first, second)
        group = Group(orders=(first, second), route=route)
        dispatch_time = 60.0
        manual = 0.0
        for order in (first, second):
            manual += route.detour_time(order) + (dispatch_time - order.release_time)
        assert group.total_extra_time(dispatch_time) == pytest.approx(manual)
        assert group.average_extra_time(dispatch_time) == pytest.approx(manual / 2)

    def test_weights_scale_extra_time(self, small_network):
        first = make_order(small_network, 0, 2, release=0.0)
        route = Route(
            [
                RouteStop(0, first.order_id, StopKind.PICKUP),
                RouteStop(2, first.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        group = Group(
            orders=(first,), route=route, weights=ExtraTimeWeights(alpha=0.0, beta=2.0)
        )
        assert group.extra_time(first, 10.0) == pytest.approx(20.0)

    def test_expiration_time_is_latest_feasible_start(self, small_network):
        first = make_order(small_network, 0, 2, release=0.0)
        second = make_order(small_network, 1, 3, release=0.0)
        route = _pair_route(small_network, first, second)
        group = Group(orders=(first, second), route=route)
        expiry = group.expiration_time(0.0)
        expected = min(
            order.deadline - route.sub_route_time(order.order_id)
            for order in (first, second)
        )
        assert expiry == pytest.approx(expected)
        assert group.is_feasible_at(expiry - 1.0)
        assert not group.is_feasible_at(expiry + 1.0)

    def test_earliest_timeout(self, small_network):
        first = make_order(small_network, 0, 2, release=0.0)
        second = make_order(small_network, 1, 3, release=50.0)
        route = _pair_route(small_network, first, second)
        group = Group(orders=(first, second), route=route)
        assert group.earliest_timeout() == pytest.approx(
            min(first.timeout_time, second.timeout_time)
        )

    def test_better_of_prefers_lower_extra_time(self, small_network):
        solo = make_order(small_network, 0, 5, release=0.0)
        solo_route = Route(
            [
                RouteStop(0, solo.order_id, StopKind.PICKUP),
                RouteStop(5, solo.order_id, StopKind.DROPOFF),
            ],
            small_network,
        )
        solo_group = Group(orders=(solo,), route=solo_route)
        first = make_order(small_network, 0, 2, release=0.0)
        second = make_order(small_network, 13, 31, release=0.0)
        pair_route = _pair_route(small_network, first, second)
        pair_group = Group(orders=(first, second), route=pair_route)
        best = Group.better_of(solo_group, pair_group, dispatch_time=0.0)
        assert best is solo_group
        assert Group.better_of(None, pair_group, 0.0) is pair_group
        assert Group.better_of(solo_group, None, 0.0) is solo_group

    def test_orders_by_id(self, small_network):
        orders = [make_order(small_network, 0, 2), make_order(small_network, 1, 3)]
        index = orders_by_id(orders)
        assert set(index) == {order.order_id for order in orders}

    def test_total_riders_and_contains(self, small_network):
        first = make_order(small_network, 0, 2, riders=2)
        second = make_order(small_network, 1, 3, riders=1)
        route = _pair_route(small_network, first, second)
        group = Group(orders=(first, second), route=route)
        assert group.total_riders() == 3
        assert group.contains(first.order_id)
        assert not group.contains(999999)
