"""Unit tests for the road-network graph and shortest-path queries."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import NetworkError, UnknownNodeError, UnreachableError
from repro.network.graph import RoadNetwork, build_network
from repro.network.generators import example_network, example_node, grid_city, radial_city


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(NetworkError):
            RoadNetwork(nx.DiGraph())

    def test_rejects_missing_travel_time(self):
        graph = nx.DiGraph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1)
        with pytest.raises(NetworkError):
            RoadNetwork(graph)

    def test_rejects_negative_travel_time(self):
        graph = nx.DiGraph()
        graph.add_node(0, x=0.0, y=0.0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, travel_time=-5.0)
        with pytest.raises(NetworkError):
            RoadNetwork(graph)

    def test_rejects_missing_coordinates(self):
        graph = nx.DiGraph()
        graph.add_node(0)
        graph.add_node(1, x=1.0, y=0.0)
        graph.add_edge(0, 1, travel_time=10.0)
        with pytest.raises(NetworkError):
            RoadNetwork(graph)

    def test_build_network_bidirectional(self):
        network = build_network(
            nodes=[(0, 0.0, 0.0), (1, 1.0, 0.0)], edges=[(0, 1, 30.0)]
        )
        assert network.travel_time(0, 1) == 30.0
        assert network.travel_time(1, 0) == 30.0

    def test_build_network_directed_only(self):
        network = build_network(
            nodes=[(0, 0.0, 0.0), (1, 1.0, 0.0)],
            edges=[(0, 1, 30.0)],
            bidirectional=False,
        )
        assert network.travel_time(0, 1) == 30.0
        with pytest.raises(UnreachableError):
            network.travel_time(1, 0)


class TestQueries:
    def test_self_distance_is_zero(self, small_network):
        assert small_network.travel_time(0, 0) == 0.0

    def test_unknown_node_raises(self, small_network):
        with pytest.raises(UnknownNodeError):
            small_network.travel_time(0, 9999)

    def test_grid_distance_matches_manhattan(self, small_network):
        # deterministic 60-second edges: node 0 -> node 7 is 2 hops.
        assert small_network.travel_time(0, 7) == pytest.approx(120.0)

    def test_triangle_inequality_on_samples(self, small_network):
        nodes = small_network.nodes_sorted()
        a, b, c = nodes[0], nodes[14], nodes[27]
        direct = small_network.travel_time(a, c)
        via = small_network.travel_time(a, b) + small_network.travel_time(b, c)
        assert direct <= via + 1e-9

    def test_shortest_path_endpoints(self, small_network):
        path = small_network.shortest_path(0, 35)
        assert path[0] == 0
        assert path[-1] == 35

    def test_shortest_path_cost_consistency(self, small_network):
        path = small_network.shortest_path(0, 35)
        total = sum(
            small_network.travel_time(u, v) for u, v in zip(path, path[1:])
        )
        assert total == pytest.approx(small_network.travel_time(0, 35))

    def test_travel_times_from_is_cached(self, small_network):
        first = small_network.travel_times_from(0)
        second = small_network.travel_times_from(0)
        assert first is second
        small_network.clear_cache()
        assert small_network.travel_times_from(0) is not first

    def test_is_reachable(self, small_network):
        assert small_network.is_reachable(0, 35)

    def test_nearest_node(self, small_network):
        assert small_network.nearest_node(0.1, 0.1) == 0

    def test_bounding_box(self, small_network):
        min_x, min_y, max_x, max_y = small_network.bounding_box()
        assert (min_x, min_y) == (0.0, 0.0)
        assert (max_x, max_y) == (5.0, 5.0)


class TestGenerators:
    def test_grid_city_size(self):
        network = grid_city(rows=4, cols=5, seed=1)
        assert len(network) == 20

    def test_grid_city_connected(self):
        network = grid_city(rows=4, cols=4, seed=2)
        nodes = network.nodes_sorted()
        assert all(network.is_reachable(nodes[0], node) for node in nodes)

    def test_radial_city_structure(self):
        network = radial_city(rings=3, spokes=6)
        assert len(network) == 1 + 3 * 6
        assert network.is_reachable(0, 1 + 2 * 6 + 3)

    def test_example_network_matches_figure1(self):
        network = example_network()
        assert len(network) == 6
        # 7 undirected edges -> 14 directed edges
        assert network.number_of_edges() == 14
        a, c, d = example_node("a"), example_node("c"), example_node("d")
        assert network.travel_time(a, c) == pytest.approx(60.0)
        assert network.travel_time(a, d) == pytest.approx(120.0)

    def test_example_node_rejects_unknown_label(self):
        with pytest.raises(Exception):
            example_node("z")


class TestOracleRoutedPaths:
    """``shortest_path`` goes through the oracle when it can produce paths."""

    def test_ch_backend_answers_paths(self):
        network = grid_city(rows=6, cols=6, seed=5, jitter=0.3)
        reference = {
            pair: network.shortest_path(*pair)
            for pair in [(0, 35), (3, 30), (7, 28)]
        }
        network.use_backend("ch")
        searches_before = network.oracle_stats().pp_searches
        for (source, target), want in reference.items():
            path = network.shortest_path(source, target)
            assert path[0] == source and path[-1] == target
            # Same cost as the Dijkstra fallback's path (the node
            # sequences may differ between equal-cost paths).
            cost = sum(
                network.graph[u][v]["travel_time"]
                for u, v in zip(path, path[1:])
            )
            want_cost = sum(
                network.graph[u][v]["travel_time"]
                for u, v in zip(want, want[1:])
            )
            assert cost == pytest.approx(want_cost, rel=1e-9)
        # The oracle answered (bidirectional upward searches ran), not
        # the networkx fallback.
        assert network.oracle_stats().pp_searches > searches_before

    def test_distance_only_backends_fall_back(self):
        network = grid_city(rows=5, cols=5, seed=1)
        network.use_backend("matrix")
        path = network.shortest_path(0, 24)
        assert path[0] == 0 and path[-1] == 24

    def test_oracle_path_unreachable_raises(self):
        network = build_network(
            nodes=[(0, 0.0, 0.0), (1, 1.0, 0.0)],
            edges=[(0, 1, 30.0)],
            bidirectional=False,
        )
        network.use_backend("ch")
        assert network.shortest_path(0, 1) == [0, 1]
        with pytest.raises(UnreachableError):
            network.shortest_path(1, 0)
