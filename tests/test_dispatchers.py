"""Integration-style tests for the WATTER dispatcher and the baselines."""

from __future__ import annotations

import pytest

from repro.baselines import GASDispatcher, GDPDispatcher, NonSharingDispatcher
from repro.core.strategies import ConstantThresholdProvider
from repro.core.watter import WatterDispatcher
from repro.routing.planner import RoutePlanner
from tests.conftest import make_order


@pytest.fixture
def watter_factory(small_network, fleet_factory, base_config):
    def factory(kind="online", provider=None, locations=(0, 5, 30, 35)):
        planner = RoutePlanner(small_network)
        fleet = fleet_factory(locations=locations)
        if kind == "online":
            return WatterDispatcher.online(planner, fleet, base_config)
        if kind == "timeout":
            return WatterDispatcher.timeout(planner, fleet, base_config)
        if kind == "expect":
            provider = provider or ConstantThresholdProvider(150.0)
            return WatterDispatcher.expect(planner, fleet, base_config, provider)
        raise ValueError(kind)

    return factory


class TestWatterDispatcher:
    def test_factory_names(self, watter_factory):
        assert watter_factory("online").describe() == "WATTER-online"
        assert watter_factory("timeout").describe() == "WATTER-timeout"
        assert watter_factory("expect").describe() == "WATTER-expect"

    def test_submit_pools_the_order(self, watter_factory, small_network):
        dispatcher = watter_factory("online")
        order = make_order(small_network, 6, 30)
        result = dispatcher.submit(order, order.release_time)
        assert not result
        assert order.order_id in dispatcher.pool

    def test_online_tick_serves_single_order(self, watter_factory, small_network):
        dispatcher = watter_factory("online")
        order = make_order(small_network, 6, 30)
        dispatcher.submit(order, 0.0)
        result = dispatcher.tick(10.0)
        assert len(result.served) == 1
        served = result.served[0]
        assert served.order.order_id == order.order_id
        assert served.response_time == pytest.approx(10.0)
        assert served.detour_time == pytest.approx(0.0)
        assert dispatcher.fleet.total_travel_time > 0.0

    def test_online_shares_concurrent_orders(self, watter_factory, small_network):
        dispatcher = watter_factory("online")
        first = make_order(small_network, 0, 24, release=0.0)
        second = make_order(small_network, 6, 30, release=2.0)
        dispatcher.submit(first, 0.0)
        dispatcher.submit(second, 2.0)
        result = dispatcher.tick(10.0)
        assert len(result.served) == 2
        assert {record.group_size for record in result.served} == {2}

    def test_timeout_holds_then_serves(self, watter_factory, small_network):
        dispatcher = watter_factory("timeout")
        first = make_order(small_network, 0, 24, release=0.0)
        second = make_order(small_network, 6, 30, release=2.0)
        dispatcher.submit(first, 0.0)
        dispatcher.submit(second, 2.0)
        early = dispatcher.tick(10.0)
        assert not early.served
        # By t=120 the pair is close enough to its expiration that the
        # timeout strategy releases it (still as a shared group).
        late = dispatcher.tick(120.0)
        assert len(late.served) == 2

    def test_expect_with_generous_threshold_behaves_like_online_for_groups(
        self, watter_factory, small_network
    ):
        dispatcher = watter_factory("expect", provider=ConstantThresholdProvider(1e9))
        first = make_order(small_network, 0, 24, release=0.0)
        second = make_order(small_network, 6, 30, release=2.0)
        dispatcher.submit(first, 0.0)
        dispatcher.submit(second, 2.0)
        result = dispatcher.tick(10.0)
        assert len(result.served) == 2

    def test_expect_with_zero_threshold_holds_groups(
        self, watter_factory, small_network
    ):
        dispatcher = watter_factory("expect", provider=ConstantThresholdProvider(0.0))
        first = make_order(small_network, 0, 24, release=0.0)
        second = make_order(small_network, 6, 30, release=2.0)
        dispatcher.submit(first, 0.0)
        dispatcher.submit(second, 2.0)
        result = dispatcher.tick(10.0)
        assert not result.served

    def test_no_workers_available_holds_orders(self, small_network, base_config):
        from repro.model.worker import Worker
        from repro.network.grid import GridIndex
        from repro.simulation.fleet import WorkerFleet

        # A single worker that is far away AND too small for any pair.
        workers = [Worker(location=35, capacity=2)]
        fleet = WorkerFleet(workers, small_network, GridIndex(small_network, 3))
        planner = RoutePlanner(small_network)
        dispatcher = WatterDispatcher.online(planner, fleet, base_config)
        tight = make_order(small_network, 0, 2, deadline_scale=1.2)
        dispatcher.submit(tight, 0.0)
        result = dispatcher.tick(10.0)
        assert not result.served
        assert tight.order_id in dispatcher.pool

    def test_flush_rejects_everything_left(self, watter_factory, small_network):
        dispatcher = watter_factory("timeout")
        order = make_order(small_network, 0, 24)
        dispatcher.submit(order, 0.0)
        result = dispatcher.flush(10_000.0)
        assert len(result.rejected) == 1
        assert result.rejected[0].order_id == order.order_id


class TestNonSharingDispatcher:
    def test_serves_immediately_when_worker_available(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0,))
        dispatcher = NonSharingDispatcher(RoutePlanner(small_network), fleet, base_config)
        order = make_order(small_network, 6, 30)
        result = dispatcher.submit(order, 0.0)
        assert len(result.served) == 1
        assert result.served[0].group_size == 1

    def test_queues_when_no_worker_then_serves(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0,))
        dispatcher = NonSharingDispatcher(RoutePlanner(small_network), fleet, base_config)
        first = make_order(small_network, 6, 30, release=0.0)
        second = make_order(small_network, 2, 14, release=1.0)
        assert len(dispatcher.submit(first, 0.0).served) == 1
        queued = dispatcher.submit(second, 1.0)
        assert not queued.served
        finish = fleet.worker(fleet.idle_workers(1e9)[0].worker_id).busy_until
        result = dispatcher.tick(finish + 1.0)
        assert len(result.served) + len(result.rejected) == 1

    def test_expired_orders_rejected(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(0,))
        dispatcher = NonSharingDispatcher(RoutePlanner(small_network), fleet, base_config)
        first = make_order(small_network, 6, 30, release=0.0)
        dispatcher.submit(first, 0.0)
        stuck = make_order(small_network, 2, 14, release=1.0, deadline_scale=1.05)
        dispatcher.submit(stuck, 1.0)
        result = dispatcher.tick(stuck.deadline + 1.0)
        assert any(order.order_id == stuck.order_id for order in result.rejected)

    def test_flush_rejects_queue(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(0,))
        dispatcher = NonSharingDispatcher(RoutePlanner(small_network), fleet, base_config)
        first = make_order(small_network, 6, 30, release=0.0)
        second = make_order(small_network, 2, 14, release=0.0)
        dispatcher.submit(first, 0.0)
        dispatcher.submit(second, 0.0)
        result = dispatcher.flush(10.0)
        assert len(result.rejected) == 1


class TestGDPDispatcher:
    def test_serves_immediately(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(0,))
        dispatcher = GDPDispatcher(small_network, fleet, base_config)
        order = make_order(small_network, 6, 30)
        result = dispatcher.submit(order, 0.0)
        assert not result.rejected
        done = dispatcher.flush(1e9)
        assert len(done.served) == 1
        assert done.served[0].response_time == 0.0

    def test_rejects_infeasible_order(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(35,))
        dispatcher = GDPDispatcher(small_network, fleet, base_config)
        # Worker too far away for this tight deadline.
        order = make_order(small_network, 0, 2, deadline_scale=1.1)
        result = dispatcher.submit(order, 0.0)
        assert len(result.rejected) == 1

    def test_inserts_second_order_into_existing_route(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0,))
        dispatcher = GDPDispatcher(small_network, fleet, base_config)
        first = make_order(small_network, 6, 30, release=0.0)
        second = make_order(small_network, 12, 24, release=5.0, deadline_scale=3.0)
        assert not dispatcher.submit(first, 0.0).rejected
        assert not dispatcher.submit(second, 5.0).rejected
        done = dispatcher.flush(1e9)
        assert len(done.served) == 2
        assert dispatcher.fleet.total_travel_time > 0.0

    def test_deadlines_respected_under_insertion(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0,))
        dispatcher = GDPDispatcher(small_network, fleet, base_config)
        orders = [
            make_order(small_network, 6, 30, release=0.0),
            make_order(small_network, 2, 14, release=1.0),
            make_order(small_network, 3, 15, release=2.0),
        ]
        for order in orders:
            dispatcher.submit(order, order.release_time)
        done = dispatcher.flush(1e9)
        # every served order is dropped before its deadline by construction;
        # verify through the recorded detour accounting
        for record in done.served:
            dropoff_time = (
                record.order.release_time
                + record.detour_time
                + record.order.shortest_time
            )
            assert dropoff_time <= record.order.deadline + 1e-6


class TestGASDispatcher:
    def test_batches_orders_until_boundary(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0, 5))
        dispatcher = GASDispatcher(
            RoutePlanner(small_network), fleet, base_config, batch_size=10.0
        )
        order = make_order(small_network, 6, 30, release=2.0)
        assert not dispatcher.submit(order, 2.0)
        before_boundary = dispatcher.tick(5.0)
        assert not before_boundary.served
        after_boundary = dispatcher.tick(10.0)
        assert len(after_boundary.served) == 1

    def test_groups_within_batch(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(0,))
        dispatcher = GASDispatcher(
            RoutePlanner(small_network), fleet, base_config, batch_size=10.0
        )
        first = make_order(small_network, 0, 24, release=1.0)
        second = make_order(small_network, 6, 30, release=2.0)
        dispatcher.submit(first, 1.0)
        dispatcher.submit(second, 2.0)
        result = dispatcher.tick(10.0)
        assert len(result.served) == 2
        assert {record.group_size for record in result.served} == {2}

    def test_cross_batch_orders_not_grouped_when_workers_available(
        self, small_network, fleet_factory, base_config
    ):
        fleet = fleet_factory(locations=(0, 1))
        dispatcher = GASDispatcher(
            RoutePlanner(small_network), fleet, base_config, batch_size=10.0
        )
        first = make_order(small_network, 0, 24, release=1.0)
        dispatcher.submit(first, 1.0)
        first_batch = dispatcher.tick(10.0)
        assert len(first_batch.served) == 1
        second = make_order(small_network, 6, 30, release=12.0)
        dispatcher.submit(second, 12.0)
        second_batch = dispatcher.tick(20.0)
        assert len(second_batch.served) == 1
        assert all(record.group_size == 1 for record in first_batch.served)
        assert all(record.group_size == 1 for record in second_batch.served)

    def test_expired_buffered_orders_rejected(
        self, small_network, fleet_factory, base_config
    ):
        from repro.model.worker import Worker
        from repro.network.grid import GridIndex
        from repro.simulation.fleet import WorkerFleet

        # One worker kept busy by a first assignment; the second order expires.
        fleet = WorkerFleet(
            [Worker(location=0, capacity=4)], small_network, GridIndex(small_network, 3)
        )
        dispatcher = GASDispatcher(
            RoutePlanner(small_network), fleet, base_config, batch_size=10.0
        )
        first = make_order(small_network, 6, 30, release=0.0)
        dispatcher.submit(first, 0.0)
        dispatcher.tick(10.0)
        blocked = make_order(small_network, 30, 20, release=11.0, deadline_scale=1.2)
        dispatcher.submit(blocked, 11.0)
        result = dispatcher.tick(blocked.deadline + 20.0)
        assert any(order.order_id == blocked.order_id for order in result.rejected)

    def test_flush_resolves_buffer(self, small_network, fleet_factory, base_config):
        fleet = fleet_factory(locations=(0,))
        dispatcher = GASDispatcher(
            RoutePlanner(small_network), fleet, base_config, batch_size=10.0
        )
        order = make_order(small_network, 6, 30, release=1.0)
        dispatcher.submit(order, 1.0)
        result = dispatcher.flush(5.0)
        assert len(result.served) + len(result.rejected) == 1
