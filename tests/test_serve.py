"""Tests for the ``repro.serve`` subsystem: protocol parsing, the
session pool, cross-request oracle batching, sinks, the service core
and both transports (HTTP and stdin JSON-lines).

The load-bearing assertions mirror the serving layer's promises:

* a served run's decision-derived metrics are identical to a direct
  ``repro.api.run_scenario`` execution of the same spec+seed;
* two concurrent submissions naming the same network/oracle identity
  build the oracle exactly once (pool hit counter + ``oracle_builds``);
* malformed specs come back as structured 400-style refusals, on every
  entry point, without reaching the executor.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.api import ScenarioSpec, run_scenario
from repro.network.generators import grid_city
from repro.network.oracle import HAVE_NUMPY
from repro.serve import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    BatchedNetworkView,
    JsonlSink,
    MemorySink,
    OracleBatcher,
    ProtocolError,
    ScenarioService,
    SessionPool,
    parse_submission,
    pool_key,
    serve_stdin,
)
from repro.simulation.parallel import merge_block_requests

_WAIT = 240.0  # generous per-run bound; small grids finish in well under a second


def _grid_spec(**overrides) -> ScenarioSpec:
    base = dict(
        network="grid",
        grid_rows=4,
        grid_cols=4,
        num_orders=12,
        num_workers=4,
        horizon=200.0,
        seed=7,
        algorithm="GDP",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _deterministic(row: dict) -> dict:
    """Summary-row fields that must agree between execution paths."""
    return {key: value for key, value in row.items() if key != "running_time"}


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_flat_spec_submission(self):
        spec, options = parse_submission(_grid_spec().to_dict())
        assert spec == _grid_spec()
        assert options == {}

    def test_wrapped_submission_carries_options(self):
        payload = {"spec": _grid_spec().to_dict(), "wait": True, "timeout": 5}
        spec, options = parse_submission(payload)
        assert spec == _grid_spec()
        assert options == {"wait": True, "timeout": 5.0}

    def test_non_mapping_submission_is_400(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse_submission([1, 2, 3])
        assert exc_info.value.status == 400
        assert exc_info.value.error == "invalid-request"

    def test_unknown_wrapper_key_is_400(self):
        with pytest.raises(ProtocolError, match="unknown submission key"):
            parse_submission({"spec": _grid_spec().to_dict(), "priority": 1})

    def test_bad_timeout_is_400(self):
        with pytest.raises(ProtocolError, match="timeout"):
            parse_submission({"spec": _grid_spec().to_dict(), "timeout": "soon"})

    def test_invalid_spec_reuses_spec_layer_message(self):
        with pytest.raises(ProtocolError) as exc_info:
            parse_submission({"network": "hexagonal"})
        assert exc_info.value.status == 400
        assert exc_info.value.error == "invalid-spec"
        assert "hexagonal" in exc_info.value.detail

    def test_error_payload_is_structured(self):
        error = ProtocolError(404, "unknown-run", "no run with id 'x'")
        assert error.payload == {
            "error": "unknown-run",
            "detail": "no run with id 'x'",
            "status": 404,
        }


# ----------------------------------------------------------------------
# session pool
# ----------------------------------------------------------------------
class TestSessionPool:
    def test_key_ignores_workload_and_dispatch_fields(self):
        base = _grid_spec(oracle_backend="ch")
        same = base.with_overrides(
            num_orders=30, num_workers=8, algorithm="GAS", dispatch_workers=2
        )
        assert pool_key(base) == pool_key(same)

    @pytest.mark.parametrize(
        "overrides",
        (
            {"seed": 8},  # network generation is seeded
            {"grid_rows": 5},
            {"oracle_backend": "lazy"},
            {"oracle_cache_size": 123},
        ),
    )
    def test_key_tracks_network_and_oracle_identity(self, overrides):
        base = _grid_spec(oracle_backend="ch")
        assert pool_key(base) != pool_key(base.with_overrides(**overrides))

    def test_acquire_hits_and_misses(self):
        pool = SessionPool(max_sessions=2)
        first = pool.acquire(_grid_spec())
        again = pool.acquire(_grid_spec(algorithm="GAS"))
        other = pool.acquire(_grid_spec(seed=99))
        assert first is again
        assert other is not first
        stats = pool.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["sessions"] == 2

    def test_lru_eviction(self):
        pool = SessionPool(max_sessions=1)
        pool.acquire(_grid_spec())
        pool.acquire(_grid_spec(seed=99))
        stats = pool.stats()
        assert stats["sessions"] == 1
        assert stats["evictions"] == 1


# ----------------------------------------------------------------------
# batcher
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def batch_city():
    return grid_city(rows=6, cols=6, seed=5, jitter=0.2)


class TestOracleBatcher:
    def test_answers_match_direct_network(self, batch_city):
        nodes = sorted(batch_city.graph.nodes())
        sources, targets = nodes[:8], nodes[10:22]
        batcher = OracleBatcher(batch_city)
        assert batcher.travel_times_many(sources, targets) == (
            batch_city.travel_times_many(sources, targets)
        )

    def test_chunked_flush_matches_unchunked(self, batch_city):
        nodes = sorted(batch_city.graph.nodes())
        sources, targets = nodes[:6], nodes
        small = OracleBatcher(batch_city, max_targets_per_call=5)
        assert small.travel_times_many(sources, targets) == (
            batch_city.travel_times_many(sources, targets)
        )
        assert small.stats()["batches"] == 1

    def test_empty_block_short_circuits(self, batch_city):
        batcher = OracleBatcher(batch_city)
        assert batcher.travel_times_many([], [1, 2]) == {}
        assert batcher.stats()["requests"] == 0

    def test_concurrent_blocks_coalesce_into_one_flush(self, batch_city):
        """Hold the flush lock so two blocks must queue; exactly one
        leader answers both with a single aggregated oracle call."""
        nodes = sorted(batch_city.graph.nodes())
        batcher = OracleBatcher(batch_city)
        results: dict[str, dict] = {}

        def query(name: str, sources, targets):
            results[name] = batcher.travel_times_many(sources, targets)

        with batcher._flush_lock:  # stall both callers at the gate
            first = threading.Thread(
                target=query, args=("a", nodes[:4], nodes[8:14])
            )
            second = threading.Thread(
                target=query, args=("b", nodes[2:6], nodes[12:18])
            )
            first.start()
            second.start()
            deadline = time.monotonic() + 30
            while batcher.stats()["requests"] < 2:
                assert time.monotonic() < deadline, "blocks never queued"
                time.sleep(0.005)
        first.join(timeout=30)
        second.join(timeout=30)
        stats = batcher.stats()
        assert stats["requests"] == 2
        assert stats["batches"] == 1
        assert stats["coalesced_requests"] == 1
        # Coalescing changes when the oracle is asked, never its answers.
        assert results["a"] == batch_city.travel_times_many(
            nodes[:4], nodes[8:14]
        )
        assert results["b"] == batch_city.travel_times_many(
            nodes[2:6], nodes[12:18]
        )

    def test_merge_block_requests_union(self):
        sources, targets = merge_block_requests(
            [([3, 1], [10, 11]), ([1, 2], [11, 12])]
        )
        assert sources == [1, 2, 3]
        assert targets == [10, 11, 12]


class TestBatchedNetworkView:
    def test_view_shares_graph_and_oracle(self, batch_city):
        view = BatchedNetworkView(OracleBatcher(batch_city))
        assert view.graph is batch_city.graph
        assert view.oracle is batch_city.oracle

    def test_view_queries_match_parent(self, batch_city):
        nodes = sorted(batch_city.graph.nodes())
        view = BatchedNetworkView(OracleBatcher(batch_city))
        assert view.travel_time(nodes[0], nodes[5]) == batch_city.travel_time(
            nodes[0], nodes[5]
        )
        assert view.shortest_path(nodes[0], nodes[5]) == (
            batch_city.shortest_path(nodes[0], nodes[5])
        )
        assert view.travel_times_many(nodes[:3], nodes[4:8]) == (
            batch_city.travel_times_many(nodes[:3], nodes[4:8])
        )

    def test_view_rejects_unknown_nodes(self, batch_city):
        view = BatchedNetworkView(OracleBatcher(batch_city))
        with pytest.raises(Exception):
            view.travel_times_many([10**9], [0])


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_memory_sink_bounds_events(self):
        sink = MemorySink(max_events=3, context={"run_id": "r1"})
        for now in range(5):
            sink.on_periodic_check(float(now))
        assert sink.dropped_events == 2
        assert [event["now"] for event in sink.events] == [2.0, 3.0, 4.0]
        assert all(event["run_id"] == "r1" for event in sink.events)

    def test_jsonl_sink_traces_a_direct_run(self, tmp_path):
        """The sink is usable outside the server: one facade call with
        ``trace_path`` leaves a complete JSONL trace."""
        trace = tmp_path / "trace.jsonl"
        result = run_scenario(_grid_spec(), trace_path=trace)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events[0]["event"] == "run_start"
        assert events[0]["algorithm"] == "GDP"
        assert events[0]["graph_hash"] == result.graph_hash
        assert events[-1]["event"] == "run_end"
        assert events[-1]["metrics"]["orders"] == 12
        kinds = {event["event"] for event in events}
        assert "order_arrival" in kinds

    def test_jsonl_sink_as_hooks_argument(self, tmp_path):
        trace = tmp_path / "hooks.jsonl"
        with JsonlSink(trace, context={"run_id": "r9"}) as sink:
            run_scenario(_grid_spec(), hooks=sink)
        first = json.loads(trace.read_text().splitlines()[0])
        assert first["event"] == "run_start"
        assert first["run_id"] == "r9"


# ----------------------------------------------------------------------
# the service core
# ----------------------------------------------------------------------
class TestScenarioService:
    def test_served_metrics_match_direct_run(self):
        spec = _grid_spec(oracle_backend="ch")
        direct = run_scenario(spec)
        with ScenarioService(max_runs=2) as service:
            record = service.wait(service.submit_spec(spec).run_id, timeout=_WAIT)
            assert record.status == COMPLETED, record.error
            assert _deterministic(record.result["metrics"]) == (
                _deterministic(direct.metrics.summary_row())
            )
            assert record.result["graph_hash"] == direct.graph_hash

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="WATTER-expect needs numpy (GMM fitting)"
    )
    def test_served_watter_expect_matches_direct_run(self):
        """The pooled session hands the run its memoised provider, so
        the learning-based algorithm is served bit-identically too."""
        spec = _grid_spec(
            grid_rows=5, grid_cols=5, num_orders=30, num_workers=6,
            horizon=300.0, seed=11, algorithm="WATTER-expect",
        )
        direct = run_scenario(spec)
        with ScenarioService(max_runs=1) as service:
            record = service.wait(service.submit_spec(spec).run_id, timeout=_WAIT)
            assert record.status == COMPLETED, record.error
            assert _deterministic(record.result["metrics"]) == (
                _deterministic(direct.metrics.summary_row())
            )

    def test_concurrent_submissions_share_one_oracle(self):
        """The acceptance bar: two concurrent requests naming the same
        network/oracle identity build the oracle exactly once."""
        spec_a = _grid_spec(oracle_backend="ch")
        spec_b = spec_a.with_overrides(num_orders=16, algorithm="GAS")
        with ScenarioService(max_runs=2) as service:
            record_a = service.submit_spec(spec_a)
            record_b = service.submit_spec(spec_b)
            assert service.wait(record_a.run_id, timeout=_WAIT).status == COMPLETED
            assert service.wait(record_b.run_id, timeout=_WAIT).status == COMPLETED
            pool = service.metrics()["pool"]
        assert pool["misses"] == 1
        assert pool["hits"] == 1
        assert pool["sessions"] == 1
        assert pool["oracle_builds"] == 1

    def test_malformed_submission_is_refused_eagerly(self):
        with ScenarioService() as service:
            with pytest.raises(ProtocolError) as exc_info:
                service.submit({"network": "hexagonal"})
            assert exc_info.value.status == 400
            assert exc_info.value.error == "invalid-spec"
            assert service.list_runs() == []  # never reached the executor

    def test_unknown_run_is_404(self):
        with ScenarioService() as service:
            with pytest.raises(ProtocolError) as exc_info:
                service.get("run-999999")
            assert exc_info.value.status == 404

    def test_event_store_brackets_the_run(self):
        with ScenarioService(max_runs=1, store_events=500) as service:
            record = service.wait(
                service.submit_spec(_grid_spec()).run_id, timeout=_WAIT
            )
            events = service.events(record.run_id)
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_end"
        assert all(event["run_id"] == record.run_id for event in events)

    def test_trace_dir_writes_one_file_per_run(self, tmp_path):
        with ScenarioService(max_runs=1, trace_dir=tmp_path) as service:
            record = service.wait(
                service.submit_spec(_grid_spec()).run_id, timeout=_WAIT
            )
        trace = tmp_path / f"{record.run_id}.jsonl"
        lines = trace.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "run_start"
        assert json.loads(lines[-1])["event"] == "run_end"

    def test_failed_run_is_recorded_not_raised(self):
        # Valid spec, impossible workload source: CSV files that do not exist.
        spec = ScenarioSpec(
            network="grid", grid_rows=4, grid_cols=4, workload="csv",
            orders_csv="/nonexistent/orders.csv", num_orders=5,
            num_workers=2, horizon=100.0, seed=1, algorithm="GDP",
        )
        with ScenarioService(max_runs=1) as service:
            record = service.wait(service.submit_spec(spec).run_id, timeout=_WAIT)
        assert record.status == FAILED
        assert record.error is not None
        assert record.error["error"] in ("invalid-spec", "run-failed")

    def test_shutdown_refuses_new_submissions(self):
        service = ScenarioService()
        service.shutdown()
        with pytest.raises(ProtocolError) as exc_info:
            service.submit_spec(_grid_spec())
        assert exc_info.value.status == 503

    def test_metrics_document_shape(self):
        with ScenarioService(max_runs=1) as service:
            service.wait(service.submit_spec(_grid_spec()).run_id, timeout=_WAIT)
            metrics = service.metrics()
        assert metrics["runs"][COMPLETED] == 1
        assert metrics["runs"][QUEUED] == 0
        assert metrics["queue_depth"] == 0
        assert metrics["latency_seconds"]["count"] == 1
        assert metrics["latency_seconds"]["max"] >= 0
        assert metrics["batcher"]["requests"] > 0


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class TestHttpServer:
    @pytest.fixture()
    def http_server(self):
        import asyncio

        from repro.serve import ScenarioServer

        service = ScenarioService(max_runs=2)
        server = ScenarioServer(service, port=0)
        loop = asyncio.new_event_loop()
        started = threading.Event()
        address: list = []

        async def main():
            await server.start()
            address.append(server.address)
            started.set()
            await server.serve_forever()

        thread = threading.Thread(
            target=lambda: loop.run_until_complete(main()), daemon=True
        )
        thread.start()
        assert started.wait(timeout=30)
        yield address[0], server, loop
        if thread.is_alive():
            loop.call_soon_threadsafe(server.request_stop)
            thread.join(timeout=30)
        loop.close()

    @staticmethod
    def _request(address, method, path, body=None):
        import urllib.error
        import urllib.request

        host, port = address
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=_WAIT) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_full_request_cycle(self, http_server):
        address, _server, _loop = http_server
        status, body = self._request(address, "GET", "/healthz")
        assert (status, body) == (200, {"status": "ok"})

        status, body = self._request(
            address, "POST", "/runs?wait=1", _grid_spec().to_dict()
        )
        assert status == 200
        assert body["status"] == COMPLETED
        direct = run_scenario(_grid_spec())
        assert _deterministic(body["result"]["metrics"]) == (
            _deterministic(direct.metrics.summary_row())
        )
        run_id = body["run_id"]

        status, body = self._request(address, "GET", f"/runs/{run_id}")
        assert status == 200 and body["status"] == COMPLETED
        status, body = self._request(address, "GET", f"/runs/{run_id}/events")
        assert status == 200
        assert body["events"][0]["event"] == "run_start"
        status, body = self._request(address, "GET", "/runs")
        assert status == 200 and len(body["runs"]) == 1
        status, body = self._request(address, "GET", "/metrics")
        assert status == 200 and body["runs"][COMPLETED] == 1

    def test_http_refusals_are_structured(self, http_server):
        address, _server, _loop = http_server
        status, body = self._request(address, "POST", "/runs", {"network": "hex"})
        assert status == 400
        assert body["error"] == "invalid-spec"
        status, body = self._request(address, "GET", "/runs/run-999999")
        assert status == 404
        assert body["error"] == "unknown-run"
        status, body = self._request(address, "GET", "/nowhere")
        assert status == 404
        assert body["error"] == "unknown-path"
        status, body = self._request(address, "DELETE", "/metrics")
        assert status == 405

    def test_http_shutdown_stops_the_server(self, http_server):
        address, _server, loop = http_server
        status, body = self._request(address, "POST", "/shutdown")
        assert (status, body["status"]) == (200, "shutting-down")
        deadline = time.monotonic() + 30
        while loop.is_running() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not loop.is_running()

    @staticmethod
    def _raw_request(address, payload: bytes, *, close_early: bool = False):
        """Speak raw HTTP over a socket (for requests urllib refuses to send)."""
        import socket

        host, port = address
        with socket.create_connection((host, port), timeout=_WAIT) as sock:
            sock.sendall(payload)
            if close_early:
                return None, None  # hang up mid-request, no response read
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, json.loads(body) if body else None

    def test_cancel_endpoint(self, http_server):
        address, _server, _loop = http_server
        status, body = self._request(
            address, "POST", "/runs", _grid_spec().to_dict()
        )
        assert status == 202
        run_id = body["run_id"]
        status, body = self._request(address, "POST", f"/runs/{run_id}/cancel")
        assert status == 202
        assert body["run_id"] == run_id
        deadline = time.monotonic() + _WAIT
        while time.monotonic() < deadline:
            status, body = self._request(address, "GET", f"/runs/{run_id}")
            if body["status"] in (CANCELLED, COMPLETED):
                break
            time.sleep(0.01)
        # The run either never started (cancelled in the queue) or won
        # the race and finished; both are clean terminal states.
        assert body["status"] in (CANCELLED, COMPLETED)

    def test_cancel_unknown_run_is_404(self, http_server):
        address, _server, _loop = http_server
        status, body = self._request(
            address, "POST", "/runs/run-999999/cancel"
        )
        assert status == 404
        assert body["error"] == "unknown-run"

    def test_malformed_content_length_is_400(self, http_server):
        address, _server, _loop = http_server
        status, body = self._raw_request(
            address,
            b"POST /runs HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
        )
        assert status == 400
        assert body["error"] == "invalid-request"
        assert "Content-Length" in body["detail"]

    def test_negative_content_length_is_400(self, http_server):
        address, _server, _loop = http_server
        status, body = self._raw_request(
            address,
            b"POST /runs HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n",
        )
        assert status == 400
        assert body["error"] == "invalid-request"

    def test_oversized_body_is_413_without_reading_it(self, http_server):
        address, _server, _loop = http_server
        status, body = self._raw_request(
            address,
            b"POST /runs HTTP/1.1\r\nHost: x\r\nContent-Length: 2000000\r\n\r\n",
        )
        assert status == 413
        assert body["error"] == "payload-too-large"

    def test_client_disconnect_mid_request_leaves_server_healthy(
        self, http_server
    ):
        address, _server, _loop = http_server
        # Promise a body, send half a request line, hang up abruptly.
        self._raw_request(
            address,
            b"POST /runs HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"par",
            close_early=True,
        )
        self._raw_request(address, b"GET /runs", close_early=True)
        status, body = self._request(address, "GET", "/healthz")
        assert (status, body) == (200, {"status": "ok"})


# ----------------------------------------------------------------------
# stdin JSON-lines transport
# ----------------------------------------------------------------------
class TestStdinTransport:
    @staticmethod
    def _drive(lines):
        in_stream = io.StringIO(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        out_stream = io.StringIO()
        service = ScenarioService(max_runs=1)
        served = serve_stdin(service, in_stream, out_stream)
        replies = [
            json.loads(line) for line in out_stream.getvalue().splitlines()
        ]
        return served, replies, service

    def test_submit_wait_then_shutdown(self):
        served, replies, service = self._drive(
            [
                {**_grid_spec().to_dict(), "wait": True},
                {"op": "metrics"},
                {"op": "shutdown"},
            ]
        )
        assert served == 3
        submit, metrics, farewell = replies
        assert submit["ok"] and submit["status"] == COMPLETED
        assert submit["result"]["metrics"]["orders"] == 12
        assert metrics["ok"] and metrics["runs"][COMPLETED] == 1
        assert farewell == {"ok": True, "status": "shutting-down"}
        # The loop's exit drained the service.
        with pytest.raises(ProtocolError):
            service.submit_spec(_grid_spec())

    def test_wrapped_submit_and_poll(self):
        served, replies, _service = self._drive(
            [
                {"op": "submit", "spec": _grid_spec().to_dict(), "wait": True},
                {"op": "poll", "run_id": "run-000001"},
                {"op": "events", "run_id": "run-000001"},
                {"op": "list"},
            ]
        )
        assert served == 4
        submit, poll, events, listing = replies
        assert submit["status"] == COMPLETED
        assert poll["status"] == COMPLETED
        assert events["events"][-1]["event"] == "run_end"
        assert [run["run_id"] for run in listing["runs"]] == ["run-000001"]

    def test_cancel_op(self):
        served, replies, _service = self._drive(
            [
                {"op": "submit", "spec": _grid_spec().to_dict()},
                {"op": "cancel", "run_id": "run-000001"},
                {"op": "shutdown"},
            ]
        )
        assert served == 3
        _submit, cancelled, _farewell = replies
        assert cancelled["ok"]
        assert cancelled["run_id"] == "run-000001"

    def test_cancel_without_run_id_is_refused(self):
        _served, replies, _service = self._drive(
            [{"op": "cancel"}, {"op": "shutdown"}]
        )
        assert not replies[0]["ok"]

    def test_structured_refusals(self):
        _served, replies, _service = self._drive(
            [
                "not an object",
                {"op": "poll"},
                {"op": "teleport"},
                {"network": "hex"},
            ]
        )
        assert [reply["ok"] for reply in replies] == [False] * 4
        assert replies[0]["error"] == "invalid-request"
        assert replies[1]["error"] == "invalid-request"
        assert replies[2]["error"] == "unknown-op"
        assert replies[3]["error"] == "invalid-spec"
