"""Durability tests: journal, checkpoints, recovery, locks, drain.

The contract this file pins down (ISSUE 8):

* the write-ahead run journal survives torn writes and is compacted on
  clean startup,
* a run interrupted at *any* checkpoint boundary and resumed produces
  metrics identical to an uninterrupted run — across dispatchers and
  oracle backends,
* a service restarted on its ``--state-dir`` accounts for every
  previously accepted run (finished runs are served from the result
  store, queued runs re-enqueued, orphaned in-flight runs resumed or
  reported ``interrupted``) — even after ``kill -9``,
* two processes sharing one oracle cache directory contract a CH
  hierarchy exactly once, and a dead builder's lock is taken over,
* a graceful drain refuses new work with a structured 503, settles
  in-flight runs within its budget and journals a clean shutdown.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, Session
from repro.network.oracle import HAVE_NUMPY
from repro.durability import (
    CheckpointError,
    Checkpointer,
    InterProcessLock,
    LockTimeout,
    ResultStore,
    RunJournal,
    read_jsonl_tolerant,
)
from repro.durability.checkpoint import read_checkpoint_header
from repro.resilience import (
    CancellationToken,
    FaultInjector,
    RunCancelled,
    injected_faults,
)
from repro.serve import (
    COMPLETED,
    INTERRUPTED,
    JsonlSink,
    ProtocolError,
    ScenarioService,
    read_trace,
)
from repro.simulation.hooks import CompositeHooks, SimulationHooks

_WAIT = 240.0
_REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _spec(algorithm: str = "GDP", oracle: str = "lazy", **overrides) -> ScenarioSpec:
    base = dict(
        network="grid",
        grid_rows=5,
        grid_cols=5,
        num_orders=30,
        num_workers=5,
        horizon=600.0,
        seed=11,
        algorithm=algorithm,
        oracle_backend=oracle,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _comparable(metrics) -> dict:
    """Metrics as a dict, minus wall-clock and per-run oracle counters."""
    row = asdict(metrics)
    row.pop("running_time_total")
    row.pop("running_time_per_order")
    row.pop("oracle_stats")
    return row


def _rows_equal(got: dict, want: dict) -> None:
    assert set(got) == set(want)
    for key, expected in want.items():
        if key == "running_time":
            continue
        if isinstance(expected, float):
            assert got[key] == pytest.approx(expected, rel=1e-9), key
        else:
            assert got[key] == expected, key


class _CancelAfterTicks(SimulationHooks):
    """Cancels a token after N periodic checks — a deterministic cut."""

    def __init__(self, token: CancellationToken, ticks: int) -> None:
        self._token = token
        self._remaining = ticks

    def on_periodic_check(self, now: float) -> None:
        self._remaining -= 1
        if self._remaining <= 0:
            self._token.cancel("test interruption")


def _interrupt_and_checkpoint(
    session: Session, spec: ScenarioSpec, path: Path, *, cut: int, interval: int = 1
) -> None:
    """Run ``spec`` until ``cut`` ticks, leaving a forced checkpoint."""
    token = CancellationToken()
    hooks = CompositeHooks(
        [Checkpointer(path, interval=interval), _CancelAfterTicks(token, cut)]
    )
    with pytest.raises(RunCancelled):
        session.run(spec, hooks=hooks, cancellation=token)
    assert path.exists(), "the cancelled run must leave a forced checkpoint"


# ----------------------------------------------------------------------
# tolerant JSONL + run journal
# ----------------------------------------------------------------------
class TestTolerantJsonl:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_jsonl_tolerant(tmp_path / "absent.jsonl")) == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": 3, "tru', encoding="utf-8")
        assert list(read_jsonl_tolerant(path)) == [{"a": 1}, {"b": 2}]

    def test_blank_and_garbled_interior_lines_are_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text('{"a": 1}\n\nnot json\n{"b": 2}\n', encoding="utf-8")
        assert list(read_jsonl_tolerant(path)) == [{"a": 1}, {"b": 2}]


class TestRunJournal:
    def test_append_replay_round_trip_stamps_timestamps(self, tmp_path):
        with RunJournal(tmp_path / "journal.jsonl") as journal:
            assert journal.append({"type": "submitted", "run_id": "run-1"})
            assert journal.append({"type": "started", "run_id": "run-1"})
        entries = RunJournal(tmp_path / "journal.jsonl").replay()
        assert [entry["type"] for entry in entries] == ["submitted", "started"]
        assert all("ts" in entry for entry in entries)

    def test_compaction_drops_named_runs_and_markers(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append({"type": "submitted", "run_id": "run-1"})
        journal.append({"type": "finished", "run_id": "run-1"})
        journal.append({"type": "submitted", "run_id": "run-2"})
        journal.append({"type": "clean_shutdown"})
        dropped = journal.compact({"run-1"})
        assert dropped >= 2
        assert journal.compactions == 1
        remaining = journal.replay()
        assert [entry["type"] for entry in remaining] == ["submitted"]
        assert remaining[0]["run_id"] == "run-2"
        # The reopened handle still appends to the compacted file.
        journal.append({"type": "started", "run_id": "run-2"})
        assert [e["type"] for e in journal.replay()] == ["submitted", "started"]
        journal.close()

    def test_append_failures_are_counted_not_raised(self, tmp_path):
        injector = FaultInjector(
            {"journal.append": {"fail_first": 50, "exception": "os"}}
        )
        with injected_faults(injector):
            journal = RunJournal(tmp_path / "journal.jsonl")
            assert journal.append({"type": "submitted", "run_id": "run-1"}) is False
        assert journal.append_failures > 0
        journal.close()


class TestResultStore:
    def test_round_trip_and_listing(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        assert store.save("run-000001", {"status": "completed"})
        assert store.load("run-000001") == {"status": "completed"}
        assert store.load("run-missing") is None
        assert store.run_ids() == {"run-000001"}
        store.delete("run-000001")
        assert store.run_ids() == set()

    def test_run_ids_with_path_separators_are_sanitised(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        assert store.save("../escape", {"x": 1})
        files = list((tmp_path / "results").glob("*.json"))
        assert len(files) == 1
        # The separator is neutralised: the file stays inside the store.
        assert files[0].parent == tmp_path / "results"
        assert "/" not in files[0].name


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def test_corrupted_blob_fails_the_crc_check(self, tmp_path):
        session = Session()
        spec = _spec()
        path = tmp_path / "run.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=3)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="(?i)crc|corrupt"):
            session.run(spec, resume_from=path)

    def test_truncated_file_is_a_checkpoint_error(self, tmp_path):
        session = Session()
        spec = _spec()
        path = tmp_path / "run.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=3)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            session.run(spec, resume_from=path)

    def test_header_is_json_with_cursor_and_meta(self, tmp_path):
        session = Session()
        spec = _spec()
        path = tmp_path / "run.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=4)
        header = read_checkpoint_header(path)
        assert header["cursor"]["ticks"] >= 4
        assert header["meta"]["algorithm"] == spec.algorithm
        assert header["meta"]["total_orders"] == spec.num_orders

    def test_resume_with_mismatched_spec_is_refused(self, tmp_path):
        session = Session()
        spec = _spec(algorithm="GDP")
        path = tmp_path / "run.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=3)
        with pytest.raises(CheckpointError, match="GDP"):
            session.run(spec.with_overrides(algorithm="WATTER-online"), resume_from=path)

    def test_missing_checkpoint_file_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            Session().run(_spec(), resume_from=tmp_path / "never-written.ckpt")


# ----------------------------------------------------------------------
# the acceptance property: interrupt anywhere, resume, identical metrics
# ----------------------------------------------------------------------
_BASELINES: dict[tuple[str, str], dict] = {}


def _baseline(session: Session, algorithm: str, oracle: str) -> dict:
    key = (algorithm, oracle)
    if key not in _BASELINES:
        _BASELINES[key] = _comparable(
            session.run(_spec(algorithm, oracle)).metrics
        )
    return _BASELINES[key]


class TestResumeEquivalence:
    @pytest.mark.parametrize("oracle", ["lazy", "ch"])
    @pytest.mark.parametrize(
        "algorithm", ["GDP", "WATTER-online", "WATTER-expect", "nonsharing"]
    )
    def test_interrupted_resume_matches_uninterrupted(
        self, algorithm, oracle, tmp_path
    ):
        if algorithm == "WATTER-expect" and not HAVE_NUMPY:
            pytest.skip("WATTER-expect needs numpy (GMM threshold fitting)")
        session = Session()
        spec = _spec(algorithm, oracle)
        baseline = _baseline(session, algorithm, oracle)
        path = tmp_path / "cut.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=5, interval=2)
        resumed = session.run(spec, resume_from=path)
        assert _comparable(resumed.metrics) == baseline

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.integers(min_value=1, max_value=25), interval=st.integers(1, 5))
    def test_any_checkpoint_boundary_resumes_identically(
        self, tmp_path, cut, interval
    ):
        session = Session()
        spec = _spec("GDP", "lazy")
        baseline = _baseline(session, "GDP", "lazy")
        path = tmp_path / f"cut-{cut}-{interval}.ckpt"
        _interrupt_and_checkpoint(session, spec, path, cut=cut, interval=interval)
        resumed = session.run(spec, resume_from=path)
        assert _comparable(resumed.metrics) == baseline


# ----------------------------------------------------------------------
# service recovery on a state dir
# ----------------------------------------------------------------------
def _service_spec(**overrides) -> ScenarioSpec:
    """A run long enough (many ticks) to snapshot mid-flight."""
    return _spec(
        grid_rows=8,
        grid_cols=8,
        num_orders=150,
        num_workers=10,
        horizon=4000.0,
        seed=23,
        **overrides,
    )


@pytest.fixture(scope="module")
def crash_image(tmp_path_factory) -> tuple[Path, str, dict]:
    """Run a durable service, snapshot its state dir mid-run (a fake
    ``kill -9`` image), then let the original finish for the baseline.

    Module-scoped: recovery tests each copy the pristine image before
    restarting a service on it.
    """
    tmp_path = tmp_path_factory.mktemp("crash")
    state = tmp_path / "state"
    with ScenarioService(
        max_runs=1, state_dir=state, checkpoint_interval=2
    ) as service:
        record = service.submit_spec(_service_spec())
        run_id = record.run_id
        journal = state / "journal.jsonl"
        deadline = time.monotonic() + _WAIT
        while time.monotonic() < deadline:
            types = [e.get("type") for e in read_jsonl_tolerant(journal)]
            if "checkpointed" in types:
                break
            time.sleep(0.002)
        else:  # pragma: no cover - diagnostic
            pytest.fail("run never checkpointed")
        image = tmp_path / "crash-image"
        shutil.copytree(state, image)
        finished = service.wait(run_id, timeout=_WAIT)
        assert finished.status == COMPLETED, finished.error
        baseline = finished.result["metrics"]
    image_types = [
        e.get("type")
        for e in read_jsonl_tolerant(image / "journal.jsonl")
        if e.get("run_id") == run_id
    ]
    assert "started" in image_types and "finished" not in image_types, (
        "the snapshot must have caught the run in flight"
    )
    return image, run_id, baseline


class TestServiceRecovery:
    def test_orphaned_run_is_resumed_to_identical_metrics(
        self, crash_image, tmp_path
    ):
        pristine, run_id, baseline = crash_image
        image = tmp_path / "image"
        shutil.copytree(pristine, image)
        with ScenarioService(max_runs=1, state_dir=image) as service:
            assert service.metrics()["durability"]["recovered"]["resumed"] == 1
            record = service.wait(run_id, timeout=_WAIT)
            assert record.status == COMPLETED, record.error
            assert record.resumed_from is not None
            _rows_equal(record.result["metrics"], baseline)

    def test_orphaned_run_is_interrupted_without_auto_resume(
        self, crash_image, tmp_path
    ):
        pristine, run_id, _ = crash_image
        image = tmp_path / "image"
        shutil.copytree(pristine, image)
        with ScenarioService(
            max_runs=1, state_dir=image, auto_resume=False
        ) as service:
            record = service.get(run_id)
            assert record.status == INTERRUPTED
            assert record.checkpoint is not None
            assert record.checkpoint["ticks"] >= 1
        # Interruption is terminal: a second restart must not revive it.
        with ScenarioService(max_runs=1, state_dir=image) as service:
            assert service.get(run_id).status == INTERRUPTED

    def test_submitted_but_never_started_run_is_requeued(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        journal = RunJournal(state / "journal.jsonl")
        journal.append(
            {
                "type": "submitted",
                "run_id": "run-000007",
                "spec": _spec().to_dict(),
            }
        )
        journal.close()
        with ScenarioService(max_runs=1, state_dir=state) as service:
            assert service.metrics()["durability"]["recovered"]["requeued"] == 1
            record = service.wait("run-000007", timeout=_WAIT)
            assert record.status == COMPLETED, record.error
            # The run-id sequence continues past recovered ids.
            fresh = service.submit_spec(_spec())
            assert fresh.run_id == "run-000008"
            service.wait(fresh.run_id, timeout=_WAIT)

    def test_every_accepted_run_is_accounted_for_after_crash(self, tmp_path):
        state = tmp_path / "state"
        with ScenarioService(
            max_runs=1, state_dir=state, checkpoint_interval=2
        ) as service:
            # One long run plus two short satellites: the image catches
            # a mix of in-flight and still-queued accepted work.
            ids = [service.submit_spec(_service_spec()).run_id]
            ids += [service.submit_spec(_spec(seed=s)).run_id for s in (1, 2)]
            journal = state / "journal.jsonl"
            deadline = time.monotonic() + _WAIT
            while time.monotonic() < deadline:
                types = [e.get("type") for e in read_jsonl_tolerant(journal)]
                if "started" in types:
                    break
                time.sleep(0.002)
            image = tmp_path / "crash-image"
            shutil.copytree(state, image)
            for run_id in ids:
                service.wait(run_id, timeout=_WAIT)
        accepted = {
            e["run_id"]
            for e in read_jsonl_tolerant(image / "journal.jsonl")
            if e.get("type") == "submitted"
        }
        assert accepted == set(ids)
        with ScenarioService(max_runs=1, state_dir=image) as service:
            for run_id in ids:
                record = service.wait(run_id, timeout=_WAIT)
                assert record.status in (COMPLETED, INTERRUPTED), (
                    f"{run_id} must never be lost or hung: {record.status}"
                )

    def test_clean_restart_compacts_journal_and_serves_results(self, tmp_path):
        state = tmp_path / "state"
        with ScenarioService(max_runs=1, state_dir=state) as service:
            run_id = service.submit_spec(_spec()).run_id
            record = service.wait(run_id, timeout=_WAIT)
            assert record.status == COMPLETED
            baseline = record.result["metrics"]
        with ScenarioService(max_runs=1, state_dir=state) as service:
            assert service.metrics()["durability"]["journal_compactions"] == 1
            served = service.get(run_id)
            assert served.status == COMPLETED
            _rows_equal(served.result["metrics"], baseline)
            # The compacted journal no longer carries the finished run.
            types = [
                e.get("type") for e in read_jsonl_tolerant(state / "journal.jsonl")
            ]
            assert "finished" not in types

    def test_drain_interrupts_inflight_run_resumably(self, tmp_path):
        state = tmp_path / "state"
        service = ScenarioService(
            max_runs=1, state_dir=state, checkpoint_interval=1
        )
        record = service.submit_spec(_service_spec())
        deadline = time.monotonic() + _WAIT
        while time.monotonic() < deadline and record.status == "queued":
            time.sleep(0.002)
        summary = service.drain(grace=0.05)
        assert summary["finished"] + summary["interrupted"] == 1
        final = service.get(record.run_id)
        assert final.status in (COMPLETED, INTERRUPTED)
        types = [e.get("type") for e in read_jsonl_tolerant(state / "journal.jsonl")]
        assert types[-1] == "clean_shutdown"
        # New submissions are refused with the structured draining error.
        with pytest.raises(ProtocolError) as refusal:
            service.submit_spec(_spec())
        assert refusal.value.status == 503
        # Drain-interrupted runs stay terminal on restart (the operator
        # chose to stop them; only crash orphans are auto-resumed).
        with ScenarioService(max_runs=1, state_dir=state) as restarted:
            assert restarted.get(record.run_id).status == final.status


# ----------------------------------------------------------------------
# subprocess crash / drain (the served process itself dies)
# ----------------------------------------------------------------------
def _start_serve(state: Path, *extra: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ, PYTHONPATH=_REPO_SRC, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--max-runs",
            "1",
            "--state-dir",
            str(state),
            "--checkpoint-interval",
            "2",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    assert "listening on" in line, f"unexpected serve banner: {line!r}"
    base = line.strip().rsplit(" ", 1)[-1]
    return proc, base


def _post(base: str, path: str, body: dict | None = None) -> tuple[int, dict]:
    data = json.dumps(body).encode() if body is not None else b""
    request = urllib.request.Request(base + path, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="POSIX only")
class TestServedProcessCrash:
    def test_sigkilled_service_recovers_on_restart(self, tmp_path):
        state = tmp_path / "state"
        proc, base = _start_serve(state)
        try:
            status, run = _post(base, "/runs", _service_spec().to_dict())
            assert status == 202, run
            run_id = run["run_id"]
            journal = state / "journal.jsonl"
            deadline = time.monotonic() + _WAIT
            while time.monotonic() < deadline:
                types = [e.get("type") for e in read_jsonl_tolerant(journal)]
                if "checkpointed" in types:
                    break
                time.sleep(0.005)
            else:  # pragma: no cover - diagnostic
                pytest.fail("served run never checkpointed")
            proc.kill()  # SIGKILL: no handlers, no flushes, no goodbyes
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)
        # Restart on the same state dir: the accepted run is either
        # resumed to completion or reported interrupted — never lost.
        with ScenarioService(max_runs=1, state_dir=state) as service:
            recovered = service.metrics()["durability"]["recovered"]
            assert recovered["resumed"] + recovered["interrupted"] == 1
            record = service.wait(run_id, timeout=_WAIT)
            assert record.status in (COMPLETED, INTERRUPTED)
            if record.status == COMPLETED:
                assert record.resumed_from is not None

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        state = tmp_path / "state"
        proc, base = _start_serve(state, "--drain-grace", "30")
        try:
            status, run = _post(
                base, "/runs", {"spec": _spec().to_dict(), "wait": True}
            )
            assert status == 200 and run["status"] == "completed", run
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)
        types = [e.get("type") for e in read_jsonl_tolerant(state / "journal.jsonl")]
        assert types[-1] == "clean_shutdown"


# ----------------------------------------------------------------------
# cross-process oracle-cache locking
# ----------------------------------------------------------------------
_CH_CHILD = """
import json, sys
from repro.network.generators import grid_city
from repro.network.oracle import create_oracle
from repro.resilience import FaultInjector, install_injector

# Stretch the contraction so concurrent starters genuinely overlap.
install_injector(FaultInjector({"oracle.ch.build": {"latency_seconds": 0.5}}))
network = grid_city(rows=6, cols=6, edge_travel_time=60.0, jitter=0.0, seed=0)
oracle = create_oracle("ch", network.graph, cache_dir=sys.argv[1])
print(json.dumps({
    "hit": bool(getattr(oracle, "cache_hit", False)),
    "distance": oracle.travel_time(0, 35),
}))
"""


class TestCacheLocking:
    def test_two_processes_build_the_hierarchy_exactly_once(self, tmp_path):
        cache = tmp_path / "oracle-cache"
        cache.mkdir()
        env = dict(os.environ, PYTHONPATH=_REPO_SRC)
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _CH_CHILD, str(cache)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = []
        for child in children:
            out, err = child.communicate(timeout=120)
            assert child.returncode == 0, err
            outputs.append(json.loads(out.strip().splitlines()[-1]))
        # Exactly one process contracted; the other warm-loaded the
        # winner's save (under the lock) — and both answer identically.
        assert sorted(o["hit"] for o in outputs) == [False, True]
        assert outputs[0]["distance"] == outputs[1]["distance"]
        cache_files = list(cache.glob("ch-*.json"))
        assert len(cache_files) == 1
        mtime = cache_files[0].stat().st_mtime_ns
        # A third, warm process: pure lock-free read path, no rewrite.
        third = subprocess.run(
            [sys.executable, "-c", _CH_CHILD, str(cache)],
            capture_output=True,
            env=env,
            text=True,
            timeout=120,
        )
        assert third.returncode == 0, third.stderr
        assert json.loads(third.stdout.strip().splitlines()[-1])["hit"] is True
        assert cache_files[0].stat().st_mtime_ns == mtime

    def test_lock_excludes_a_second_handle_until_released(self, tmp_path):
        path = tmp_path / "build.lock"
        first = InterProcessLock(path)
        first.acquire()
        try:
            second = InterProcessLock(path, timeout=0.2)
            with pytest.raises(LockTimeout):
                second.acquire()
        finally:
            first.release()
        with InterProcessLock(path, timeout=1.0) as lock:
            assert lock.held

    def test_stale_lockfile_is_taken_over(self, tmp_path):
        path = tmp_path / "build.lock"
        path.write_text("999999@ghost\n")
        stale = time.time() - 3600
        os.utime(path, (stale, stale))
        lock = InterProcessLock(
            path, strategy="lockfile", timeout=5.0, stale_after=0.5
        )
        lock.acquire()
        try:
            assert lock.took_over_stale
            assert lock.held
        finally:
            lock.release()

    def test_fresh_lockfile_is_respected_not_stolen(self, tmp_path):
        path = tmp_path / "build.lock"
        path.write_text(f"{os.getpid()}@here\n")  # just written: heartbeat fresh
        lock = InterProcessLock(
            path, strategy="lockfile", timeout=0.3, stale_after=60.0
        )
        with pytest.raises(LockTimeout):
            lock.acquire()


# ----------------------------------------------------------------------
# JSONL sink durability (satellite)
# ----------------------------------------------------------------------
class TestJsonlSinkDurability:
    def test_events_are_durable_before_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, context={"run_id": "run-1"})
        sink.on_periodic_check(10.0)
        sink.on_periodic_check(20.0)
        # Read back while the sink still holds the handle: every event
        # must already be flushed (and fsynced) to the file.
        events = read_trace(path)
        assert [e["now"] for e in events] == [10.0, 20.0]
        assert all(e["run_id"] == "run-1" for e in events)
        sink.close()

    def test_read_trace_tolerates_a_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.on_periodic_check(10.0)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "periodic_check", "now"')  # torn mid-write
        events = read_trace(path)
        assert len(events) == 1
        assert events[0]["now"] == 10.0


# ----------------------------------------------------------------------
# CLI checkpoint/resume flags
# ----------------------------------------------------------------------
class TestCliDurability:
    def test_run_checkpoint_dir_then_resume(self, tmp_path, capsys):
        from repro.cli import main

        spec = _spec()
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        ckpt_dir = tmp_path / "ckpts"
        code = main(
            [
                "run",
                "--spec",
                str(spec_file),
                "--checkpoint-dir",
                str(ckpt_dir),
                "--checkpoint-interval",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "checkpoint(s) written" in output
        ckpt = ckpt_dir / f"{spec.algorithm}.ckpt"
        assert ckpt.exists()
        # The completed run's checkpoint resumes to the same final
        # metrics (a completed cursor simply replays the drain tail).
        code = main(
            ["run", "--spec", str(spec_file), "--resume", str(ckpt)]
        )
        assert code == 0
        assert f"resumed from {ckpt}" in capsys.readouterr().out

    def test_run_refuses_multi_algorithm_checkpointing(self, tmp_path):
        from repro.cli import main

        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(json.dumps(_spec().to_dict()))
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--spec",
                    str(spec_file),
                    "--checkpoint-dir",
                    str(tmp_path / "ckpts"),
                    "--algorithms",
                    "GDP",
                    "WATTER-online",
                ]
            )
