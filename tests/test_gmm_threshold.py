"""Unit tests for the GMM fit and the threshold optimisation (Section V)."""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY, np
from repro.core.gmm import GaussianMixture
from repro.core.threshold import ThresholdOptimizer, fit_extra_time_distribution
from repro.exceptions import LearningError
from tests.conftest import make_order

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="this module tests numpy-only subsystems"
)


def _bimodal_samples(seed=0, size=600):
    rng = np.random.default_rng(seed)
    low = rng.normal(60.0, 10.0, size // 2)
    high = rng.normal(300.0, 40.0, size // 2)
    return np.clip(np.concatenate([low, high]), 0.0, None)


class TestGaussianMixture:
    def test_requires_at_least_one_component(self):
        with pytest.raises(LearningError):
            GaussianMixture(n_components=0)

    def test_requires_enough_samples(self):
        with pytest.raises(LearningError):
            GaussianMixture(n_components=3).fit([1.0, 2.0])

    def test_unfitted_mixture_rejects_queries(self):
        with pytest.raises(LearningError):
            GaussianMixture().cdf(1.0)

    def test_fit_recovers_bimodal_means(self):
        mixture = GaussianMixture(n_components=2, seed=1).fit(_bimodal_samples())
        means = sorted(component.mean for component in mixture.components)
        assert means[0] == pytest.approx(60.0, abs=15.0)
        assert means[1] == pytest.approx(300.0, abs=30.0)

    def test_weights_sum_to_one(self):
        mixture = GaussianMixture(n_components=3, seed=2).fit(_bimodal_samples())
        assert sum(c.weight for c in mixture.components) == pytest.approx(1.0)

    def test_log_likelihood_is_non_decreasing(self):
        mixture = GaussianMixture(n_components=2, seed=3).fit(_bimodal_samples())
        history = mixture.log_likelihood_history
        assert len(history) >= 2
        assert all(b >= a - 1e-6 for a, b in zip(history, history[1:]))

    def test_cdf_monotone_and_bounded(self):
        mixture = GaussianMixture(n_components=2, seed=4).fit(_bimodal_samples())
        xs = np.linspace(-100.0, 600.0, 50)
        cdf = mixture.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf.min() >= 0.0
        assert cdf.max() <= 1.0

    def test_cdf_limits(self):
        mixture = GaussianMixture(n_components=2, seed=5).fit(_bimodal_samples())
        assert mixture.cdf(-1e6) == pytest.approx(0.0, abs=1e-9)
        assert mixture.cdf(1e6) == pytest.approx(1.0, abs=1e-9)

    def test_pdf_non_negative(self):
        mixture = GaussianMixture(n_components=2, seed=6).fit(_bimodal_samples())
        xs = np.linspace(0.0, 500.0, 40)
        assert np.all(mixture.pdf(xs) >= 0.0)

    def test_mean_matches_sample_mean(self):
        samples = _bimodal_samples(seed=7)
        mixture = GaussianMixture(n_components=2, seed=7).fit(samples)
        assert mixture.mean() == pytest.approx(float(samples.mean()), rel=0.1)

    def test_sampling_roundtrip(self):
        mixture = GaussianMixture(n_components=2, seed=8).fit(_bimodal_samples())
        draws = mixture.sample(2000, seed=8)
        assert draws.shape == (2000,)
        assert float(draws.mean()) == pytest.approx(mixture.mean(), rel=0.15)


class TestFitExtraTimeDistribution:
    def test_rejects_empty_history(self):
        with pytest.raises(LearningError):
            fit_extra_time_distribution([])

    def test_clips_negative_samples(self):
        mixture = fit_extra_time_distribution([-5.0, -1.0, 3.0, 10.0, 20.0] * 10)
        assert mixture.cdf(0.0) >= 0.0

    def test_reduces_components_for_small_samples(self):
        mixture = fit_extra_time_distribution([5.0, 6.0, 7.0, 8.0, 9.0])
        assert len(mixture.components) >= 1


class TestThresholdOptimizer:
    @pytest.fixture
    def optimizer(self):
        mixture = GaussianMixture(n_components=2, seed=9).fit(_bimodal_samples())
        return ThresholdOptimizer(mixture)

    def test_threshold_stays_in_bounds(self, optimizer):
        for penalty in (10.0, 100.0, 500.0, 2000.0):
            theta = optimizer.optimal_threshold(penalty)
            assert 0.0 <= theta <= penalty

    def test_zero_penalty_gives_zero_threshold(self, optimizer):
        assert optimizer.optimal_threshold(0.0) == 0.0
        assert optimizer.optimal_threshold(-5.0) == 0.0

    def test_threshold_is_near_the_grid_optimum(self, optimizer):
        penalty = 800.0
        theta = optimizer.optimal_threshold(penalty)
        grid = np.linspace(0.0, penalty, 400)
        best_grid = max(grid, key=lambda t: optimizer.objective(t, penalty))
        # the optimiser must reach at least 99.5% of the fine-grid optimum
        assert optimizer.objective(theta, penalty) >= 0.995 * optimizer.objective(
            best_grid, penalty
        )

    def test_expected_loss_identity(self, optimizer):
        penalty = 500.0
        theta = 120.0
        assert optimizer.expected_loss(theta, penalty) == pytest.approx(
            penalty - optimizer.objective(theta, penalty)
        )

    def test_larger_penalty_never_decreases_threshold_value(self, optimizer):
        small = optimizer.objective(
            optimizer.optimal_threshold(200.0), 200.0
        )
        large = optimizer.objective(
            optimizer.optimal_threshold(800.0), 800.0
        )
        assert large >= small

    def test_optimal_thresholds_for_orders(self, optimizer, small_network):
        orders = [make_order(small_network, 0, 5), make_order(small_network, 1, 20)]
        thresholds = optimizer.optimal_thresholds(orders)
        assert set(thresholds) == {order.order_id for order in orders}
        for order in orders:
            assert 0.0 <= thresholds[order.order_id] <= order.penalty

    def test_provider_protocol_uses_cache(self, optimizer, small_network):
        order = make_order(small_network, 0, 5)
        first = optimizer.threshold(order, 0.0)
        second = optimizer.threshold(order, 100.0)
        assert first == second
