"""Unit tests for configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import ExtraTimeWeights, LearningConfig, SimulationConfig
from repro.exceptions import ConfigurationError


class TestExtraTimeWeights:
    def test_defaults_are_paper_values(self):
        weights = ExtraTimeWeights()
        assert weights.alpha == 1.0
        assert weights.beta == 1.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigurationError):
            ExtraTimeWeights(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            ExtraTimeWeights(beta=-0.5)


class TestSimulationConfig:
    def test_default_is_valid(self):
        SimulationConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_orders", 0),
            ("num_workers", 0),
            ("deadline_scale", 1.0),
            ("watch_window_scale", -0.1),
            ("max_capacity", 1),
            ("check_period", 0.0),
            ("time_slot", 0.0),
            ("grid_size", 0),
            ("horizon", 0.0),
            ("max_group_size", 0),
        ],
    )
    def test_rejects_invalid_field(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: value})

    def test_with_overrides_returns_new_config(self):
        config = SimulationConfig()
        other = config.with_overrides(num_orders=123)
        assert other.num_orders == 123
        assert config.num_orders != 123

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_overrides(number_of_orders=5)

    def test_with_overrides_validates_new_values(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_overrides(deadline_scale=0.5)

    def test_as_dict_flattens_weights(self):
        config = SimulationConfig(weights=ExtraTimeWeights(alpha=0.5, beta=2.0))
        data = config.as_dict()
        assert data["alpha"] == 0.5
        assert data["beta"] == 2.0
        assert "weights" not in data


class TestLearningConfig:
    def test_default_is_valid(self):
        LearningConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("hidden_sizes", ()),
            ("hidden_sizes", (0,)),
            ("learning_rate", 0.0),
            ("discount", 1.5),
            ("batch_size", 0),
            ("replay_capacity", 0),
            ("target_sync_period", 0),
            ("epochs", 0),
            ("loss_weight", 1.5),
        ],
    )
    def test_rejects_invalid_field(self, field, value):
        with pytest.raises(ConfigurationError):
            LearningConfig(**{field: value})
