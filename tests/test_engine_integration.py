"""End-to-end simulation tests: every dispatcher over a small generated workload."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.datasets.workloads import build_workload
from repro.experiments.runner import (
    ALGORITHMS,
    build_expect_provider,
    make_dispatcher,
    run_on_workload,
)
from repro.exceptions import ConfigurationError
from repro.network.oracle import HAVE_NUMPY
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(
        num_orders=40,
        num_workers=8,
        horizon=1200.0,
        deadline_scale=1.6,
        watch_window_scale=0.8,
        check_period=10.0,
        grid_size=5,
        seed=21,
    )


@pytest.fixture(scope="module")
def small_workload(small_config):
    return build_workload("CDC", small_config)


@pytest.fixture(scope="module")
def expect_provider(small_config):
    # WATTER-expect's GMM bootstrap needs numpy; the other algorithms
    # under this fixture's module scope must still run without it.
    if not HAVE_NUMPY:
        return None
    return build_expect_provider("CDC", small_config, training_fraction=0.5)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_every_algorithm_accounts_for_every_order(
    algorithm, small_workload, small_config, expect_provider
):
    if algorithm == "WATTER-expect" and expect_provider is None:
        pytest.skip("WATTER-expect needs numpy (GMM threshold fitting)")
    provider = expect_provider if algorithm == "WATTER-expect" else None
    result = run_on_workload(algorithm, small_workload, small_config, provider)
    metrics = result.metrics
    # conservation: every order is either served or rejected, exactly once
    assert metrics.served_orders + metrics.rejected_orders == len(small_workload.orders)
    assert result.collector.order_ids() == {
        order.order_id for order in small_workload.orders
    }
    assert 0.0 <= metrics.service_rate <= 1.0
    assert metrics.total_extra_time >= 0.0
    assert metrics.unified_cost >= 0.0
    assert metrics.running_time_total >= 0.0


@pytest.mark.parametrize("algorithm", ("WATTER-online", "GDP", "NonSharing"))
def test_served_orders_have_sane_accounting(
    algorithm, small_workload, small_config
):
    result = run_on_workload(algorithm, small_workload, small_config)
    for outcome in result.collector.outcomes:
        if not outcome.served:
            assert outcome.penalty >= 0.0
            continue
        assert outcome.response_time >= 0.0
        assert outcome.detour_time >= 0.0
        assert outcome.extra_time == pytest.approx(
            outcome.response_time + outcome.detour_time
        )
        assert outcome.group_size >= 1


def test_sharing_algorithms_form_groups(small_workload, small_config):
    result = run_on_workload("WATTER-timeout", small_workload, small_config)
    assert result.metrics.average_group_size > 1.0


def test_sharing_reduces_worker_travel_per_served_order(small_workload, small_config):
    pooled = run_on_workload("WATTER-timeout", small_workload, small_config)
    solo = run_on_workload("NonSharing", small_workload, small_config)
    if pooled.metrics.served_orders and solo.metrics.served_orders:
        pooled_cost = (
            pooled.metrics.worker_travel_time / pooled.metrics.served_orders
        )
        solo_cost = solo.metrics.worker_travel_time / solo.metrics.served_orders
        assert pooled_cost <= solo_cost * 1.1


def test_simulator_reports_dataset_and_algorithm(small_workload, small_config):
    dispatcher = make_dispatcher("WATTER-online", small_workload, small_config)
    result = Simulator(small_workload, dispatcher, small_config).run()
    assert result.metrics.dataset == "CDC"
    assert result.metrics.algorithm == "WATTER-online"
    assert result.config is small_config


def test_make_dispatcher_rejects_unknown_algorithm(small_workload, small_config):
    with pytest.raises(ConfigurationError):
        make_dispatcher("definitely-not-an-algorithm", small_workload, small_config)


def test_expect_requires_provider(small_workload, small_config):
    with pytest.raises(ConfigurationError):
        make_dispatcher("WATTER-expect", small_workload, small_config)


def test_runs_are_independent(small_workload, small_config):
    """Running the same algorithm twice over one workload gives identical metrics."""
    first = run_on_workload("WATTER-online", small_workload, small_config)
    second = run_on_workload("WATTER-online", small_workload, small_config)
    assert first.metrics.served_orders == second.metrics.served_orders
    assert first.metrics.total_extra_time == pytest.approx(
        second.metrics.total_extra_time
    )
    assert first.metrics.unified_cost == pytest.approx(second.metrics.unified_cost)
