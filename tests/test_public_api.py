"""Sanity tests for the package-level public API and exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_importable(self):
        assert callable(repro.run_comparison)
        assert callable(repro.build_workload)
        assert callable(repro.default_config)
        assert callable(repro.format_comparison_table)

    def test_default_config_round_trip(self):
        config = repro.default_config("NYC")
        assert config.num_orders > 0
        assert config.deadline_scale == pytest.approx(1.6)


class TestExceptionHierarchy:
    def test_all_library_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not exceptions.ReproError:
                    assert issubclass(obj, exceptions.ReproError) or obj in (
                        Exception,
                    ), name

    def test_specific_errors_carry_context(self):
        error = exceptions.UnknownNodeError(42)
        assert error.node_id == 42
        assert "42" in str(error)
        unreachable = exceptions.UnreachableError(1, 2)
        assert (unreachable.source, unreachable.target) == (1, 2)
        duplicate = exceptions.DuplicateOrderError(7)
        assert duplicate.order_id == 7
        missing = exceptions.MissingOrderError(9)
        assert missing.order_id == 9

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.InfeasibleGroupError("no route")
        with pytest.raises(exceptions.ReproError):
            raise exceptions.DatasetError("bad data")
