"""Unit tests for the order pooling management algorithm (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.pool import OrderPool
from repro.core.strategies import OnlineStrategy, TimeoutStrategy
from repro.exceptions import MissingOrderError
from tests.conftest import make_order


@pytest.fixture
def online_pool(planner):
    return OrderPool(planner, OnlineStrategy(), capacity=4, max_group_size=3)


@pytest.fixture
def timeout_pool(planner):
    return OrderPool(
        planner, TimeoutStrategy(check_period=10.0), capacity=4, max_group_size=3
    )


class TestInsertAndBookkeeping:
    def test_insert_tracks_statistics(self, online_pool, small_network):
        order = make_order(small_network, 0, 5)
        online_pool.insert(order, 0.0)
        assert len(online_pool) == 1
        assert order.order_id in online_pool
        assert online_pool.statistics.inserted == 1

    def test_remove_missing_order_raises(self, online_pool):
        with pytest.raises(MissingOrderError):
            online_pool.remove(12345, 0.0)

    def test_pending_orders_iteration(self, online_pool, small_network):
        orders = [make_order(small_network, 0, 5), make_order(small_network, 1, 6)]
        for order in orders:
            online_pool.insert(order, 0.0)
        pending = {order.order_id for order in online_pool.pending_orders()}
        assert pending == {order.order_id for order in orders}


class TestOnlineStrategyChecks:
    def test_unpaired_order_dispatched_immediately(self, online_pool, small_network):
        order = make_order(small_network, 0, 5)
        online_pool.insert(order, 0.0)
        decisions = online_pool.check(10.0)
        dispatched = [d for d in decisions if d.dispatch]
        assert len(dispatched) == 1
        assert dispatched[0].group is not None
        assert len(dispatched[0].group) == 1
        assert len(online_pool) == 0

    def test_paired_orders_dispatched_together(self, online_pool, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        online_pool.insert(first, 0.0)
        online_pool.insert(second, 0.0)
        decisions = online_pool.check(5.0)
        dispatched = [d for d in decisions if d.dispatch]
        assert len(dispatched) == 1
        assert dispatched[0].group.order_ids() == {first.order_id, second.order_id}
        assert online_pool.statistics.dispatched == 2

    def test_can_assign_false_holds_orders(self, online_pool, small_network):
        order = make_order(small_network, 0, 5)
        online_pool.insert(order, 0.0)
        decisions = online_pool.check(10.0, can_assign=lambda group, now: False)
        assert all(d.hold for d in decisions)
        assert len(online_pool) == 1

    def test_every_pooled_order_gets_exactly_one_decision(
        self, online_pool, small_network
    ):
        orders = [
            make_order(small_network, 0, 24),
            make_order(small_network, 6, 30),
            make_order(small_network, 30, 20),
        ]
        for order in orders:
            online_pool.insert(order, 0.0)
        decisions = online_pool.check(5.0)
        decided = [d.order_id for d in decisions]
        dispatched_members = set()
        for decision in decisions:
            if decision.dispatch:
                dispatched_members.update(decision.group.order_ids())
        # every order is either explicitly decided or a member of a dispatched group
        for order in orders:
            assert order.order_id in decided or order.order_id in dispatched_members


class TestTimeoutStrategyChecks:
    def test_orders_wait_before_timeout(self, timeout_pool, small_network):
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        timeout_pool.insert(first, 0.0)
        timeout_pool.insert(second, 0.0)
        decisions = timeout_pool.check(10.0)
        assert all(d.hold for d in decisions)
        assert len(timeout_pool) == 2

    def test_group_dispatched_at_watch_window(self, timeout_pool, small_network):
        # A short watch window (eta = 0.3) elapses well before the group's
        # expiration, so the timeout strategy dispatches exactly when the
        # earliest member times out.
        first = make_order(small_network, 0, 24, watch_scale=0.3)
        second = make_order(small_network, 6, 30, watch_scale=0.3)
        timeout_pool.insert(first, 0.0)
        timeout_pool.insert(second, 0.0)
        at_timeout = min(first.timeout_time, second.timeout_time) + 1.0
        decisions = timeout_pool.check(at_timeout)
        assert any(d.dispatch for d in decisions)

    def test_expired_unpaired_order_rejected(self, timeout_pool, small_network):
        order = make_order(small_network, 0, 5)
        timeout_pool.insert(order, 0.0)
        # Deny workers so the near-expiry solo dispatch cannot happen, then
        # let the deadline pass: the order must be rejected.
        decisions = timeout_pool.check(
            order.deadline + 1.0, can_assign=lambda group, now: False
        )
        rejected = [d for d in decisions if d.reject]
        assert len(rejected) == 1
        assert timeout_pool.statistics.rejected == 1
        assert len(timeout_pool) == 0

    def test_unpaired_order_dispatched_alone_near_expiry(
        self, timeout_pool, small_network
    ):
        order = make_order(small_network, 0, 5)
        timeout_pool.insert(order, 0.0)
        shortly_before_expiry = order.release_time + 0.55 * order.max_response_time
        decisions = timeout_pool.check(shortly_before_expiry)
        dispatched = [d for d in decisions if d.dispatch]
        held = [d for d in decisions if d.hold]
        # Either it is already close enough to be sent alone or still held,
        # but it must never be rejected while a feasible solo ride exists.
        assert not any(d.reject for d in decisions)
        assert dispatched or held


class TestFlush:
    def test_flush_rejects_everything(self, timeout_pool, small_network):
        orders = [make_order(small_network, 0, 5), make_order(small_network, 1, 6)]
        for order in orders:
            timeout_pool.insert(order, 0.0)
        decisions = timeout_pool.flush(10_000.0)
        assert len(decisions) == 2
        assert all(d.reject for d in decisions)
        assert len(timeout_pool) == 0

    def test_conservation_of_orders(self, online_pool, small_network):
        """Every inserted order is eventually dispatched or rejected, never lost."""
        orders = [
            make_order(small_network, 0, 24, release=0.0),
            make_order(small_network, 6, 30, release=0.0),
            make_order(small_network, 35, 23, release=0.0),
        ]
        for order in orders:
            online_pool.insert(order, order.release_time)
        resolved = set()
        for now in (10.0, 400.0, 2000.0):
            for decision in online_pool.check(now):
                if decision.dispatch:
                    resolved.update(decision.group.order_ids())
                elif decision.reject:
                    resolved.add(decision.order_id)
        for decision in online_pool.flush(10_000.0):
            resolved.add(decision.order_id)
        assert resolved == {order.order_id for order in orders}
        stats = online_pool.statistics
        assert stats.dispatched + stats.rejected == len(orders)
