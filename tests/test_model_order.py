"""Unit tests for the Order entity and outcome records."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.order import Order, OrderOutcome, OrderStatus


def _order(**overrides):
    defaults = dict(
        pickup=0,
        dropoff=5,
        release_time=100.0,
        shortest_time=300.0,
        deadline=100.0 + 1.6 * 300.0,
        wait_limit=0.8 * 300.0,
    )
    defaults.update(overrides)
    return Order(**defaults)


class TestOrderValidation:
    def test_requires_positive_riders(self):
        with pytest.raises(ConfigurationError):
            _order(riders=0)

    def test_requires_non_negative_shortest_time(self):
        with pytest.raises(ConfigurationError):
            _order(shortest_time=-1.0)

    def test_deadline_must_follow_release(self):
        with pytest.raises(ConfigurationError):
            _order(deadline=50.0)

    def test_wait_limit_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            _order(wait_limit=-10.0)

    def test_default_status_is_pending(self):
        assert _order().status is OrderStatus.PENDING

    def test_ids_are_unique(self):
        assert _order().order_id != _order().order_id


class TestOrderDerivedQuantities:
    def test_max_response_time(self):
        order = _order()
        # tau - t - cost = 1.6*300 - 300 = 180
        assert order.max_response_time == pytest.approx(180.0)

    def test_penalty_equals_max_response(self):
        order = _order()
        assert order.penalty == order.max_response_time

    def test_max_response_clamped_at_zero(self):
        order = _order(deadline=100.0 + 200.0)  # tighter than the direct trip
        assert order.max_response_time == 0.0

    def test_timeout_time(self):
        order = _order()
        assert order.timeout_time == pytest.approx(100.0 + 240.0)

    def test_slack_decreases_over_time(self):
        order = _order()
        assert order.slack_at(100.0) == pytest.approx(180.0)
        assert order.slack_at(200.0) == pytest.approx(80.0)

    def test_is_expired(self):
        order = _order()
        assert not order.is_expired(100.0)
        assert not order.is_expired(279.0)
        assert order.is_expired(281.0)

    def test_equality_and_hash_by_id(self):
        order = _order()
        clone = _order(order_id=order.order_id)
        assert order == clone
        assert hash(order) == hash(clone)
        assert order != "not-an-order"


class TestOrderOutcome:
    def test_served_contribution_uses_extra_time(self):
        outcome = OrderOutcome(
            order_id=1, served=True, extra_time=42.0, penalty=100.0
        )
        assert outcome.objective_contribution() == 42.0

    def test_rejected_contribution_uses_penalty(self):
        outcome = OrderOutcome(order_id=1, served=False, penalty=100.0)
        assert outcome.objective_contribution() == 100.0
