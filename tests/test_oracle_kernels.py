"""dict-vs-csr kernel equivalence and shared-memory dispatch shards.

The csr kernel's contract is that it is a pure representation change:
every query path returns the same floats the dict kernel returns (the
level sweep relaxes identical sums and ``min`` is order-independent),
whole simulations produce identical metrics, and process-mode dispatch
shards attach to one shared-memory copy of the sweep arrays instead of
duplicating them per fork.  These tests pin all three properties, plus
the pure-Python fallback that keeps ``kernel="csr"`` requests working
when numpy is absent (the no-numpy CI leg runs this module with every
``needs_numpy`` test skipped).
"""

from __future__ import annotations

import glob
import pickle
import random
import sys

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import OracleSpec, ScenarioSpec, Session
from repro.network.generators import grid_city
from repro.network.oracle import (
    HAVE_NUMPY,
    KERNELS,
    CHOracle,
    MatrixOracle,
    resolve_kernel,
)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _random_digraph(num_nodes: int, seed: int, strongly: bool) -> nx.DiGraph:
    """Random directed graph with asymmetric weights (see test_oracle)."""
    rng = random.Random(seed)
    graph = nx.DiGraph()
    for node in range(num_nodes):
        graph.add_node(node, x=rng.uniform(0.0, 10.0), y=rng.uniform(0.0, 10.0))
    if strongly:
        cycle = list(range(num_nodes))
        rng.shuffle(cycle)
        for u, v in zip(cycle, cycle[1:] + cycle[:1]):
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    else:
        for node in range(1, num_nodes):
            parent = rng.randrange(node)
            u, v = (parent, node) if rng.random() < 0.5 else (node, parent)
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    for _ in range(3 * num_nodes):
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, travel_time=rng.uniform(1.0, 10.0))
    return graph


# ---------------------------------------------------------------------------
# kernel resolution / fallback
# ---------------------------------------------------------------------------


def test_resolve_kernel_tracks_numpy_availability():
    """``auto`` and ``csr`` degrade to ``dict`` exactly when numpy is absent."""
    expected = "csr" if HAVE_NUMPY else "dict"
    assert resolve_kernel("dict") == "dict"
    assert resolve_kernel("auto") == expected
    assert resolve_kernel("csr") == expected
    with pytest.raises(ValueError, match="unknown oracle kernel"):
        resolve_kernel("simd")
    assert set(KERNELS) == {"auto", "dict", "csr"}


def test_dict_kernel_always_works():
    """The pure-Python fallback answers queries with no numpy in sight."""
    graph = _random_digraph(12, seed=5, strongly=True)
    oracle = CHOracle(graph, kernel="dict")
    assert oracle.kernel == "dict"
    assert oracle.requested_kernel == "dict"
    arrivals = oracle.travel_times_to(3)
    assert arrivals[3] == 0.0
    block = oracle.travel_times_many(sorted(graph.nodes), [3])
    for (source, target), value in block.items():
        assert value == pytest.approx(arrivals[source], rel=1e-9)
        assert target == 3
    assert oracle.stats().as_dict()["kernel"] == "dict"


# ---------------------------------------------------------------------------
# dict vs csr equality (property-tested)
# ---------------------------------------------------------------------------


@needs_numpy
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), strongly=st.booleans())
def test_kernels_agree_on_random_digraphs(seed, strongly):
    """Identical floats from every query path on arbitrary digraphs.

    Exact ``==`` on purpose, not approx: both kernels must relax the
    same ``tail + weight`` sums into the same minima, so even the last
    ulp agrees.  Weakly connected graphs keep unreachable pairs (inf
    handling) in play; the wide single-target batch exercises the
    reverse-PHAST row path, the multi-target batch the bucket scans.
    """
    graph = _random_digraph(14, seed, strongly)
    dict_oracle = CHOracle(graph, kernel="dict")
    csr_oracle = CHOracle(graph, kernel="csr")
    assert dict_oracle.kernel == "dict"
    assert csr_oracle.kernel == "csr"
    nodes = sorted(graph.nodes)
    target = nodes[seed % len(nodes)]
    source = nodes[(seed // 7) % len(nodes)]
    assert dict(dict_oracle.travel_times_to(target)) == dict(
        csr_oracle.travel_times_to(target)
    )
    assert dict(dict_oracle.travel_times_from(source)) == dict(
        csr_oracle.travel_times_from(source)
    )
    # Wide single-target batch: >= the many-to-one cutoff sources, so
    # both kernels answer from the reverse-PHAST arrival representation.
    assert dict_oracle.travel_times_many(nodes, [target]) == (
        csr_oracle.travel_times_many(nodes, [target])
    )
    # Multi-target batch: the RPHAST bucket-scan path in both kernels.
    assert dict_oracle.travel_times_many(nodes[:5], nodes[:3]) == (
        csr_oracle.travel_times_many(nodes[:5], nodes[:3])
    )


@needs_numpy
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), strongly=st.booleans())
def test_reverse_sweep_primitive_representations_agree(seed, strongly):
    """The kernel seam: dense rows decode to exactly the dict sweep map."""
    from repro.network.oracle.csr import finite_entries

    graph = _random_digraph(12, seed, strongly)
    dict_oracle = CHOracle(graph, kernel="dict")
    csr_oracle = CHOracle(graph, kernel="csr")
    nodes = sorted(graph.nodes)
    target = nodes[seed % len(nodes)]
    seeds = dict_oracle.reverse_seed_map(target)
    # One deterministic contraction -> interchangeable seed maps.
    assert seeds == csr_oracle.reverse_seed_map(target)
    want = dict_oracle.reverse_sweep(seeds)
    row = csr_oracle.reverse_sweep(seeds)
    order = csr_oracle.node_order
    idxs, values = finite_entries(row)
    got = {
        order[idx]: value
        for idx, value in zip(idxs.tolist(), values.tolist())
    }
    assert got == want


@needs_numpy
def test_matrix_kernels_agree():
    """The matrix backend's vectorised row refresh equals the dict build."""
    graph = _random_digraph(16, seed=9, strongly=False)
    dict_oracle = MatrixOracle(graph, kernel="dict")
    csr_oracle = MatrixOracle(graph, kernel="csr")
    nodes = sorted(graph.nodes)
    for target in nodes[:4]:
        assert dict(dict_oracle.travel_times_to(target)) == dict(
            csr_oracle.travel_times_to(target)
        )
    assert dict_oracle.travel_times_many(nodes, nodes[:3]) == (
        csr_oracle.travel_times_many(nodes, nodes[:3])
    )


# ---------------------------------------------------------------------------
# whole-simulation equivalence
# ---------------------------------------------------------------------------


def _core_metrics(metrics) -> dict:
    data = {
        name: getattr(metrics, name) for name in metrics.__dataclass_fields__
    }
    data.pop("oracle_stats")
    data.pop("running_time_total")
    data.pop("running_time_per_order")
    return data


def _run(spec: ScenarioSpec):
    # A fresh Session per run: kernels build different oracles, and
    # sharing one session would hand the second run the first's oracle.
    return Session().run(spec)


def _kernel_spec(oracle: OracleSpec, **overrides) -> ScenarioSpec:
    base = dict(
        dataset="CDC",
        num_orders=40,
        num_workers=5,
        horizon=1500.0,
        seed=29,
        check_period=15.0,
        algorithm="WATTER-timeout",
        oracle=oracle,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@needs_numpy
def test_simulation_metrics_identical_across_kernels():
    """A csr-kernel run reproduces the dict-kernel run bit for bit.

    Driven through the typed front door on purpose: the nested
    ``OracleSpec(kernel=...)`` is the documented way to pick a kernel,
    so this test breaks if the spec plumbing ever stops reaching the
    oracle.
    """
    dict_run = _run(_kernel_spec(OracleSpec(backend="ch", kernel="dict")))
    csr_run = _run(_kernel_spec(OracleSpec(backend="ch", kernel="csr")))
    assert dict_run.metrics.served_orders > 0
    assert _core_metrics(csr_run.metrics) == _core_metrics(dict_run.metrics)
    assert dict_run.metrics.oracle_stats["kernel"] == "dict"
    assert csr_run.metrics.oracle_stats["kernel"] == "csr"


@needs_numpy
def test_serial_vs_shared_memory_sharded_metrics():
    """Process shards on shared arrays reproduce the serial metrics.

    The ch backend's documented last-ulp slack applies (prefetching can
    steer a pair down a different query path), so float metrics compare
    at 1e-9 relative while counts stay exact — the same contract the
    serial-vs-parallel suite holds.  The private-copy fallback
    (``oracle_shared_memory=False``) must land on the same metrics too.
    """
    csr = OracleSpec(backend="ch", kernel="csr")
    serial = _run(_kernel_spec(csr))
    shared = _run(
        _kernel_spec(csr, dispatch_workers=4, dispatch_mode="process")
    )
    private = _run(
        _kernel_spec(
            OracleSpec(backend="ch", kernel="csr", shared_memory=False),
            dispatch_workers=4,
            dispatch_mode="process",
        )
    )
    reference = _core_metrics(serial.metrics)
    for run, label in ((shared, "shared"), (private, "private")):
        got = _core_metrics(run.metrics)
        assert set(got) == set(reference)
        for name, want in reference.items():
            value = got[name]
            if isinstance(want, float):
                assert value == pytest.approx(want, rel=1e-9), (
                    f"{label} diverged at {name}: {value!r} != {want!r}"
                )
            else:
                assert value == want, f"{label} diverged at {name}"
    shared_stats = shared.metrics.oracle_stats
    private_stats = private.metrics.oracle_stats
    if shared_stats["dispatch_mode"] == "process":
        assert shared_stats["shared_memory_active"] == 1
    assert private_stats["shared_memory_active"] == 0


# ---------------------------------------------------------------------------
# shared-memory protocol
# ---------------------------------------------------------------------------


@needs_numpy
def test_share_memory_handle_is_small_and_idempotent():
    """The picklable handle's size does not grow with the oracle's."""
    big = CHOracle(grid_city(16, 16, seed=5, jitter=0.2).graph, kernel="csr")
    small = CHOracle(grid_city(4, 4, seed=5, jitter=0.2).graph, kernel="csr")
    try:
        big_handle = big.share_memory()
        small_handle = small.share_memory()
        assert big_handle is not None and small_handle is not None
        assert big_handle["kind"] == "ch-sweeps"
        # Idempotent: sharing twice reuses the same segments.
        assert big.share_memory() == big_handle
        big_size = len(pickle.dumps(big_handle))
        small_size = len(pickle.dumps(small_handle))
        # 16x the nodes, same handle size (segment names + dtypes +
        # shapes) to within the digits of the shape integers.
        assert abs(big_size - small_size) < 64
    finally:
        big.release_shared()
        small.release_shared()


@needs_numpy
def test_adopted_oracle_answers_from_shared_arrays():
    """An attached oracle serves identical answers off the shared copy."""
    graph = grid_city(8, 8, seed=13, jitter=0.25).graph
    owner = CHOracle(graph, kernel="csr")
    attacher = CHOracle(graph, kernel="csr")
    try:
        handle = owner.share_memory()
        attacher.adopt_shared(handle)
        nodes = sorted(graph.nodes)
        for target in nodes[:3]:
            assert dict(attacher.travel_times_to(target)) == dict(
                owner.travel_times_to(target)
            )
    finally:
        attacher.release_shared()
        owner.release_shared()


@needs_numpy
@pytest.mark.skipif(sys.platform != "linux", reason="/dev/shm is Linux-only")
def test_release_shared_unlinks_segments_and_keeps_answering():
    """No shared-memory segments leak, and the oracle survives release."""
    graph = grid_city(8, 8, seed=13, jitter=0.25).graph
    before = set(glob.glob("/dev/shm/psm_*"))
    oracle = CHOracle(graph, kernel="csr")
    oracle.share_memory()
    created = set(glob.glob("/dev/shm/psm_*")) - before
    assert created, "share_memory created no segments"
    want = dict(oracle.travel_times_to(sorted(graph.nodes)[7]))
    oracle.release_shared()
    assert not (set(glob.glob("/dev/shm/psm_*")) & created), (
        "release_shared left segments behind"
    )
    oracle.clear()
    # Private copies took over: same answers after the segments died.
    assert dict(oracle.travel_times_to(sorted(graph.nodes)[7])) == want
    # Releasing twice is a no-op.
    oracle.release_shared()


def test_dict_kernel_share_memory_is_none():
    """The dict kernel has no flat arrays to share; shards fork-inherit."""
    graph = grid_city(4, 4, seed=5, jitter=0.2).graph
    oracle = CHOracle(graph, kernel="dict")
    assert oracle.share_memory() is None
    oracle.adopt_shared({"kind": "ch-sweeps", "segments": {}})  # no-op
    oracle.release_shared()  # no-op
