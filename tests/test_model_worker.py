"""Unit tests for the Worker entity."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.worker import Worker, WorkerStatus


class TestWorker:
    def test_requires_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            Worker(location=0, capacity=0)

    def test_starts_idle(self):
        worker = Worker(location=3, capacity=2)
        assert worker.is_idle
        assert worker.status is WorkerStatus.IDLE

    def test_assign_marks_busy_and_moves(self):
        worker = Worker(location=3, capacity=2)
        worker.assign(end_location=9, finish_time=500.0)
        assert not worker.is_idle
        assert worker.location == 9
        assert worker.busy_until == 500.0
        assert worker.served_groups == 1

    def test_cannot_assign_busy_worker(self):
        worker = Worker(location=3, capacity=2)
        worker.assign(end_location=9, finish_time=500.0)
        with pytest.raises(ConfigurationError):
            worker.assign(end_location=1, finish_time=900.0)

    def test_release_if_done(self):
        worker = Worker(location=3, capacity=2)
        worker.assign(end_location=9, finish_time=500.0)
        assert not worker.release_if_done(400.0)
        assert worker.release_if_done(500.0)
        assert worker.is_idle

    def test_release_idle_worker_is_noop(self):
        worker = Worker(location=3, capacity=2)
        assert not worker.release_if_done(1000.0)

    def test_clone_resets_nothing_but_shares_identity(self):
        worker = Worker(location=3, capacity=2)
        worker.assign(end_location=9, finish_time=500.0)
        clone = worker.clone()
        assert clone.worker_id == worker.worker_id
        assert clone.is_idle
        assert clone.location == worker.location
        assert clone.capacity == worker.capacity

    def test_equality_by_id(self):
        worker = Worker(location=0, capacity=2)
        assert worker == worker.clone()
        assert worker != "something else"

    def test_unique_ids(self):
        assert Worker(location=0, capacity=2) != Worker(location=0, capacity=2)
