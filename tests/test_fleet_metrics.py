"""Unit tests for the worker fleet and the metrics collector."""

from __future__ import annotations

import pytest

from repro.config import ExtraTimeWeights
from repro.exceptions import ConfigurationError
from repro.model.group import Group
from repro.model.route import Route, RouteStop, StopKind
from repro.model.worker import Worker
from repro.network.grid import GridIndex
from repro.simulation.dispatcher import ServedOrder, served_orders_from_group
from repro.simulation.fleet import WorkerFleet
from repro.simulation.metrics import MetricsCollector
from tests.conftest import make_order


def _solo_group(network, order):
    route = Route(
        [
            RouteStop(order.pickup, order.order_id, StopKind.PICKUP),
            RouteStop(order.dropoff, order.order_id, StopKind.DROPOFF),
        ],
        network,
    )
    return Group(orders=(order,), route=route)


class TestWorkerFleet:
    def test_requires_workers(self, small_network):
        with pytest.raises(ConfigurationError):
            WorkerFleet([], small_network)

    def test_idle_workers_initially_all(self, fleet_factory):
        fleet = fleet_factory(locations=(0, 5, 30))
        assert len(fleet.idle_workers(0.0)) == 3

    def test_nearest_feasible_worker_chosen(self, small_network, fleet_factory):
        fleet = fleet_factory(locations=(0, 35))
        order = make_order(small_network, 6, 30)
        group = _solo_group(small_network, order)
        worker = fleet.find_worker_for(group, 0.0)
        assert worker is not None
        assert worker.location == 0  # much closer than node 35

    def test_capacity_filter(self, small_network):
        workers = [Worker(location=0, capacity=1)]
        fleet = WorkerFleet(workers, small_network, GridIndex(small_network, 3))
        first = make_order(small_network, 0, 24)
        second = make_order(small_network, 6, 30)
        from repro.routing.planner import RoutePlanner

        planned = RoutePlanner(small_network).plan([first, second], 4, 0.0)
        group = Group(orders=(first, second), route=planned.route)
        assert fleet.find_worker_for(group, 0.0) is None

    def test_assignment_books_travel_time(self, small_network, fleet_factory):
        fleet = fleet_factory(locations=(0,))
        order = make_order(small_network, 6, 30)
        group = _solo_group(small_network, order)
        worker = fleet.find_worker_for(group, 0.0)
        assignment = fleet.assign(worker, group, 0.0)
        assert assignment.approach_time == pytest.approx(
            small_network.travel_time(0, 1)
        )
        assert assignment.route_time == pytest.approx(group.route.total_travel_time)
        assert fleet.total_travel_time == pytest.approx(
            assignment.approach_time + assignment.route_time
        )
        assert not worker.is_idle
        assert worker.location == group.route.end_node

    def test_busy_worker_not_offered(self, small_network, fleet_factory):
        fleet = fleet_factory(locations=(0,))
        order = make_order(small_network, 6, 30)
        group = _solo_group(small_network, order)
        worker = fleet.find_worker_for(group, 0.0)
        fleet.assign(worker, group, 0.0)
        another = make_order(small_network, 2, 14)
        assert fleet.find_worker_for(_solo_group(small_network, another), 1.0) is None

    def test_release_finished_returns_worker(self, small_network, fleet_factory):
        fleet = fleet_factory(locations=(0,))
        order = make_order(small_network, 6, 30)
        group = _solo_group(small_network, order)
        worker = fleet.find_worker_for(group, 0.0)
        assignment = fleet.assign(worker, group, 0.0)
        assert fleet.idle_workers(assignment.finish_time - 1.0) == []
        assert len(fleet.idle_workers(assignment.finish_time + 1.0)) == 1

    def test_deadline_infeasible_worker_rejected(self, small_network, fleet_factory):
        fleet = fleet_factory(locations=(35,))
        order = make_order(small_network, 0, 2, deadline_scale=1.1)
        group = _solo_group(small_network, order)
        assert fleet.find_worker_for(group, 0.0) is None

    def test_add_travel_time_validation(self, fleet_factory):
        fleet = fleet_factory()
        fleet.add_travel_time(100.0)
        assert fleet.total_travel_time == 100.0
        with pytest.raises(ConfigurationError):
            fleet.add_travel_time(-1.0)

    def test_idle_locations(self, fleet_factory):
        fleet = fleet_factory(locations=(0, 5))
        assert sorted(fleet.idle_locations(0.0)) == [0, 5]


class TestServedOrdersFromGroup:
    def test_records_per_member(self, small_network):
        first = make_order(small_network, 0, 24, release=0.0)
        second = make_order(small_network, 6, 30, release=20.0)
        from repro.routing.planner import RoutePlanner

        planned = RoutePlanner(small_network).plan([first, second], 4, 60.0)
        group = Group(orders=(first, second), route=planned.route)
        records = served_orders_from_group(group, dispatch_time=60.0, worker_id=7)
        assert len(records) == 2
        by_id = {record.order.order_id: record for record in records}
        assert by_id[first.order_id].response_time == pytest.approx(60.0)
        assert by_id[second.order_id].response_time == pytest.approx(40.0)
        assert all(record.group_size == 2 for record in records)
        assert all(record.worker_id == 7 for record in records)


class TestMetricsCollector:
    def test_extra_time_accounting(self, small_network):
        collector = MetricsCollector(weights=ExtraTimeWeights(), penalty_factor=10.0)
        order = make_order(small_network, 0, 24, release=0.0)
        collector.record_served(
            ServedOrder(
                order=order,
                response_time=30.0,
                detour_time=45.0,
                dispatch_time=30.0,
                worker_id=1,
                group_size=2,
            )
        )
        rejected = make_order(small_network, 6, 30, release=0.0)
        collector.record_rejected(rejected)
        metrics = collector.finalize("alg", "TEST", worker_travel_time=500.0, running_time_total=0.2)
        assert metrics.total_orders == 2
        assert metrics.served_orders == 1
        assert metrics.rejected_orders == 1
        assert metrics.total_extra_time == pytest.approx(75.0 + rejected.penalty)
        assert metrics.unified_cost == pytest.approx(500.0 + 10.0 * rejected.shortest_time)
        assert metrics.service_rate == pytest.approx(0.5)
        assert metrics.running_time_per_order == pytest.approx(0.1)
        assert metrics.average_group_size == pytest.approx(2.0)

    def test_weights_change_extra_time(self, small_network):
        collector = MetricsCollector(weights=ExtraTimeWeights(alpha=2.0, beta=0.0))
        order = make_order(small_network, 0, 24)
        collector.record_served(
            ServedOrder(order, response_time=100.0, detour_time=10.0,
                        dispatch_time=100.0, worker_id=1, group_size=1)
        )
        metrics = collector.finalize("alg", "TEST", 0.0, 0.0)
        assert metrics.total_extra_time == pytest.approx(20.0)

    def test_empty_collector_finalizes(self):
        metrics = MetricsCollector().finalize("alg", "TEST", 0.0, 0.0)
        assert metrics.total_orders == 0
        assert metrics.service_rate == 0.0
        assert metrics.average_extra_time == 0.0

    def test_summary_row_keys(self, small_network):
        collector = MetricsCollector()
        collector.record_rejected(make_order(small_network, 0, 24))
        row = collector.finalize("alg", "TEST", 0.0, 0.0).summary_row()
        assert {"algorithm", "dataset", "orders", "served", "extra_time",
                "unified_cost", "service_rate", "running_time"} <= set(row)

    def test_order_id_bookkeeping(self, small_network):
        collector = MetricsCollector()
        order = make_order(small_network, 0, 24)
        collector.record_rejected(order)
        assert collector.accounted_orders() == 1
        assert collector.order_ids() == {order.order_id}
