"""Tests for the declarative scenario spec: round-trip, validation, CLI parity."""

from __future__ import annotations

import json

import pytest

from repro.api import OracleSpec, ScenarioSpec, load_spec, save_spec
from repro.cli import _config_from_args, build_parser
from repro.config import ExtraTimeWeights, SimulationConfig
from repro.exceptions import ConfigurationError
from repro.experiments.config import default_config


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            ScenarioSpec(),
            ScenarioSpec(dataset="NYC", num_orders=50, num_workers=10, seed=11),
            ScenarioSpec(
                name="full",
                dataset="XIA",
                algorithm="WATTER-expect",
                use_rl=True,
                num_orders=40,
                num_workers=8,
                horizon=1200.0,
                seed=5,
                deadline_scale=1.8,
                watch_window_scale=0.6,
                max_capacity=3,
                check_period=5.0,
                time_slot=5.0,
                grid_size=6,
                penalty_factor=8.0,
                max_group_size=3,
                alpha=2.0,
                beta=0.5,
                oracle_backend="ch",
                oracle_cache_size=256,
                oracle_landmarks=4,
                oracle_witness_hops=3,
                oracle_cache_dir="/tmp/oracle-cache",
                dispatch_workers=2,
                dispatch_mode="thread",
            ),
            ScenarioSpec(
                network="grid",
                grid_rows=8,
                grid_cols=9,
                grid_edge_travel_time=55.0,
                grid_jitter=0.1,
                num_orders=20,
                num_workers=4,
            ),
        ],
        ids=("default", "dataset", "full", "grid"),
    )
    def test_dict_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_csv_round_trip(self):
        spec = ScenarioSpec(
            network="grid",
            workload="csv",
            orders_csv="orders.csv",
            workers_csv="workers.csv",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_omits_unset_fields(self):
        data = ScenarioSpec().to_dict()
        assert "num_orders" not in data
        assert "oracle_backend" not in data
        assert data["network"] == "dataset"

    def test_to_dict_is_json_serializable(self):
        spec = ScenarioSpec(num_orders=30, horizon=900.0, alpha=1.5)
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_numeric_normalisation_survives_round_trip(self):
        # ints in float-typed fields are coerced at construction, so
        # JSON (which may render 1800.0 as 1800) still round-trips.
        spec = ScenarioSpec(horizon=1800, grid_jitter=0)
        assert isinstance(spec.horizon, float)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_spec_file_round_trip(self, tmp_path):
        spec = ScenarioSpec(name="file", num_orders=25, oracle_backend="matrix")
        path = save_spec(spec, tmp_path / "scenario.json")
        assert load_spec(path) == spec


class TestValidation:
    def test_unknown_key_is_named(self):
        with pytest.raises(ConfigurationError, match="number_of_orders"):
            ScenarioSpec.from_dict({"number_of_orders": 10})

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            ScenarioSpec.from_dict([("num_orders", 10)])

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"network": "hexagons"}, "network"),
            ({"workload": "parquet"}, "workload"),
            ({"dataset": "LONDON"}, "dataset"),
            ({"algorithm": "FancyAlgo"}, "algorithm"),
            ({"workload": "csv"}, "orders_csv"),
            ({"orders_csv": "x.csv"}, "workload='csv'"),
            ({"num_orders": "many"}, "num_orders"),
            ({"num_orders": 0}, "num_orders"),
            ({"horizon": "long"}, "horizon"),
            ({"use_rl": "yes"}, "use_rl"),
            ({"deadline_scale": 0.5}, "deadline_scale"),
            ({"oracle_backend": "teleport"}, "oracle"),
            ({"dispatch_mode": "fiber"}, "dispatch_mode"),
            ({"network": "grid", "grid_rows": 1}, "lattice"),
            ({"network": "grid", "grid_jitter": 1.5}, "grid_jitter"),
        ],
    )
    def test_invalid_values_raise_precise_errors(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            ScenarioSpec(**kwargs)

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="orderz"):
            ScenarioSpec().with_overrides(orderz=5)

    def test_normalisation(self):
        spec = ScenarioSpec(dataset="cdc", algorithm="watter-EXPECT")
        assert spec.dataset == "CDC"
        assert spec.algorithm == "WATTER-expect"


class TestOracleSpec:
    """The typed oracle front door: validation, round-trip, resolution."""

    def test_nested_round_trip(self):
        spec = ScenarioSpec(
            num_orders=20,
            oracle=OracleSpec(backend="ch", kernel="csr", cache_size=64),
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert isinstance(rebuilt.oracle, OracleSpec)

    def test_to_dict_omits_unset_options(self):
        data = OracleSpec(backend="ch", kernel="auto").to_dict()
        assert data == {"backend": "ch", "kernel": "auto"}

    def test_mapping_is_coerced(self):
        spec = ScenarioSpec(oracle={"backend": "matrix", "kernel": "dict"})
        assert spec.oracle == OracleSpec(backend="matrix", kernel="dict")

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"backend": "teleport"}, "unknown oracle backend"),
            ({"backend": ""}, "non-empty string"),
            ({"cache_size": True}, "cache_size must be an integer"),
            ({"cache_size": 0}, "at least 1"),
            ({"landmarks": 2.5}, "landmarks must be an integer"),
            ({"cache_dir": 7}, "path string"),
            ({"kernel": "simd"}, "kernel must be one of"),
            ({"shared_memory": 1}, "shared_memory must be a boolean"),
            # Options the named backend does not consume are rejected
            # eagerly, naming the valid set.
            ({"backend": "lazy", "kernel": "csr"}, "does not take option"),
            ({"backend": "landmark", "cache_size": 8}, "does not take option"),
            ({"backend": "matrix", "witness_hops": 2}, "does not take option"),
        ],
    )
    def test_invalid_oracle_specs_raise(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            OracleSpec(**kwargs)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="kernell"):
            OracleSpec.from_dict({"backend": "ch", "kernell": "csr"})

    def test_non_oracle_spec_value_rejected(self):
        with pytest.raises(ConfigurationError, match="OracleSpec"):
            ScenarioSpec(oracle="ch")

    def test_contradicting_flat_field_rejected(self):
        with pytest.raises(ConfigurationError, match="contradicts"):
            ScenarioSpec(
                oracle=OracleSpec(backend="ch"), oracle_backend="lazy"
            )
        with pytest.raises(ConfigurationError, match="contradicts"):
            ScenarioSpec(
                oracle=OracleSpec(backend="ch", cache_size=32),
                oracle_cache_size=64,
            )

    def test_agreeing_flat_field_accepted(self):
        spec = ScenarioSpec(
            oracle=OracleSpec(backend="ch"), oracle_backend="ch"
        )
        assert spec.config().oracle_backend == "ch"

    def test_overrides_reach_the_config(self):
        spec = ScenarioSpec(
            oracle=OracleSpec(
                backend="ch",
                kernel="csr",
                shared_memory=False,
                witness_hops=2,
            )
        )
        config = spec.config()
        assert config.oracle_backend == "ch"
        assert config.oracle_kernel == "csr"
        assert config.oracle_shared_memory is False
        assert config.oracle_witness_hops == 2

    def test_unset_options_keep_config_defaults(self):
        base = ScenarioSpec().config()
        spec = ScenarioSpec(oracle=OracleSpec(backend="ch"))
        config = spec.config()
        assert config.oracle_backend == "ch"
        assert config.oracle_kernel == base.oracle_kernel
        assert config.oracle_shared_memory == base.oracle_shared_memory


class TestResolution:
    def test_defaults_resolve_to_dataset_defaults(self):
        assert ScenarioSpec(dataset="CDC").config() == default_config("CDC")
        assert ScenarioSpec(dataset="NYC").config() == default_config("NYC")

    def test_overrides_reach_the_config(self):
        spec = ScenarioSpec(
            num_orders=33,
            oracle_backend="matrix",
            dispatch_workers=2,
            oracle_cache_dir="/tmp/cache",
            alpha=2.0,
        )
        config = spec.config()
        assert config.num_orders == 33
        assert config.oracle_backend == "matrix"
        assert config.dispatch_workers == 2
        assert config.oracle_cache_dir == "/tmp/cache"
        assert config.weights == ExtraTimeWeights(alpha=2.0, beta=1.0)

    def test_grid_network_uses_class_defaults(self):
        config = ScenarioSpec(network="grid").config()
        assert config == SimulationConfig()

    @pytest.mark.parametrize(
        "dataset, config",
        [
            ("CDC", default_config("CDC")),
            (
                "NYC",
                default_config(
                    "NYC",
                    num_orders=40,
                    num_workers=9,
                    oracle_backend="ch",
                    oracle_witness_hops=3,
                    dispatch_workers=2,
                    dispatch_mode="process",
                    weights=ExtraTimeWeights(alpha=0.5, beta=2.0),
                    oracle_cache_dir="/tmp/x",
                ),
            ),
        ],
        ids=("defaults", "overridden"),
    )
    def test_from_config_is_lossless(self, dataset, config):
        spec = ScenarioSpec.from_config(dataset, config)
        assert spec.config() == config
        # and it still round-trips as a document
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestCliParity:
    """`_config_from_args` and `ScenarioSpec.from_args` must agree exactly."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["compare"],
            ["compare", "--dataset", "NYC", "--orders", "50", "--workers", "10"],
            [
                "compare",
                "--dataset",
                "XIA",
                "--seed",
                "3",
                "--horizon",
                "1200",
                "--oracle",
                "ch",
                "--oracle-cache",
                "/tmp/oracle-cache",
                "--dispatch-workers",
                "2",
                "--dispatch-mode",
                "thread",
            ],
            ["bench", "--dataset", "CDC", "--orders", "40", "--oracle", "matrix"],
            [
                "compare",
                "--oracle",
                "ch",
                "--oracle-kernel",
                "csr",
            ],
            ["sweep", "--dataset", "CDC", "--workers", "8"],
        ],
    )
    def test_spec_matches_legacy_config_assembly(self, argv):
        args = build_parser().parse_args(argv)
        assert ScenarioSpec.from_args(args).config() == _config_from_args(args)

    def test_oracle_cache_flag_parsed(self):
        args = build_parser().parse_args(
            ["compare", "--oracle-cache", "/tmp/oracle-cache"]
        )
        assert _config_from_args(args).oracle_cache_dir == "/tmp/oracle-cache"

    def test_oracle_kernel_flag_parsed(self):
        args = build_parser().parse_args(
            ["compare", "--oracle", "ch", "--oracle-kernel", "dict"]
        )
        assert _config_from_args(args).oracle_kernel == "dict"
        spec = ScenarioSpec.from_args(args)
        assert spec.oracle is not None
        assert spec.oracle.kernel == "dict"

    def test_oracle_kernel_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "--oracle-kernel", "simd"]
            )
        assert "invalid choice" in capsys.readouterr().err


class TestIdentity:
    def test_describe_prefers_the_name(self):
        assert ScenarioSpec(name="rush").describe() == "rush"
        assert "CDC" in ScenarioSpec().describe()
        assert "grid" in ScenarioSpec(network="grid").describe()

    def test_identity_is_self_describing(self):
        identity = ScenarioSpec(
            dataset="NYC", oracle_backend="ch", seed=4, num_orders=30
        ).identity()
        assert identity["dataset"] == "NYC"
        assert identity["oracle_backend"] == "ch"
        assert identity["seed"] == 4
        assert identity["num_orders"] == 30
