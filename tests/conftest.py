"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ExtraTimeWeights, SimulationConfig
from repro.model.order import Order
from repro.model.worker import Worker
from repro.network.generators import example_network, grid_city
from repro.network.grid import GridIndex
from repro.routing.planner import RoutePlanner
from repro.simulation.fleet import WorkerFleet


@pytest.fixture
def small_network():
    """A 6x6 grid city with deterministic 60-second edges."""
    return grid_city(rows=6, cols=6, edge_travel_time=60.0, jitter=0.0, seed=0)


@pytest.fixture
def figure1_network():
    """The 6-node network of Figure 1 / Example 1."""
    return example_network()


@pytest.fixture
def planner(small_network):
    """A route planner over the small grid network."""
    return RoutePlanner(small_network)


@pytest.fixture
def base_config():
    """A small but valid simulation configuration."""
    return SimulationConfig(
        num_orders=20,
        num_workers=4,
        deadline_scale=1.8,
        watch_window_scale=0.8,
        max_capacity=4,
        check_period=10.0,
        time_slot=10.0,
        grid_size=4,
        horizon=1800.0,
        weights=ExtraTimeWeights(),
        max_group_size=3,
        seed=3,
    )


def make_order(
    network,
    pickup: int,
    dropoff: int,
    release: float = 0.0,
    deadline_scale: float = 1.8,
    watch_scale: float = 0.8,
    riders: int = 1,
    order_id: int | None = None,
) -> Order:
    """Build an order with deadlines derived the same way the datasets do."""
    shortest = network.travel_time(pickup, dropoff)
    kwargs = dict(
        pickup=pickup,
        dropoff=dropoff,
        release_time=release,
        shortest_time=shortest,
        deadline=release + deadline_scale * shortest,
        wait_limit=watch_scale * shortest,
        riders=riders,
    )
    if order_id is not None:
        kwargs["order_id"] = order_id
    return Order(**kwargs)


@pytest.fixture
def order_factory(small_network):
    """Factory building orders on the small grid network."""

    def factory(pickup, dropoff, release=0.0, **kwargs):
        return make_order(small_network, pickup, dropoff, release, **kwargs)

    return factory


@pytest.fixture
def fleet_factory(small_network):
    """Factory building a fleet of idle workers on the small grid network."""

    def factory(locations=(0, 5, 30, 35), capacity=4):
        workers = [Worker(location=loc, capacity=capacity) for loc in locations]
        return WorkerFleet(workers, small_network, GridIndex(small_network, size=3))

    return factory
