"""Unit tests for the spatio-temporal MDP state featurisation."""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY, np
from repro.core.state import StateEncoder
from repro.network.grid import GridIndex
from tests.conftest import make_order

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="this module tests numpy-only subsystems"
)


@pytest.fixture
def encoder(small_network):
    grid = GridIndex(small_network, size=3)
    return StateEncoder(grid, time_slot=10.0, horizon=1800.0)


class TestStateEncoder:
    def test_dimension_formula(self, encoder):
        cells = encoder.grid.num_cells
        assert encoder.dimension == 2 * cells + 2 + 3 * cells

    def test_vector_has_declared_dimension(self, encoder, small_network):
        order = make_order(small_network, 0, 35)
        state = encoder.encode(order, now=50.0)
        assert state.vector.shape == (encoder.dimension,)
        assert state.dimension == encoder.dimension

    def test_location_one_hots(self, encoder, small_network):
        order = make_order(small_network, 0, 35)
        state = encoder.encode(order, now=0.0)
        cells = encoder.grid.num_cells
        pickup_hot = state.vector[:cells]
        dropoff_hot = state.vector[cells : 2 * cells]
        assert pickup_hot.sum() == 1.0
        assert dropoff_hot.sum() == 1.0
        assert pickup_hot[state.pickup_cell] == 1.0
        assert dropoff_hot[state.dropoff_cell] == 1.0

    def test_waited_slots_progresses(self, encoder, small_network):
        order = make_order(small_network, 0, 35, release=100.0)
        early = encoder.encode(order, now=100.0)
        later = encoder.encode(order, now=180.0)
        assert early.waited_slots == 0
        assert later.waited_slots == 8

    def test_demand_and_supply_are_normalised(self, encoder, small_network):
        order = make_order(small_network, 0, 35)
        state = encoder.encode(
            order,
            now=0.0,
            waiting_pickups=[0, 1, 2, 35],
            waiting_dropoffs=[3, 4],
            idle_worker_locations=[5, 6, 7],
        )
        cells = encoder.grid.num_cells
        demand_pickup = state.vector[2 * cells + 2 : 3 * cells + 2]
        demand_dropoff = state.vector[3 * cells + 2 : 4 * cells + 2]
        supply = state.vector[4 * cells + 2 :]
        assert demand_pickup.sum() == pytest.approx(1.0)
        assert demand_dropoff.sum() == pytest.approx(1.0)
        assert supply.sum() == pytest.approx(1.0)

    def test_empty_environment_gives_zero_densities(self, encoder, small_network):
        order = make_order(small_network, 0, 35)
        state = encoder.encode(order, now=0.0)
        cells = encoder.grid.num_cells
        assert state.vector[2 * cells + 2 :].sum() == 0.0

    def test_time_features_in_unit_range(self, encoder, small_network):
        order = make_order(small_network, 0, 35, release=900.0)
        state = encoder.encode(order, now=1700.0)
        cells = encoder.grid.num_cells
        time_features = state.vector[2 * cells : 2 * cells + 2]
        assert 0.0 <= time_features[0] <= 1.0
        assert 0.0 <= time_features[1] <= 1.0

    def test_encode_batch_shape(self, encoder, small_network):
        orders = [make_order(small_network, 0, 35), make_order(small_network, 1, 30)]
        matrix = encoder.encode_batch(orders, now=0.0)
        assert matrix.shape == (2, encoder.dimension)

    def test_encode_batch_empty(self, encoder):
        assert encoder.encode_batch([], now=0.0).shape == (0, encoder.dimension)

    def test_different_pickups_differ(self, encoder, small_network):
        first = make_order(small_network, 0, 35)
        second = make_order(small_network, 35, 0)
        a = encoder.encode(first, now=0.0).vector
        b = encoder.encode(second, now=0.0).vector
        assert not np.array_equal(a, b)
