"""Property-based tests (hypothesis) for the core invariants.

The invariants tested here are the ones the paper's correctness argument
rests on:

* planned routes always satisfy the three METRS constraints,
* the shareability graph's best group is always a validated clique and
  never contains expired members,
* the pool never loses or duplicates an order,
* the GMM CDF is a proper CDF and the threshold optimiser stays in
  ``[0, p]``,
* metric accounting identities (served + rejected = total, objective is
  the sum of per-order contributions).
"""

from __future__ import annotations

import pytest

from repro.compat import HAVE_NUMPY, np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ExtraTimeWeights
from repro.core.gmm import GaussianMixture
from repro.core.pool import OrderPool
from repro.core.shareability import TemporalShareabilityGraph
from repro.core.strategies import OnlineStrategy, TimeoutStrategy
from repro.core.threshold import ThresholdOptimizer
from repro.model.order import Order
from repro.network.generators import grid_city
from repro.routing.feasibility import check_route
from repro.routing.planner import RoutePlanner
from repro.simulation.dispatcher import ServedOrder
from repro.simulation.metrics import MetricsCollector

_NETWORK = grid_city(rows=5, cols=5, edge_travel_time=60.0, jitter=0.0, seed=0)
_PLANNER = RoutePlanner(_NETWORK)
_NODES = _NETWORK.nodes_sorted()

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def orders(draw, release_range=(0.0, 600.0)):
    pickup = draw(st.sampled_from(_NODES))
    dropoff = draw(st.sampled_from([node for node in _NODES if node != pickup]))
    release = draw(
        st.floats(*release_range, allow_nan=False, allow_infinity=False)
    )
    deadline_scale = draw(st.floats(1.2, 2.5))
    watch_scale = draw(st.floats(0.1, 1.0))
    shortest = _NETWORK.travel_time(pickup, dropoff)
    return Order(
        pickup=pickup,
        dropoff=dropoff,
        release_time=release,
        shortest_time=shortest,
        deadline=release + deadline_scale * shortest,
        wait_limit=watch_scale * shortest,
        riders=draw(st.integers(1, 2)),
    )


class TestRoutePlannerProperties:
    @_SETTINGS
    @given(order_list=st.lists(orders(release_range=(0.0, 0.0)), min_size=1, max_size=3))
    def test_planned_routes_satisfy_all_constraints(self, order_list):
        planned = _PLANNER.try_plan(order_list, capacity=6, start_time=0.0)
        if planned is None:
            return
        report = check_route(planned.route, order_list, capacity=6, start_time=0.0)
        assert report.feasible, report.violations

    @_SETTINGS
    @given(order_list=st.lists(orders(release_range=(0.0, 0.0)), min_size=2, max_size=2))
    def test_shared_route_never_cheaper_than_longest_member(self, order_list):
        planned = _PLANNER.try_plan(order_list, capacity=6, start_time=0.0)
        if planned is None:
            return
        longest = max(order.shortest_time for order in order_list)
        assert planned.total_travel_time >= longest - 1e-9

    @_SETTINGS
    @given(order=orders(release_range=(0.0, 0.0)))
    def test_single_order_route_is_exactly_shortest(self, order):
        planned = _PLANNER.try_plan([order], capacity=4, start_time=0.0)
        assert planned is not None
        assert planned.total_travel_time == pytest.approx(order.shortest_time)


class TestShareabilityProperties:
    @_SETTINGS
    @given(order_list=st.lists(orders(release_range=(0.0, 60.0)), min_size=1, max_size=6))
    def test_best_groups_are_validated_cliques(self, order_list):
        graph = TemporalShareabilityGraph(_PLANNER, capacity=4, max_group_size=3)
        for order in order_list:
            graph.insert_order(order, order.release_time)
        now = max(order.release_time for order in order_list)
        for order in order_list:
            group = graph.best_group(order.order_id)
            if group is None:
                continue
            assert len(group) >= 2
            member_ids = sorted(group.order_ids())
            # pairwise adjacency (clique property)
            for i, first in enumerate(member_ids):
                for second in member_ids[i + 1 :]:
                    assert second in graph.neighbours(first)
            # the stored route satisfies the constraints right now
            report = check_route(group.route, group.orders, capacity=4, start_time=now)
            assert report.feasible or group.expiration_time(now) <= now

    @_SETTINGS
    @given(order_list=st.lists(orders(release_range=(0.0, 60.0)), min_size=1, max_size=6))
    def test_removal_leaves_graph_consistent(self, order_list):
        graph = TemporalShareabilityGraph(_PLANNER, capacity=4, max_group_size=3)
        for order in order_list:
            graph.insert_order(order, order.release_time)
        for order in order_list:
            graph.remove_order(order.order_id, 100.0)
        assert len(graph) == 0
        assert graph.number_of_edges() == 0


class TestPoolProperties:
    @_SETTINGS
    @given(
        order_list=st.lists(orders(release_range=(0.0, 300.0)), min_size=1, max_size=8),
        strategy_kind=st.sampled_from(["online", "timeout"]),
    )
    def test_orders_are_conserved(self, order_list, strategy_kind):
        strategy = OnlineStrategy() if strategy_kind == "online" else TimeoutStrategy()
        pool = OrderPool(_PLANNER, strategy, capacity=4, max_group_size=3)
        for order in sorted(order_list, key=lambda o: o.release_time):
            pool.insert(order, order.release_time)
        resolved: list[int] = []
        horizon = max(order.deadline for order in order_list) + 100.0
        now = 0.0
        while now <= horizon:
            for decision in pool.check(now):
                if decision.dispatch:
                    resolved.extend(decision.group.order_ids())
                elif decision.reject:
                    resolved.append(decision.order_id)
            now += 30.0
        for decision in pool.flush(horizon + 1.0):
            resolved.append(decision.order_id)
        assert sorted(resolved) == sorted(order.order_id for order in order_list)
        assert len(resolved) == len(set(resolved))


@pytest.mark.skipif(
    not HAVE_NUMPY, reason="GMM fitting is a numpy-only subsystem"
)
class TestDistributionProperties:
    @_SETTINGS
    @given(
        samples=st.lists(
            st.floats(0.0, 2000.0, allow_nan=False, allow_infinity=False),
            min_size=10,
            max_size=200,
        ),
        components=st.integers(1, 3),
    )
    def test_cdf_is_monotone_and_bounded(self, samples, components):
        spread = max(samples) - min(samples)
        if spread < 1e-6:
            samples = [value + index * 0.5 for index, value in enumerate(samples)]
        mixture = GaussianMixture(n_components=components, seed=1).fit(samples)
        xs = np.linspace(-100.0, 2500.0, 64)
        cdf = mixture.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-9)
        assert np.all(cdf >= 0.0)
        assert np.all(cdf <= 1.0)

    @_SETTINGS
    @given(
        penalty=st.floats(0.0, 5000.0, allow_nan=False, allow_infinity=False),
        seed=st.integers(0, 5),
    )
    def test_threshold_always_within_bounds(self, penalty, seed):
        rng = np.random.default_rng(seed)
        samples = np.abs(rng.normal(200.0, 80.0, size=120))
        optimizer = ThresholdOptimizer(GaussianMixture(2, seed=seed).fit(samples))
        theta = optimizer.optimal_threshold(penalty)
        assert 0.0 <= theta <= max(penalty, 0.0)


class TestMetricsProperties:
    @_SETTINGS
    @given(
        order_list=st.lists(orders(), min_size=1, max_size=10),
        served_mask=st.lists(st.booleans(), min_size=10, max_size=10),
    )
    def test_objective_is_sum_of_contributions(self, order_list, served_mask):
        collector = MetricsCollector(weights=ExtraTimeWeights(), penalty_factor=10.0)
        for order, served in zip(order_list, served_mask):
            if served:
                collector.record_served(
                    ServedOrder(
                        order=order,
                        response_time=5.0,
                        detour_time=7.0,
                        dispatch_time=order.release_time + 5.0,
                        worker_id=0,
                        group_size=1,
                    )
                )
            else:
                collector.record_rejected(order)
        metrics = collector.finalize("alg", "prop", worker_travel_time=0.0, running_time_total=0.0)
        assert metrics.served_orders + metrics.rejected_orders == len(order_list)
        manual = sum(outcome.objective_contribution() for outcome in collector.outcomes)
        assert metrics.total_extra_time == pytest.approx(manual)
        assert 0.0 <= metrics.service_rate <= 1.0
