"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file only exists
so legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
