"""Durable per-run result documents, one JSON file per run.

The serve layer's in-memory record map is an LRU bounded by
``--max-runs``; this store is its on-disk shadow under ``--state-dir``
so a finished run stays queryable after a restart (and after LRU
eviction).  Documents are whole-record snapshots (the same payload
``GET /runs/<id>`` serves), written atomically via tmp + rename so a
crash mid-save leaves either the old document or none — never a torn
one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping


class ResultStore:
    """Directory of ``<run_id>.json`` documents with atomic writes."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Documents persisted by this handle.
        self.saves = 0
        #: Saves dropped because of IO errors (best-effort store).
        self.save_failures = 0

    def _path(self, run_id: str) -> Path:
        # Run ids are service-generated (``run-%06d``) but guard against
        # path traversal anyway: the id becomes a filename verbatim.
        safe = run_id.replace("/", "_").replace("\\", "_")
        return self.root / f"{safe}.json"

    def save(self, run_id: str, document: Mapping[str, Any]) -> bool:
        """Persist a run document; returns whether the write landed."""
        path = self._path(run_id)
        scratch = path.with_name(path.name + ".tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with scratch.open("w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True, default=str)
                handle.flush()
                os.fsync(handle.fileno())
            scratch.replace(path)
        except OSError:
            self.save_failures += 1
            scratch.unlink(missing_ok=True)
            return False
        self.saves += 1
        return True

    def load(self, run_id: str) -> dict[str, Any] | None:
        """The stored document, or ``None`` if absent or unreadable."""
        try:
            with self._path(run_id).open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None

    def run_ids(self) -> set[str]:
        """Ids of every run with a stored document."""
        if not self.root.is_dir():
            return set()
        return {
            entry.stem
            for entry in self.root.glob("*.json")
            if entry.is_file()
        }

    def delete(self, run_id: str) -> None:
        self._path(run_id).unlink(missing_ok=True)
