"""CRC-checked simulation checkpoints and the hook that writes them.

A checkpoint freezes a run at a tick boundary: the cursor (how far the
engine got), the dispatcher (fleet, pool, plans — the whole algorithm
state) and the metrics collector.  The engine's replay loop is
deterministic — no RNG fires after provider bootstrap, and the drain
horizon is recomputed from the workload — so a run resumed from any
checkpoint produces metrics identical to an uninterrupted one (the
property tests in ``tests/test_durability.py`` hold this across
dispatchers and oracle backends).

File layout (single file, atomic tmp + rename):

* line 1 — an ASCII JSON header: format version, the cursor, caller
  meta (graph hash, algorithm, spec echo, ...), degradation events so
  far, blob length and CRC32;
* the rest — a pickle of ``{"dispatcher", "collector"}``.

Shared/unpicklable infrastructure is *externalized* through pickle
persistent ids rather than serialized: the road network (and its
``networkx`` graph), the attached distance oracle, any parallel
dispatch engine (re-attached fresh on resume) and bare ``threading``
locks.  A checkpoint is therefore small — algorithm state only — and
resuming binds it to the resume-time network, whose oracle may even be
a different warm cache of the same graph.

Loads verify the CRC before unpickling and raise
:class:`CheckpointError` on any mismatch, so a torn or corrupt file is
reported (and the run falls back to ``interrupted``) instead of
resuming from garbage.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..exceptions import ReproError
from ..resilience.degradation import DegradationLog
from ..resilience.faults import fault_point

#: Ticks between checkpoints when the caller does not choose.
DEFAULT_CHECKPOINT_INTERVAL = 25

_FORMAT_VERSION = 1

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())


class CheckpointError(ReproError):
    """A checkpoint could not be written, read or trusted."""


@dataclass(frozen=True)
class RunCursor:
    """Where in the replay loop a checkpoint was taken.

    Checkpoints only fire at tick boundaries, so the cursor is exact:
    ``order_index`` orders have been submitted, ``ticks`` periodic
    checks have run, and the next check is due at ``next_check``.
    ``algorithm_time`` carries the Running Time metric accrued so far.
    """

    order_index: int
    next_check: float
    ticks: int
    algorithm_time: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "order_index": self.order_index,
            "next_check": self.next_check,
            "ticks": self.ticks,
            "algorithm_time": self.algorithm_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunCursor":
        try:
            return cls(
                order_index=int(data["order_index"]),
                next_check=float(data["next_check"]),
                ticks=int(data["ticks"]),
                algorithm_time=float(data["algorithm_time"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint cursor: {exc}") from exc


@dataclass(frozen=True)
class RunCheckpoint:
    """One snapshot the engine hands to ``on_checkpoint`` observers."""

    cursor: RunCursor
    dispatcher: Any
    collector: Any
    network: Any
    forced: bool = False


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A verified checkpoint read back from disk."""

    cursor: RunCursor
    dispatcher: Any
    collector: Any
    meta: dict[str, Any] = field(default_factory=dict)
    degradations: tuple[dict[str, str], ...] = ()
    path: Path | None = None


# ----------------------------------------------------------------------
# externalizing pickler
# ----------------------------------------------------------------------
class _ExternalizingPickler(pickle.Pickler):
    """Pickles algorithm state; shared infrastructure becomes ids."""

    def __init__(self, buffer: io.BytesIO, network: Any) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._network = network
        self._graph = getattr(network, "graph", None)

    def persistent_id(self, obj: Any):  # noqa: ANN201 - pickle protocol
        from ..network.graph import RoadNetwork
        from ..network.oracle.base import DistanceOracle
        from ..simulation.parallel import ParallelDispatchEngine

        if isinstance(obj, RoadNetwork):
            return ("network",)
        if self._graph is not None and obj is self._graph:
            return ("graph",)
        if isinstance(obj, DistanceOracle):
            return ("oracle",)
        if isinstance(obj, ParallelDispatchEngine):
            return ("engine",)
        if isinstance(obj, _RLOCK_TYPE):
            return ("lock", "rlock")
        if isinstance(obj, _LOCK_TYPE):
            return ("lock", "lock")
        return None


class _ResolvingUnpickler(pickle.Unpickler):
    """Rebinds persistent ids against the resume-time network."""

    def __init__(self, buffer: io.BytesIO, network: Any) -> None:
        super().__init__(buffer)
        self._network = network

    def persistent_load(self, pid: Any) -> Any:
        kind = pid[0] if isinstance(pid, tuple) and pid else None
        if kind == "network":
            return self._network
        if kind == "graph":
            return self._network.graph
        if kind == "oracle":
            return self._network.oracle
        if kind == "engine":
            # Parallel dispatch engines are per-run scaffolding; the
            # resuming Simulator attaches a fresh one when configured.
            return None
        if kind == "lock":
            return threading.RLock() if pid[1] == "rlock" else threading.Lock()
        raise CheckpointError(f"unknown persistent id in checkpoint: {pid!r}")


# ----------------------------------------------------------------------
# file IO
# ----------------------------------------------------------------------
def write_checkpoint(
    path: str | Path,
    checkpoint: RunCheckpoint,
    *,
    meta: Mapping[str, Any] | None = None,
    degradations: DegradationLog | None = None,
) -> Path:
    """Atomically persist a checkpoint; returns the final path.

    Raises :class:`CheckpointError` on IO failure or unpicklable
    dispatcher state — callers decide whether that is fatal (an
    explicit ``--resume`` load) or a recorded degradation (the
    :class:`Checkpointer` hook mid-run).
    """
    file_path = Path(path)
    try:
        fault_point("checkpoint.write")
        buffer = io.BytesIO()
        _ExternalizingPickler(buffer, checkpoint.network).dump(
            {"dispatcher": checkpoint.dispatcher, "collector": checkpoint.collector}
        )
        blob = buffer.getvalue()
        header = {
            "format": _FORMAT_VERSION,
            "cursor": checkpoint.cursor.as_dict(),
            "meta": dict(meta or {}),
            "degradations": degradations.as_dicts() if degradations else [],
            "blob_bytes": len(blob),
            "blob_crc32": zlib.crc32(blob),
        }
        header_line = json.dumps(header, sort_keys=True, default=str).encode("ascii")
        file_path.parent.mkdir(parents=True, exist_ok=True)
        scratch = file_path.with_name(file_path.name + ".tmp")
        with scratch.open("wb") as handle:
            handle.write(header_line)
            handle.write(b"\n")
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        scratch.replace(file_path)
    except CheckpointError:
        raise
    except (OSError, RuntimeError, TypeError, pickle.PickleError) as exc:
        raise CheckpointError(f"cannot write checkpoint {file_path}: {exc}") from exc
    return file_path


def read_checkpoint_header(path: str | Path) -> dict[str, Any]:
    """The JSON header of a checkpoint file, without unpickling the blob.

    Recovery uses this to report an interrupted run's last-known cursor
    even when a full resume is not attempted.
    """
    file_path = Path(path)
    try:
        with file_path.open("rb") as handle:
            header_line = handle.readline()
        header = json.loads(header_line.decode("ascii"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {file_path}: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != _FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {file_path} has unsupported format "
            f"{header.get('format') if isinstance(header, dict) else header!r}"
        )
    return header


def load_checkpoint(path: str | Path, *, network: Any) -> LoadedCheckpoint:
    """Read, CRC-verify and rebind a checkpoint against ``network``.

    Raises :class:`CheckpointError` for a missing, torn, corrupt or
    version-incompatible file — never returns partially-restored state.
    """
    file_path = Path(path)
    header = read_checkpoint_header(file_path)
    try:
        with file_path.open("rb") as handle:
            handle.readline()
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {file_path}: {exc}") from exc
    expected = header.get("blob_bytes")
    if expected is not None and len(blob) != expected:
        raise CheckpointError(
            f"checkpoint {file_path} is truncated: expected {expected} blob "
            f"bytes, found {len(blob)}"
        )
    if zlib.crc32(blob) != header.get("blob_crc32"):
        raise CheckpointError(f"checkpoint {file_path} failed its CRC check")
    cursor = RunCursor.from_dict(header.get("cursor", {}))
    try:
        state = _ResolvingUnpickler(io.BytesIO(blob), network).load()
    except CheckpointError:
        raise
    except Exception as exc:  # pickle raises widely; all mean "unusable"
        raise CheckpointError(
            f"checkpoint {file_path} cannot be unpickled: {exc}"
        ) from exc
    if not isinstance(state, dict) or "dispatcher" not in state or "collector" not in state:
        raise CheckpointError(f"checkpoint {file_path} has an unexpected payload")
    degradations = header.get("degradations") or []
    return LoadedCheckpoint(
        cursor=cursor,
        dispatcher=state["dispatcher"],
        collector=state["collector"],
        meta=dict(header.get("meta") or {}),
        degradations=tuple(
            dict(event) for event in degradations if isinstance(event, dict)
        ),
        path=file_path,
    )


# ----------------------------------------------------------------------
# the engine-side hook
# ----------------------------------------------------------------------
class Checkpointer:
    """A :class:`~repro.simulation.hooks.SimulationHooks` observer that
    persists every checkpoint the engine offers.

    Writing is best-effort by design: a failed write is counted, and
    recorded in the run's degradation log when one is attached, but the
    run keeps going — losing a checkpoint costs resume granularity, not
    the run.  (An explicit later ``--resume`` still CRC-verifies, so a
    bad write can never be resumed from.)
    """

    def __init__(
        self,
        path: str | Path,
        *,
        interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        meta: Mapping[str, Any] | None = None,
        degradations: DegradationLog | None = None,
    ) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be at least 1 tick")
        self.path = Path(path)
        self.interval = interval
        self.meta = dict(meta or {})
        self.degradations = degradations
        #: Checkpoints successfully written.
        self.writes = 0
        #: Writes that failed (and were skipped).
        self.write_failures = 0
        #: Cursor of the newest checkpoint on disk, if any.
        self.last_cursor: RunCursor | None = None

    # SimulationHooks protocol -----------------------------------------
    def checkpoint_interval(self) -> int | None:
        return self.interval

    def on_checkpoint(self, checkpoint: RunCheckpoint) -> None:
        try:
            write_checkpoint(
                self.path,
                checkpoint,
                meta=self.meta,
                degradations=self.degradations,
            )
        except CheckpointError as exc:
            self.write_failures += 1
            if self.degradations is not None:
                self.degradations.record(
                    "checkpoint.write",
                    "checkpointed",
                    "skipped",
                    str(exc),
                )
            return
        self.writes += 1
        self.last_cursor = checkpoint.cursor

    # non-protocol no-ops so Checkpointer can stand alone as hooks -----
    def on_run_start(self, info: Mapping[str, Any]) -> None:
        pass

    def on_order_arrival(self, order: Any, now: float) -> None:
        pass

    def on_periodic_check(self, now: float) -> None:
        pass

    def on_assign(self, served: Any) -> None:
        pass

    def on_run_end(self, info: Mapping[str, Any]) -> None:
        pass
