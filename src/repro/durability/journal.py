"""Write-ahead run journal: fsync'd JSONL records of run lifecycles.

The serving layer appends one record *before* acting on a lifecycle
transition (accepting a submission, starting a run, finishing one), so
a process killed at any instant leaves a journal from which every
accepted run can be accounted for.  Records are single JSON lines; the
reader tolerates a torn final line (the one write a crash can
interrupt) so recovery never trips over its own wound.

Appends flush and ``fsync`` by default — the journal is the only thing
standing between a ``kill -9`` and silently lost work, so it pays the
disk round-trip.  Append failures are retried under a short backoff
and then *swallowed* (counted in :attr:`RunJournal.append_failures`):
the service prefers staying available over refusing work it could
still execute, and the miss is observable in ``/metrics``.

Record shape: every record is a flat JSON object with at least a
``type`` key (one of :data:`RECORD_TYPES`) and, for run records, a
``run_id``.  The journal itself is schema-agnostic — the service owns
the vocabulary; this module owns atomic appends, tolerant replay and
compaction.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from ..resilience.faults import fault_point
from ..resilience.retry import RetryPolicy, retry_call

#: Lifecycle vocabulary the serving layer writes (documented here so
#: the journal format has one authoritative list; the reader does not
#: enforce it).
RECORD_TYPES = (
    "submitted",
    "started",
    "checkpointed",
    "finished",
    "failed",
    "cancelled",
    "interrupted",
    "clean_shutdown",
)

#: Backoff for journal IO: two quick retries, then the append is
#: dropped (and counted) rather than failing the run it describes.
JOURNAL_IO_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.02, max_delay=0.2, retry_on=(OSError,)
)


def read_jsonl_tolerant(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield the parseable JSON objects of a JSONL file, in order.

    A truncated *final* line — the torn write of a crashed appender —
    is silently dropped; a malformed line elsewhere is skipped too (it
    can only come from external corruption, and one rotten record must
    not hide the rest of the log).  A missing file yields nothing.
    """
    file_path = Path(path)
    if not file_path.exists():
        return
    with file_path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


class RunJournal:
    """Append-only, fsync'd JSONL journal with tolerant replay.

    Parameters
    ----------
    path:
        The journal file; parent directories are created on demand.
    fsync:
        Whether each append forces the record to disk before returning
        (default).  Turning this off trades the crash guarantee for
        throughput — useful in tests, never in a real ``--state-dir``.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._file: IO[str] | None = None
        self._lock = threading.Lock()
        #: Records successfully written by this handle.
        self.appends = 0
        #: Appends dropped after exhausting the IO retries.
        self.append_failures = 0
        #: Journal rewrites performed by :meth:`compact`.
        self.compactions = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, Any]) -> bool:
        """Write one record durably; returns whether the write landed.

        The record is stamped with a wall-clock ``ts`` when it carries
        none.  Failures are retried under :data:`JOURNAL_IO_POLICY`
        and then swallowed (counted in :attr:`append_failures`) — the
        caller's run proceeds either way.
        """
        document = dict(record)
        document.setdefault("ts", time.time())
        line = json.dumps(document, sort_keys=True, default=str) + "\n"

        def write() -> None:
            fault_point("journal.append")
            with self._lock:
                handle = self._open_locked()
                handle.write(line)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())

        try:
            retry_call(write, policy=JOURNAL_IO_POLICY)
        except OSError:
            with self._lock:
                self.append_failures += 1
            return False
        with self._lock:
            self.appends += 1
        return True

    def _open_locked(self) -> IO[str]:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
        return self._file

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def replay(self) -> list[dict[str, Any]]:
        """All parseable records currently on disk, oldest first."""
        return list(read_jsonl_tolerant(self.path))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, drop_run_ids: set[str]) -> int:
        """Rewrite the journal without records of the given runs.

        Used on clean startup: runs whose full results already live in
        the durable result store need no journal history — their
        records (and any stale ``clean_shutdown`` markers) are dropped,
        bounding journal growth across restarts.  The rewrite is atomic
        (tmp + rename) and the live handle is reopened afterwards.
        Returns the number of records dropped.
        """
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            kept: list[dict[str, Any]] = []
            dropped = 0
            for record in read_jsonl_tolerant(self.path):
                if record.get("type") == "clean_shutdown":
                    dropped += 1
                    continue
                if record.get("run_id") in drop_run_ids:
                    dropped += 1
                    continue
                kept.append(record)
            if dropped == 0:
                return 0
            scratch = self.path.with_name(self.path.name + ".tmp")
            with scratch.open("w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            scratch.replace(self.path)
            self.compactions += 1
            return dropped
