"""Crash survival for runs: journal, checkpoints, results, file locks.

``repro.resilience`` (PR 7) keeps a *live* process healthy — retries,
deadlines, degradation chains.  This package is the next layer out:
state that survives the process itself.

* :mod:`~repro.durability.journal` — a write-ahead run journal
  (fsync'd JSONL) the serving layer replays on startup, so a
  ``kill -9`` loses no accepted work;
* :mod:`~repro.durability.checkpoint` — periodic, CRC-checked
  simulation snapshots and the :class:`Checkpointer` hook that writes
  them, so a day-long replay resumes from its last checkpoint instead
  of order zero;
* :mod:`~repro.durability.results` — a durable per-run result store
  next to the in-memory LRU, so finished runs stay queryable across
  restarts;
* :mod:`~repro.durability.locks` — advisory inter-process file locks
  (``fcntl.flock`` with a portable lock-file fallback and stale-lock
  takeover), so several serve processes sharing one oracle cache build
  each contraction exactly once.

Everything here is stdlib-only and deliberately independent of the
serving layer: the journal and checkpoint primitives are equally usable
from a plain ``repro run --resume`` on the command line.
"""

from .checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CheckpointError,
    Checkpointer,
    LoadedCheckpoint,
    RunCheckpoint,
    RunCursor,
    load_checkpoint,
    write_checkpoint,
)
from .journal import RunJournal, read_jsonl_tolerant
from .locks import InterProcessLock, LockTimeout
from .results import ResultStore

__all__ = [
    "DEFAULT_CHECKPOINT_INTERVAL",
    "CheckpointError",
    "Checkpointer",
    "InterProcessLock",
    "LoadedCheckpoint",
    "LockTimeout",
    "ResultStore",
    "RunCheckpoint",
    "RunCursor",
    "RunJournal",
    "load_checkpoint",
    "read_jsonl_tolerant",
    "write_checkpoint",
]
