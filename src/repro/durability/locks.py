"""Advisory inter-process file locks with stale-lock takeover.

Two serve processes sharing one ``--oracle-cache`` must build each CH
contraction exactly once.  :class:`InterProcessLock` is the mutual
exclusion for that: the winner builds while the loser blocks, then
warm-loads what the winner saved.

Two strategies, picked automatically:

``flock``
    ``fcntl.flock`` on a sidecar ``*.lock`` file.  The kernel releases
    the lock when the holder dies — even on ``kill -9`` — so there is
    no stale state to reason about.  Used wherever :mod:`fcntl` exists
    (Linux, macOS).

``lockfile``
    Portable fallback: atomic ``O_CREAT | O_EXCL`` creation of the lock
    file, holder pid + host written inside, and a daemon heartbeat
    thread touching the file's mtime every ``heartbeat`` seconds.  A
    waiter that finds the mtime older than ``stale_after`` declares the
    holder dead and takes the lock over (atomically, via rename), so a
    SIGKILL'd builder cannot wedge the cache forever.

Both paths time out with :class:`LockTimeout` rather than blocking
unboundedly, and both fire the ``cache.lock`` fault point on each
acquire so chaos schedules can starve or fail lock acquisition
deterministically.
"""

from __future__ import annotations

import errno
import os
import socket
import threading
import time
from pathlib import Path

from ..exceptions import ReproError
from ..resilience.faults import fault_point

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Seconds between heartbeat touches in lockfile mode.
DEFAULT_HEARTBEAT = 0.5
#: Heartbeat age after which a lockfile-mode holder is presumed dead.
DEFAULT_STALE_AFTER = 10.0
#: Poll interval while waiting for a busy lock.
_POLL_SECONDS = 0.05


class LockTimeout(ReproError):
    """The lock stayed busy for longer than the acquire timeout."""


class InterProcessLock:
    """Advisory cross-process lock on a sidecar file.

    Parameters
    ----------
    path:
        The lock file itself (conventionally ``<protected>.lock``).
    timeout:
        Seconds to wait for a busy lock before :class:`LockTimeout`
        (``None`` = wait forever).
    strategy:
        ``"flock"``, ``"lockfile"``, or ``None`` to pick ``flock``
        when available.  Tests force ``"lockfile"`` to exercise the
        portable path and its stale takeover on any platform.
    heartbeat / stale_after:
        Lockfile-mode liveness tuning; ignored under ``flock`` (the
        kernel handles holder death there).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout: float | None = 60.0,
        strategy: str | None = None,
        heartbeat: float = DEFAULT_HEARTBEAT,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        if strategy is None:
            strategy = "flock" if fcntl is not None else "lockfile"
        if strategy not in ("flock", "lockfile"):
            raise ValueError(f"unknown lock strategy {strategy!r}")
        if strategy == "flock" and fcntl is None:
            raise ValueError("flock strategy requires the fcntl module")
        if heartbeat <= 0 or stale_after <= 0:
            raise ValueError("heartbeat and stale_after must be positive")
        self.path = Path(path)
        self.strategy = strategy
        self.timeout = timeout
        self.heartbeat = heartbeat
        self.stale_after = stale_after
        #: Whether this acquire evicted a stale holder (lockfile mode).
        self.took_over_stale = False
        self._fd: int | None = None
        self._heartbeat_stop: threading.Event | None = None
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "InterProcessLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._fd is not None

    # ------------------------------------------------------------------
    # acquire / release
    # ------------------------------------------------------------------
    def acquire(self) -> None:
        if self._fd is not None:
            raise ReproError(f"lock {self.path} is already held by this handle")
        fault_point("cache.lock")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        if self.strategy == "flock":
            self._acquire_flock(deadline)
        else:
            self._acquire_lockfile(deadline)

    def release(self) -> None:
        if self._fd is None:
            return
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
            self._heartbeat_stop = None
            self._heartbeat_thread = None
        fd, self._fd = self._fd, None
        if self.strategy == "flock":
            # Closing the descriptor drops the flock atomically.
            os.close(fd)
        else:
            os.close(fd)
            # Unlinking frees waiters without waiting out a poll cycle;
            # a concurrent takeover may have renamed it already.
            try:
                self.path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # flock strategy
    # ------------------------------------------------------------------
    def _acquire_flock(self, deadline: float | None) -> None:
        assert fcntl is not None
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError as exc:
                    if exc.errno not in (errno.EACCES, errno.EAGAIN):
                        raise
                    self._wait_or_timeout(deadline)
            os.ftruncate(fd, 0)
            os.write(fd, self._holder_tag())
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd

    # ------------------------------------------------------------------
    # lockfile strategy
    # ------------------------------------------------------------------
    def _acquire_lockfile(self, deadline: float | None) -> None:
        while True:
            try:
                fd = os.open(
                    self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if self._takeover_if_stale():
                    continue
                self._wait_or_timeout(deadline)
                continue
            os.write(fd, self._holder_tag())
            os.fsync(fd)
            self._fd = fd
            self._start_heartbeat()
            return

    def _takeover_if_stale(self) -> bool:
        """Evict a holder whose heartbeat stopped; returns whether evicted."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return True  # holder released between our check and stat
        if age < self.stale_after:
            return False
        # Rename-then-unlink: of several concurrent waiters, exactly one
        # wins the rename; the losers see FileNotFoundError and retry.
        tombstone = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}"
        )
        try:
            self.path.rename(tombstone)
        except OSError:
            return True  # someone else took it over; retry the create
        tombstone.unlink(missing_ok=True)
        self.took_over_stale = True
        return True

    def _start_heartbeat(self) -> None:
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat):
                try:
                    os.utime(self.path)
                except OSError:
                    return  # lock file gone (takeover/release) — stop quietly

        thread = threading.Thread(
            target=beat, name=f"lock-heartbeat-{self.path.name}", daemon=True
        )
        thread.start()
        self._heartbeat_stop = stop
        self._heartbeat_thread = thread

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _holder_tag(self) -> bytes:
        return f"{os.getpid()}@{socket.gethostname()}\n".encode("utf-8")

    def _wait_or_timeout(self, deadline: float | None) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise LockTimeout(
                f"lock {self.path} stayed busy for {self.timeout:.1f}s"
            )
        time.sleep(_POLL_SECONDS)
