"""The value network and the learned threshold provider (Section VI).

``ValueNetwork`` bundles the main network ``V`` and its delayed copy
``V_hat`` (the target network) and implements the combined loss

    loss = omega * loss_td + (1 - omega) * loss_tg

where ``loss_td`` is the mean-squared TD error with Bellman targets

    target = reward                              (terminal step)
    target = reward + gamma^dt * V_hat(s')       (wait step)

and ``loss_tg = (p - theta* - V(s))^2`` anchors the value function to
the distribution-fitted threshold of Section V so it can be used
directly in Algorithm 2 via ``theta(i) = p(i) - V(s_i)``.

``ValueThresholdProvider`` adapts a trained network to the
:class:`~repro.core.strategies.ThresholdProvider` protocol: it is bound
to the live pool and fleet so the demand/supply parts of the state are
taken from the current spatio-temporal environment at decision time.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from ..compat import np
from ..config import LearningConfig
from ..core.state import StateEncoder
from ..exceptions import LearningError
from .mlp import MLP
from .replay import Transition

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pool import OrderPool
    from ..model.order import Order
    from ..simulation.fleet import WorkerFleet


class ValueNetwork:
    """Main + target network pair with the paper's combined loss."""

    def __init__(self, input_dim: int, config: LearningConfig) -> None:
        self._config = config
        self._main = MLP(
            input_dim,
            hidden_sizes=config.hidden_sizes,
            learning_rate=config.learning_rate,
            seed=config.seed,
        )
        self._target = MLP(
            input_dim,
            hidden_sizes=config.hidden_sizes,
            learning_rate=config.learning_rate,
            seed=config.seed + 1,
        )
        self._target.copy_from(self._main)
        self._updates = 0

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    @property
    def config(self) -> LearningConfig:
        """Hyper-parameters used for training."""
        return self._config

    @property
    def main(self) -> MLP:
        """The main network ``V``."""
        return self._main

    @property
    def target(self) -> MLP:
        """The delayed target network ``V_hat``."""
        return self._target

    def value(self, state: np.ndarray) -> float:
        """``V(s)`` from the main network."""
        return self._main.predict_one(state)

    def values(self, states: np.ndarray) -> np.ndarray:
        """Batch of ``V(s)`` predictions."""
        return self._main.predict(states)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_on_batch(self, batch: Sequence[Transition]) -> float:
        """One gradient step on a replay batch; returns the combined loss."""
        if not batch:
            raise LearningError("cannot train on an empty batch")
        states = np.vstack([transition.state for transition in batch])
        targets = np.array([self._combined_target(t) for t in batch])
        loss = self._main.train_batch(states, targets)
        self._updates += 1
        if self._updates % self._config.target_sync_period == 0:
            self.sync_target()
        return loss

    def sync_target(self) -> None:
        """Copy the main network's parameters into the target network."""
        self._target.copy_from(self._main)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _combined_target(self, transition: Transition) -> float:
        td_target = self._td_target(transition)
        omega = self._config.loss_weight
        if transition.target_threshold is None:
            return td_target
        anchor = transition.penalty - transition.target_threshold
        # Training towards the omega-weighted blend of the two targets
        # minimises the weighted sum of the two squared losses up to a
        # constant, which is how the combined objective is realised with
        # a single regression head.
        return omega * td_target + (1.0 - omega) * anchor

    def _td_target(self, transition: Transition) -> float:
        if transition.done or transition.next_state is None:
            return transition.reward
        bootstrap = self._target.predict_one(transition.next_state)
        return transition.reward + self._config.discount * bootstrap


class ValueThresholdProvider:
    """Threshold provider computing ``theta(i) = p(i) - V(s_i)`` online.

    Parameters
    ----------
    network:
        A trained :class:`ValueNetwork`.
    encoder:
        State encoder matching the one used during training.
    fallback:
        Threshold returned when the provider has not been bound to a
        pool / fleet yet (e.g. during unit tests).
    """

    def __init__(
        self,
        network: ValueNetwork,
        encoder: StateEncoder,
        fallback: float = 0.0,
    ) -> None:
        self._network = network
        self._encoder = encoder
        self._fallback = fallback
        self._pool: "OrderPool | None" = None
        self._fleet: "WorkerFleet | None" = None

    def bind(self, pool: "OrderPool", fleet: "WorkerFleet") -> None:
        """Attach the live pool and fleet whose snapshots feed the state."""
        self._pool = pool
        self._fleet = fleet

    def threshold(self, order: "Order", now: float) -> float:
        """``theta(i) = p(i) - V(s_i)`` clipped into ``[0, p(i)]``."""
        state = self._encode(order, now)
        value = self._network.value(state)
        theta = order.penalty - value
        return float(min(max(theta, 0.0), order.penalty))

    def estimated_value(self, order: "Order", now: float) -> float:
        """Raw ``V(s_i)`` (useful for inspection and tests)."""
        return self._network.value(self._encode(order, now))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _encode(self, order: "Order", now: float) -> np.ndarray:
        if self._pool is None or self._fleet is None:
            pickups: list[int] = []
            dropoffs: list[int] = []
            idle: list[int] = []
        else:
            waiting = list(self._pool.pending_orders())
            pickups = [o.pickup for o in waiting]
            dropoffs = [o.dropoff for o in waiting]
            idle = self._fleet.idle_locations(now)
        return self._encoder.encode(order, now, pickups, dropoffs, idle).vector
