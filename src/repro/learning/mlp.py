"""A small fully-connected network with manual backpropagation.

The paper's value function ``V(s)`` is a neural network trained with a
mean-squared loss (Section VI-B).  Because this reproduction cannot rely
on a deep-learning framework being installed, the network is implemented
directly on numpy: ReLU hidden layers, a linear scalar output, Adam
updates and explicit forward/backward passes.  The feature
dimensionality here is a few hundred, so this is more than fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compat import np, require_numpy
from ..exceptions import LearningError


@dataclass
class _AdamState:
    """First/second moment accumulators of one parameter tensor."""

    m: np.ndarray
    v: np.ndarray


class MLP:
    """Multi-layer perceptron regression network ``R^d -> R``.

    Parameters
    ----------
    input_dim:
        Feature dimensionality.
    hidden_sizes:
        Widths of the hidden ReLU layers.
    learning_rate:
        Adam step size.
    seed:
        Seed of the (He) weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_sizes: tuple[int, ...] = (64, 32),
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> None:
        require_numpy("MLP (value-function training)")
        if input_dim <= 0:
            raise LearningError("input_dim must be positive")
        if not hidden_sizes:
            raise LearningError("at least one hidden layer is required")
        self._input_dim = input_dim
        self._learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        sizes = [input_dim, *hidden_sizes, 1]
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))
        self._adam_weights = [
            _AdamState(np.zeros_like(w), np.zeros_like(w)) for w in self._weights
        ]
        self._adam_biases = [
            _AdamState(np.zeros_like(b), np.zeros_like(b)) for b in self._biases
        ]
        self._adam_step = 0

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Expected feature dimensionality."""
        return self._input_dim

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Forward pass; accepts a single vector or a batch matrix."""
        batch = self._as_batch(features)
        activations, _ = self._forward(batch)
        return activations[-1].ravel()

    def predict_one(self, features: np.ndarray) -> float:
        """Scalar prediction for a single feature vector."""
        return float(self.predict(features)[0])

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train_batch(self, features: np.ndarray, targets: np.ndarray) -> float:
        """One Adam step on a batch; returns the mean-squared-error loss."""
        batch = self._as_batch(features)
        target = np.asarray(targets, dtype=float).reshape(-1, 1)
        if target.shape[0] != batch.shape[0]:
            raise LearningError("features and targets disagree on batch size")
        activations, pre_activations = self._forward(batch)
        predictions = activations[-1]
        errors = predictions - target
        loss = float(np.mean(errors**2))
        self._backward(batch, activations, pre_activations, errors)
        return loss

    # ------------------------------------------------------------------
    # parameter transfer (target network support)
    # ------------------------------------------------------------------
    def get_parameters(self) -> list[np.ndarray]:
        """Copies of all weight/bias tensors (weights first, then biases)."""
        return [w.copy() for w in self._weights] + [b.copy() for b in self._biases]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        """Load parameters previously produced by :meth:`get_parameters`."""
        count = len(self._weights)
        if len(parameters) != 2 * count:
            raise LearningError("parameter list has the wrong length")
        for index in range(count):
            if parameters[index].shape != self._weights[index].shape:
                raise LearningError("weight tensor shape mismatch")
            self._weights[index] = parameters[index].copy()
        for index in range(count):
            source = parameters[count + index]
            if source.shape != self._biases[index].shape:
                raise LearningError("bias tensor shape mismatch")
            self._biases[index] = source.copy()

    def copy_from(self, other: "MLP") -> None:
        """Copy all parameters from another network of identical shape."""
        self.set_parameters(other.get_parameters())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _as_batch(self, features: np.ndarray) -> np.ndarray:
        data = np.asarray(features, dtype=float)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if data.shape[1] != self._input_dim:
            raise LearningError(
                f"expected feature dimension {self._input_dim}, got {data.shape[1]}"
            )
        return data

    def _forward(
        self, batch: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations = [batch]
        pre_activations = []
        current = batch
        last = len(self._weights) - 1
        for index, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            z = current @ weight + bias
            pre_activations.append(z)
            current = z if index == last else np.maximum(z, 0.0)
            activations.append(current)
        return activations, pre_activations

    def _backward(
        self,
        batch: np.ndarray,
        activations: list[np.ndarray],
        pre_activations: list[np.ndarray],
        errors: np.ndarray,
    ) -> None:
        batch_size = batch.shape[0]
        delta = 2.0 * errors / batch_size
        weight_grads: list[np.ndarray] = [np.empty(0)] * len(self._weights)
        bias_grads: list[np.ndarray] = [np.empty(0)] * len(self._biases)
        for index in range(len(self._weights) - 1, -1, -1):
            weight_grads[index] = activations[index].T @ delta
            bias_grads[index] = delta.sum(axis=0)
            if index > 0:
                delta = delta @ self._weights[index].T
                delta = delta * (pre_activations[index - 1] > 0.0)
        self._adam_step += 1
        for index in range(len(self._weights)):
            self._apply_adam(
                self._weights[index], weight_grads[index], self._adam_weights[index]
            )
            self._apply_adam(
                self._biases[index], bias_grads[index], self._adam_biases[index]
            )

    def _apply_adam(
        self, parameter: np.ndarray, gradient: np.ndarray, state: _AdamState
    ) -> None:
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        state.m = beta1 * state.m + (1.0 - beta1) * gradient
        state.v = beta2 * state.v + (1.0 - beta2) * gradient**2
        m_hat = state.m / (1.0 - beta1**self._adam_step)
        v_hat = state.v / (1.0 - beta2**self._adam_step)
        parameter -= self._learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)
