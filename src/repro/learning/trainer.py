"""Offline experience generation and value-function training (Section VI-B).

The paper's off-policy training pipeline is:

1. run the dispatch process on historical data using the threshold-based
   grouping strategy (seeded with the distribution-fitted thresholds of
   Section V) and record, for every order agent and every decision slot,
   the transition (state, action, reward, next state),
2. store the transitions in the replay memory,
3. train the value network on sampled batches with the combined
   TD + target loss, periodically syncing the target network.

``generate_experience`` implements step 1 by replaying a workload
through a fully instrumented :class:`WatterDispatcher`;
``ValueFunctionTrainer`` wraps steps 2-3 and produces the
:class:`ValueThresholdProvider` used online by WATTER-expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..compat import np
from ..config import LearningConfig, SimulationConfig
from ..core.state import StateEncoder
from ..core.strategies import ThresholdProvider
from ..core.watter import WatterDispatcher
from ..exceptions import LearningError
from ..network.grid import GridIndex
from ..routing.planner import RoutePlanner
from ..simulation.fleet import WorkerFleet
from .replay import ReplayMemory, Transition
from .value_function import ValueNetwork, ValueThresholdProvider

if TYPE_CHECKING:  # pragma: no cover
    from ..datasets.synthetic import Workload


@dataclass
class TrainingReport:
    """Diagnostics of one training run."""

    losses: list[float] = field(default_factory=list)
    transitions: int = 0
    epochs: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last training step (``nan`` if never trained)."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def mean_loss(self) -> float:
        """Mean loss across all training steps."""
        return float(np.mean(self.losses)) if self.losses else float("nan")


def generate_experience(
    workload: "Workload",
    config: SimulationConfig,
    encoder: StateEncoder,
    provider: ThresholdProvider,
    target_thresholds: dict[int, float] | None = None,
) -> list[Transition]:
    """Simulate the dispatch process and record per-agent transitions.

    Each periodic check is one decision slot.  An order that stays in
    the pool across a check contributes a *wait* transition with reward
    ``-delta_t``; an order dispatched at a check contributes a terminal
    *dispatch* transition with reward ``p - t_d``; an order rejected at
    a check contributes a terminal transition with reward 0 (the expiry
    case of the Bellman update).

    Parameters
    ----------
    workload:
        Historical orders/workers to replay.
    config:
        Simulation parameters (check period doubles as ``delta_t``).
    encoder:
        State featuriser (must match the online encoder).
    provider:
        Threshold provider steering the behaviour policy (usually the
        distribution-fitted :class:`~repro.core.threshold.ThresholdOptimizer`).
    target_thresholds:
        Optional per-order optimal thresholds ``theta*`` recorded into
        the transitions for the target loss.
    """
    planner = RoutePlanner(workload.network)
    fleet = WorkerFleet(
        [_clone_worker(worker) for worker in workload.workers],
        workload.network,
        GridIndex(workload.network, size=config.grid_size),
    )
    dispatcher = WatterDispatcher.expect(planner, fleet, config, provider)
    transitions: list[Transition] = []
    pending_states: dict[int, np.ndarray] = {}
    orders_by_id = {order.order_id: order for order in workload.orders}

    def snapshot_states(now: float) -> dict[int, np.ndarray]:
        waiting = list(dispatcher.pool.pending_orders())
        pickups = [order.pickup for order in waiting]
        dropoffs = [order.dropoff for order in waiting]
        idle = fleet.idle_locations(now)
        return {
            order.order_id: encoder.encode(order, now, pickups, dropoffs, idle).vector
            for order in waiting
        }

    def flush_decisions(result, now: float) -> None:
        next_states = snapshot_states(now)
        served_ids = {record.order.order_id for record in result.served}
        rejected_ids = {order.order_id for order in result.rejected}
        for order_id, state in pending_states.items():
            order = orders_by_id[order_id]
            target = (target_thresholds or {}).get(order_id)
            if order_id in served_ids:
                record = next(
                    rec for rec in result.served if rec.order.order_id == order_id
                )
                reward = order.penalty - record.detour_time
                transitions.append(
                    Transition(state, 1, reward, None, True, order.penalty, target)
                )
            elif order_id in rejected_ids:
                transitions.append(
                    Transition(state, 0, 0.0, None, True, order.penalty, target)
                )
            elif order_id in next_states:
                transitions.append(
                    Transition(
                        state,
                        0,
                        -config.time_slot,
                        next_states[order_id],
                        False,
                        order.penalty,
                        target,
                    )
                )
        pending_states.clear()
        pending_states.update(next_states)

    check_period = config.check_period
    next_check = check_period
    for order in workload.orders:
        release = order.release_time
        while next_check <= release:
            result = dispatcher.tick(next_check)
            flush_decisions(result, next_check)
            next_check += check_period
        dispatcher.submit(order, release)
        pending_states.update(snapshot_states(release))
    horizon_end = max(
        config.horizon,
        (workload.orders[-1].release_time if workload.orders else 0.0)
        + max((o.max_response_time for o in workload.orders), default=0.0),
    )
    while next_check <= horizon_end:
        result = dispatcher.tick(next_check)
        flush_decisions(result, next_check)
        next_check += check_period
    final = dispatcher.flush(horizon_end)
    flush_decisions(final, horizon_end)
    return transitions


class ValueFunctionTrainer:
    """Trains a :class:`ValueNetwork` from recorded transitions."""

    def __init__(self, encoder: StateEncoder, config: LearningConfig) -> None:
        self._encoder = encoder
        self._config = config
        self._network = ValueNetwork(encoder.dimension, config)
        self._memory = ReplayMemory(config.replay_capacity, seed=config.seed)

    @property
    def network(self) -> ValueNetwork:
        """The network being trained."""
        return self._network

    @property
    def memory(self) -> ReplayMemory:
        """The replay memory feeding the training batches."""
        return self._memory

    def add_experience(self, transitions: list[Transition]) -> None:
        """Push recorded transitions into the replay memory."""
        self._memory.extend(transitions)

    def train(self) -> TrainingReport:
        """Run the configured number of epochs over the replay memory."""
        if len(self._memory) == 0:
            raise LearningError("no experience collected; call add_experience first")
        report = TrainingReport(transitions=len(self._memory), epochs=self._config.epochs)
        steps_per_epoch = max(len(self._memory) // self._config.batch_size, 1)
        for _ in range(self._config.epochs):
            for _ in range(steps_per_epoch):
                batch = self._memory.sample(self._config.batch_size)
                loss = self._network.train_on_batch(batch)
                report.losses.append(loss)
        self._network.sync_target()
        return report

    def build_provider(self, fallback: float = 0.0) -> ValueThresholdProvider:
        """Wrap the trained network as an online threshold provider."""
        return ValueThresholdProvider(self._network, self._encoder, fallback=fallback)


def _clone_worker(worker):
    """Copy a worker so experience generation does not mutate the workload."""
    from ..model.worker import Worker

    return Worker(
        location=worker.location,
        capacity=worker.capacity,
        worker_id=worker.worker_id,
    )
