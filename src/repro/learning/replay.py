"""Replay memory for the DQN-style value-function training (Section VI-B).

Experience tuples ``(state, action, reward, next_state, done, penalty,
target_threshold)`` are stored in a bounded ring buffer and sampled
uniformly.  The extra ``penalty`` and ``target_threshold`` fields carry
the quantities needed by the paper's *target loss*
``(p - theta* - V(s))^2`` alongside the ordinary TD targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..compat import np
from ..exceptions import LearningError


@dataclass(frozen=True)
class Transition:
    """One agent decision step stored for training.

    Attributes
    ----------
    state:
        Feature vector of the state the decision was taken in.
    action:
        1 for dispatch, 0 for wait.
    reward:
        Immediate reward of the action (Section VI-A reward design).
    next_state:
        Feature vector after a wait action, ``None`` for terminal steps.
    done:
        Whether the agent's episode ended (dispatch or expiry).
    penalty:
        The order's rejection penalty ``p`` (for the target loss).
    target_threshold:
        The distribution-fitted optimal threshold ``theta*`` (for the
        target loss); ``None`` when no fit was available.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray | None
    done: bool
    penalty: float
    target_threshold: float | None = None


class ReplayMemory:
    """Bounded uniform-sampling experience buffer."""

    def __init__(self, capacity: int = 50_000, seed: int = 0) -> None:
        if capacity <= 0:
            raise LearningError("replay capacity must be positive")
        self._capacity = capacity
        self._buffer: list[Transition] = []
        self._cursor = 0
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def capacity(self) -> int:
        """Maximum number of stored transitions."""
        return self._capacity

    def push(self, transition: Transition) -> None:
        """Store a transition, evicting the oldest once full."""
        if len(self._buffer) < self._capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self._capacity

    def extend(self, transitions: list[Transition]) -> None:
        """Store several transitions."""
        for transition in transitions:
            self.push(transition)

    def sample(self, batch_size: int) -> list[Transition]:
        """Uniformly sample ``batch_size`` transitions (with replacement
        only if the buffer is smaller than the batch)."""
        if not self._buffer:
            raise LearningError("cannot sample from an empty replay memory")
        if batch_size <= len(self._buffer):
            return self._rng.sample(self._buffer, batch_size)
        return [self._rng.choice(self._buffer) for _ in range(batch_size)]

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._buffer.clear()
        self._cursor = 0
