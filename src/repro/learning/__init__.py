"""Offline reinforcement-learning estimation of the expected threshold."""

from .mlp import MLP
from .replay import ReplayMemory, Transition
from .value_function import ValueNetwork, ValueThresholdProvider
from .trainer import ValueFunctionTrainer, TrainingReport, generate_experience

__all__ = [
    "MLP",
    "ReplayMemory",
    "Transition",
    "ValueNetwork",
    "ValueThresholdProvider",
    "ValueFunctionTrainer",
    "TrainingReport",
    "generate_experience",
]
