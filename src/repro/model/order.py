"""Order entity (Definition 1) and its lifecycle bookkeeping.

An order ``o(i) = <l_p, l_d, c, t, tau, eta>`` asks for ``c`` riders to
travel from pickup node ``l_p`` to dropoff node ``l_d``; it is released
at ``t``, must be dropped off before the deadline ``tau`` and prefers an
answer within the watch window ``eta``.  The module also defines the
outcome record the simulator produces for every order (served or
rejected) from which all of the paper's metrics are computed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

_order_counter = itertools.count()


def _next_order_id() -> int:
    return next(_order_counter)


class OrderStatus(enum.Enum):
    """Lifecycle states of an order inside the platform."""

    PENDING = "pending"      # released, waiting in the pool
    DISPATCHED = "dispatched"  # grouped and assigned to a worker
    COMPLETED = "completed"    # dropped off
    REJECTED = "rejected"      # expired / could not be served


@dataclass
class Order:
    """A ride request.

    Attributes
    ----------
    pickup, dropoff:
        Road-network node ids of the pickup and dropoff locations.
    release_time:
        Timestamp (seconds) at which the order enters the platform.
    shortest_time:
        ``cost(l_p, l_d)``: the shortest travel time of the trip alone.
        Deadlines, watch windows and penalties are all multiples of it.
    deadline:
        Latest permissible dropoff time ``tau`` (absolute seconds).
    wait_limit:
        Preferred maximum waiting time ``eta`` (relative seconds); the
        platform may keep an order past it only to dispatch immediately,
        otherwise the order is rejected (Definition 1 discussion).
    riders:
        Number of passengers ``c`` in the request.
    order_id:
        Unique identifier; auto-assigned if not provided.
    """

    pickup: int
    dropoff: int
    release_time: float
    shortest_time: float
    deadline: float
    wait_limit: float
    riders: int = 1
    order_id: int = field(default_factory=_next_order_id)
    status: OrderStatus = OrderStatus.PENDING

    def __post_init__(self) -> None:
        if self.riders < 1:
            raise ConfigurationError("an order must carry at least one rider")
        if self.shortest_time < 0:
            raise ConfigurationError("shortest_time must be non-negative")
        if self.deadline < self.release_time:
            raise ConfigurationError("deadline must not precede the release time")
        if self.wait_limit < 0:
            raise ConfigurationError("wait_limit must be non-negative")

    # ------------------------------------------------------------------
    # derived quantities used throughout the paper
    # ------------------------------------------------------------------
    @property
    def max_response_time(self) -> float:
        """``max t_r = tau - t - cost(l_p, l_d)`` (Section II-B).

        Waiting longer than this necessarily violates the deadline, so it
        doubles as the rejection penalty ``p(i)``.
        """
        return max(self.deadline - self.release_time - self.shortest_time, 0.0)

    @property
    def penalty(self) -> float:
        """Rejection penalty ``p(i)`` (set to the maximum response time)."""
        return self.max_response_time

    @property
    def timeout_time(self) -> float:
        """Absolute time at which the watch window ``eta`` elapses."""
        return self.release_time + self.wait_limit

    def slack_at(self, now: float) -> float:
        """Remaining scheduling slack if dispatched alone at ``now``."""
        return self.deadline - now - self.shortest_time

    def is_expired(self, now: float) -> bool:
        """Whether the order can no longer meet its deadline even alone."""
        return self.slack_at(now) < 0

    def __hash__(self) -> int:
        return hash(self.order_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Order):
            return NotImplemented
        return self.order_id == other.order_id


@dataclass(frozen=True)
class OrderOutcome:
    """Final accounting record of one order after the simulation.

    ``extra_time`` is ``alpha * detour + beta * response`` for served
    orders; rejected orders instead contribute their ``penalty`` to the
    objective (Definition 7).
    """

    order_id: int
    served: bool
    response_time: float = 0.0
    detour_time: float = 0.0
    extra_time: float = 0.0
    penalty: float = 0.0
    group_size: int = 0
    worker_id: int | None = None
    dispatch_time: float | None = None

    def objective_contribution(self) -> float:
        """The order's term in the METRS objective (Equation 2)."""
        return self.extra_time if self.served else self.penalty
