"""Domain entities: orders, workers, groups, routes."""

from .order import Order, OrderStatus, OrderOutcome
from .worker import Worker, WorkerStatus
from .group import Group
from .route import Route, RouteStop, StopKind

__all__ = [
    "Order",
    "OrderStatus",
    "OrderOutcome",
    "Worker",
    "WorkerStatus",
    "Group",
    "Route",
    "RouteStop",
    "StopKind",
]
