"""Order group entity with extra-time accounting.

A group ``g = {o_1 ... o_k}`` bundles orders that can share a feasible
route.  The group keeps the route that realises the smallest total
travel cost for its members plus the group expiration time ``tau_g``
(Equation 3), and can compute the average extra time its members would
incur if the group were dispatched *now* — the quantity Algorithm 2
compares against the average expected threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..config import ExtraTimeWeights
from ..exceptions import RoutingError

if TYPE_CHECKING:  # pragma: no cover - type-checking only
    from .order import Order
    from .route import Route


@dataclass
class Group:
    """A shareable order group together with its best feasible route.

    Attributes
    ----------
    orders:
        The member orders (at least one).
    route:
        A feasible route serving all members.
    created_at:
        Timestamp at which the group was formed (used for bookkeeping,
        not for cost computation).
    """

    orders: tuple["Order", ...]
    route: "Route"
    created_at: float = 0.0
    weights: ExtraTimeWeights = field(default_factory=ExtraTimeWeights)

    def __post_init__(self) -> None:
        if not self.orders:
            raise RoutingError("a group needs at least one order")
        route_orders = set(self.route.order_ids())
        member_ids = {order.order_id for order in self.orders}
        if route_orders != member_ids:
            raise RoutingError(
                "route orders and group members disagree: "
                f"route={sorted(route_orders)} members={sorted(member_ids)}"
            )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.orders)

    def order_ids(self) -> frozenset[int]:
        """Member order ids as a frozen set (usable as a dict key)."""
        return frozenset(order.order_id for order in self.orders)

    def total_riders(self) -> int:
        """Total riders across all member orders."""
        return sum(order.riders for order in self.orders)

    def contains(self, order_id: int) -> bool:
        """Whether the group includes the given order."""
        return any(order.order_id == order_id for order in self.orders)

    # ------------------------------------------------------------------
    # time accounting
    # ------------------------------------------------------------------
    def response_time(self, order: "Order", dispatch_time: float) -> float:
        """Definition 4: waiting time from release to dispatch notification."""
        return max(dispatch_time - order.release_time, 0.0)

    def detour_time(self, order: "Order") -> float:
        """Definition 5 for one member order."""
        return self.route.detour_time(order)

    def extra_time(self, order: "Order", dispatch_time: float) -> float:
        """Definition 6: ``alpha * t_d + beta * t_r`` for one member."""
        return (
            self.weights.alpha * self.detour_time(order)
            + self.weights.beta * self.response_time(order, dispatch_time)
        )

    def average_extra_time(self, dispatch_time: float) -> float:
        """Mean extra time over the members if dispatched at ``dispatch_time``."""
        total = sum(self.extra_time(order, dispatch_time) for order in self.orders)
        return total / len(self.orders)

    def total_extra_time(self, dispatch_time: float) -> float:
        """Sum of member extra times if dispatched at ``dispatch_time``."""
        return sum(self.extra_time(order, dispatch_time) for order in self.orders)

    def expiration_time(self, dispatch_time: float) -> float:
        """Equation 3: ``tau_g = min_i (tau_i - t_i - T(L^{(i)}) - t_r^{(i)})``.

        Expressed as an *absolute* timestamp: the latest time at which
        the group's route can still start (at its first stop) without
        violating any member's deadline.
        """
        latest_start = min(
            order.deadline - self.route.sub_route_time(order.order_id)
            for order in self.orders
        )
        return latest_start

    def earliest_timeout(self) -> float:
        """The earliest watch-window expiry among the members (Alg. 2, line 1)."""
        return min(order.timeout_time for order in self.orders)

    def is_feasible_at(self, start_time: float) -> bool:
        """Whether starting the route at ``start_time`` meets every deadline."""
        return start_time <= self.expiration_time(start_time)

    # ------------------------------------------------------------------
    # comparison helpers for best-group maintenance
    # ------------------------------------------------------------------
    def quality_key(self, dispatch_time: float) -> tuple[float, int]:
        """Sort key used to pick the *best* group of an order.

        Smaller average extra time is better; ties are broken towards
        larger groups (more sharing for the same rider cost).
        """
        return (self.average_extra_time(dispatch_time), -len(self.orders))

    @staticmethod
    def better_of(
        first: "Group | None", second: "Group | None", dispatch_time: float
    ) -> "Group | None":
        """Return the better of two optional groups at ``dispatch_time``."""
        if first is None:
            return second
        if second is None:
            return first
        if second.quality_key(dispatch_time) < first.quality_key(dispatch_time):
            return second
        return first


def orders_by_id(orders: Iterable["Order"]) -> dict[int, "Order"]:
    """Index a collection of orders by their id."""
    return {order.order_id: order for order in orders}
