"""Route entity (Definition 3) with per-order cost accounting.

A route is an ordered sequence of stops; each stop is either a pickup or
a dropoff of some order.  ``Route`` pre-computes, for each order, the
travel time of the sub-route from the first stop through its pickup to
its dropoff (``T(L^{(i)})`` in the paper), which is what the detour-time
definition (Definition 5) and the deadline constraint (Definition 7,
constraint 2) are expressed in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence, TYPE_CHECKING

from ..exceptions import RoutingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..network.graph import RoadNetwork
    from .order import Order


class StopKind(enum.Enum):
    """Whether a route stop picks a rider up or drops them off."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True)
class RouteStop:
    """One stop of a route: a location visited for a specific order."""

    node: int
    order_id: int
    kind: StopKind


class Route:
    """An ordered sequence of stops with cached leg travel times.

    Parameters
    ----------
    stops:
        The stop sequence.  The first stop's node is where the assigned
        worker starts serving (the worker must first drive there from
        its own location; that approach leg is accounted separately by
        the simulator).
    network:
        Road network used to price the legs.
    """

    def __init__(self, stops: Sequence[RouteStop], network: "RoadNetwork") -> None:
        if not stops:
            raise RoutingError("a route needs at least one stop")
        self._stops = tuple(stops)
        self._network = network
        self._leg_times: list[float] = []
        self._cumulative: list[float] = [0.0]
        for previous, current in zip(self._stops, self._stops[1:]):
            leg = network.travel_time(previous.node, current.node)
            self._leg_times.append(leg)
            self._cumulative.append(self._cumulative[-1] + leg)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def stops(self) -> tuple[RouteStop, ...]:
        """The stop sequence."""
        return self._stops

    @property
    def start_node(self) -> int:
        """Node of the first stop."""
        return self._stops[0].node

    @property
    def end_node(self) -> int:
        """Node of the last stop."""
        return self._stops[-1].node

    def __len__(self) -> int:
        return len(self._stops)

    def order_ids(self) -> list[int]:
        """Distinct order ids touched by the route, in first-visit order."""
        seen: list[int] = []
        for stop in self._stops:
            if stop.order_id not in seen:
                seen.append(stop.order_id)
        return seen

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    @property
    def total_travel_time(self) -> float:
        """``T(L)``: the sum of all leg travel times."""
        return self._cumulative[-1]

    def time_to_stop(self, index: int) -> float:
        """Travel time from the first stop to the stop at ``index``."""
        return self._cumulative[index]

    def pickup_index(self, order_id: int) -> int:
        """Index of the pickup stop of an order."""
        for idx, stop in enumerate(self._stops):
            if stop.order_id == order_id and stop.kind is StopKind.PICKUP:
                return idx
        raise RoutingError(f"order {order_id} has no pickup stop on this route")

    def dropoff_index(self, order_id: int) -> int:
        """Index of the dropoff stop of an order."""
        for idx, stop in enumerate(self._stops):
            if stop.order_id == order_id and stop.kind is StopKind.DROPOFF:
                return idx
        raise RoutingError(f"order {order_id} has no dropoff stop on this route")

    def sub_route_time(self, order_id: int) -> float:
        """``T(L^{(i)})``: travel time from the first stop to the order's dropoff."""
        return self.time_to_stop(self.dropoff_index(order_id))

    def onboard_time(self, order_id: int) -> float:
        """Time the order's riders spend in the vehicle."""
        return self.time_to_stop(self.dropoff_index(order_id)) - self.time_to_stop(
            self.pickup_index(order_id)
        )

    def detour_time(self, order: "Order") -> float:
        """Definition 5: ``t_d = T(L^{(i)}) - cost(l_p, l_d)``.

        Clamped at zero to absorb floating-point noise on routes where
        the order rides its own shortest path.
        """
        return max(self.sub_route_time(order.order_id) - order.shortest_time, 0.0)

    def max_onboard_riders(self, orders: Iterable["Order"]) -> int:
        """Largest number of riders simultaneously on board along the route."""
        riders_by_order = {order.order_id: order.riders for order in orders}
        on_board = 0
        peak = 0
        for stop in self._stops:
            riders = riders_by_order.get(stop.order_id, 0)
            if stop.kind is StopKind.PICKUP:
                on_board += riders
                peak = max(peak, on_board)
            else:
                on_board -= riders
        return peak

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{stop.kind.value[0]}{stop.order_id}@{stop.node}" for stop in self._stops
        ]
        return f"Route({' -> '.join(parts)}, T={self.total_travel_time:.0f}s)"
