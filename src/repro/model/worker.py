"""Worker (vehicle) entity of Definition 2.

A worker ``w(j) = <l, k, a>`` has a current location, a capacity and an
availability flag.  In the paper a worker serves exactly one order group
at a time (Definition 2), so the simulator models the busy period as an
interval ``[busy_from, busy_until]`` during which the worker drives the
group's route and then becomes idle at the route's final stop.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError

_worker_counter = itertools.count()


def _next_worker_id() -> int:
    return next(_worker_counter)


class WorkerStatus(enum.Enum):
    """Availability states of a worker."""

    IDLE = "idle"
    BUSY = "busy"


@dataclass
class Worker:
    """A vehicle that can serve one order group at a time.

    Attributes
    ----------
    location:
        Current road-network node.  While busy this is the node the
        worker will occupy when it becomes idle again (the last stop of
        the assigned route).
    capacity:
        Maximum number of riders on board at any moment.
    worker_id:
        Unique identifier; auto-assigned if not provided.
    """

    location: int
    capacity: int
    worker_id: int = field(default_factory=_next_worker_id)
    status: WorkerStatus = WorkerStatus.IDLE
    busy_until: float = 0.0
    served_groups: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("worker capacity must be at least 1")

    @property
    def is_idle(self) -> bool:
        """Whether the worker can accept a new order group right now."""
        return self.status is WorkerStatus.IDLE

    def assign(self, end_location: int, finish_time: float) -> None:
        """Mark the worker busy until ``finish_time`` ending at ``end_location``.

        Raises
        ------
        ConfigurationError
            If the worker is already busy; the paper's model never
            assigns a second group to a busy worker.
        """
        if not self.is_idle:
            raise ConfigurationError(
                f"worker {self.worker_id} is busy until {self.busy_until}"
            )
        self.status = WorkerStatus.BUSY
        self.busy_until = finish_time
        self.location = end_location
        self.served_groups += 1

    def release_if_done(self, now: float) -> bool:
        """Return the worker to the idle pool once its route has finished."""
        if self.status is WorkerStatus.BUSY and now >= self.busy_until:
            self.status = WorkerStatus.IDLE
            return True
        return False

    def clone(self) -> "Worker":
        """A fresh idle copy of this worker (same id, location, capacity).

        Experiment sweeps run several algorithms over the same workload;
        cloning the fleet per run keeps the runs independent.
        """
        return Worker(
            location=self.location,
            capacity=self.capacity,
            worker_id=self.worker_id,
        )

    def __hash__(self) -> int:
        return hash(self.worker_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Worker):
            return NotImplemented
        return self.worker_id == other.worker_id
