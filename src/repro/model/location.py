"""Lightweight location value object.

Most of the library works directly with road-network node ids, but the
dataset generators and the I/O layer need to carry coordinates alongside
the node id (e.g. when exporting a workload to CSV).  ``Location`` keeps
the two together without forcing every call site to look coordinates up
again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """A road-network node together with its planar coordinates."""

    node: int
    x: float
    y: float

    def euclidean_distance(self, other: "Location") -> float:
        """Straight-line distance to another location (coordinate units)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[int, float, float]:
        """Return ``(node, x, y)``, convenient for CSV writers."""
        return (self.node, self.x, self.y)
