"""Pluggable result sinks: simulation events as flat JSON-able records.

A sink is just a :class:`~repro.simulation.hooks.SimulationHooks`
observer that normalises every event into one flat dictionary and does
something durable with it.  :class:`EventRecorder` implements the
normalisation once; concrete sinks override :meth:`~EventRecorder.emit`:

* :class:`JsonlSink` appends one JSON line per event to a file — a
  machine-readable run trace.  It is deliberately usable *outside* the
  server too: pass one straight to ``repro.api.run_scenario(spec,
  hooks=JsonlSink("trace.jsonl"))`` and the file carries the run-start
  spec echo, every arrival/check/assignment, and the run-end summary.
* :class:`MemorySink` keeps the events in a bounded in-process list —
  the store behind the service's ``GET /runs/<id>`` event view.

Sinks are thread-safe (one lock around ``emit``) so a single sink
instance can absorb several concurrent served runs; give each event a
``run_id`` via the constructor's ``context`` to keep interleaved runs
separable, or use one sink per run as the service does.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, IO, Mapping, TYPE_CHECKING

from ..simulation.hooks import SimulationHooks

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from ..simulation.dispatcher import ServedOrder


class EventRecorder(SimulationHooks):
    """Normalises every hook event into one flat JSON-able dict.

    Parameters
    ----------
    context:
        Extra key/values stamped onto every event (the service uses
        ``{"run_id": ...}``); must be JSON-able.
    """

    def __init__(self, context: Mapping[str, Any] | None = None) -> None:
        self._context = dict(context) if context else {}
        self._emit_lock = threading.Lock()

    # ------------------------------------------------------------------
    # the one method sinks implement
    # ------------------------------------------------------------------
    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover
        """Handle one normalised event (called with the sink lock held)."""
        raise NotImplementedError

    def _record(self, event: dict[str, Any]) -> None:
        if self._context:
            event = {**self._context, **event}
        with self._emit_lock:
            self.emit(event)

    # ------------------------------------------------------------------
    # hook protocol -> flat events
    # ------------------------------------------------------------------
    def on_run_start(self, info: Mapping[str, Any]) -> None:
        self._record({"event": "run_start", **info})

    def on_order_arrival(self, order: "Order", now: float) -> None:
        self._record(
            {
                "event": "order_arrival",
                "now": now,
                "order_id": order.order_id,
                "pickup": order.pickup,
                "dropoff": order.dropoff,
                "release_time": order.release_time,
                "deadline": order.deadline,
                "riders": order.riders,
            }
        )

    def on_periodic_check(self, now: float) -> None:
        self._record({"event": "periodic_check", "now": now})

    def on_assign(self, served: "ServedOrder") -> None:
        self._record(
            {
                "event": "assign",
                "order_id": served.order.order_id,
                "worker_id": served.worker_id,
                "dispatch_time": served.dispatch_time,
                "response_time": served.response_time,
                "detour_time": served.detour_time,
                "group_size": served.group_size,
            }
        )

    def on_run_end(self, info: Mapping[str, Any]) -> None:
        self._record({"event": "run_end", **info})


class JsonlSink(EventRecorder):
    """Streams events to a JSONL file, one JSON object per line.

    The file is opened lazily on the first event, and every event is
    written as one ``write + flush + fsync`` unit, so the trace a
    crashed (even ``kill -9``'d) process leaves behind contains every
    event it reported — at worst the final line is torn mid-write,
    which :func:`read_trace` tolerates by dropping it.  Pass
    ``fsync=False`` to trade that durability for throughput (events
    then reach the OS on ``flush`` but the disk at its leisure).
    Use as a context manager (or call :meth:`close`) to release the
    file handle deterministically.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        context: Mapping[str, Any] | None = None,
        fsync: bool = True,
    ) -> None:
        super().__init__(context)
        self.path = Path(path)
        self._fsync = fsync
        self._file: IO[str] | None = None

    def emit(self, event: dict[str, Any]) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
        self._file.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._emit_lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read a :class:`JsonlSink` trace, tolerating a torn final line.

    A process killed mid-write leaves at most one partial trailing
    line; this reader (the journal layer's tolerant JSONL reader)
    yields every complete event and silently drops the torn tail, so
    crash post-mortems never trip over the crash's own artifact.
    Returns ``[]`` for a missing file.
    """
    from ..durability.journal import read_jsonl_tolerant

    return list(read_jsonl_tolerant(path))


class MemorySink(EventRecorder):
    """Keeps events in memory, bounded to the most recent ``max_events``.

    The service attaches one per run so ``GET /runs/<id>`` can show the
    run's progress stream; the bound keeps a day-long replay from
    holding every arrival event forever (the earliest events are
    dropped first, and ``dropped_events`` says how many).
    """

    def __init__(
        self,
        *,
        max_events: int | None = 10_000,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(context)
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be at least 1 (or None)")
        self._max_events = max_events
        self._events: list[dict[str, Any]] = []
        self.dropped_events = 0

    def emit(self, event: dict[str, Any]) -> None:
        self._events.append(event)
        if self._max_events is not None and len(self._events) > self._max_events:
            overflow = len(self._events) - self._max_events
            del self._events[:overflow]
            self.dropped_events += overflow

    @property
    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the retained events (oldest first)."""
        with self._emit_lock:
            return list(self._events)
