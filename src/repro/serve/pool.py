"""Shared pool of prepared Sessions, keyed by network + oracle identity.

A resident service amortises exactly what a :class:`repro.api.Session`
memoises — road networks, generated workloads, threshold providers and
above all the distance oracle, whose preprocessing (CH contraction,
dense matrix rows) dominates cold-start time.  The pool extends that
amortisation *across requests*: every scenario that names the same
network source and the same oracle configuration lands on one pooled
session, so two concurrent requests for the same city build the oracle
exactly once (the second blocks on the session lock and reuses it —
``Session.oracle_builds`` stays at one, which the service tests
assert).

Scenarios that differ only in workload shape, algorithm or dispatch
settings still share a pooled session when their *network and oracle*
identity matches; the session's own memoisation keys keep their
workloads apart.  The seed *is* part of the identity — network
generation (grid jitter, dataset city sampling) is seeded, so a
different seed is a different graph and a different oracle.  The pool is LRU-bounded: evicting a session drops its
in-memory preparation, while any on-disk oracle cache
(``oracle_cache_dir``) keeps even a re-built session warm.

Each pool entry additionally carries a
:class:`~repro.resilience.degradation.CircuitBreaker`: a session whose
preparation keeps failing (an unreadable dataset, a poisoned cache
directory) is quarantined, and while its breaker is open every request
for that identity is refused immediately with a structured
:class:`~repro.resilience.degradation.CircuitOpenError` instead of
burning an executor slot on a preparation that is known to fail.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..api import ScenarioSpec, Session
from ..resilience.degradation import CircuitBreaker, CircuitOpenError, OPEN

#: Default bound on resident sessions (each may hold a prepared oracle
#: and a handful of memoised workloads).
DEFAULT_MAX_SESSIONS = 8


def pool_key(spec: ScenarioSpec) -> tuple:
    """The identity under which a spec's prepared state is shareable.

    Everything that determines *which network object* is built and
    *which oracle* is attached to it: the network source (dataset
    preset or grid shape), the resolved seed (networks are generated
    from it), and the resolved oracle backend with every option that
    :func:`~repro.network.oracle.configure_oracle` compares before
    reusing an attached oracle.  Fields that only shape the workload or
    the dispatch (order counts, algorithm, dispatch workers) are
    deliberately absent — they share the pooled session.
    """
    config = spec.config()
    if spec.network == "dataset":
        network_part: tuple = ("dataset", spec.dataset)
    else:
        network_part = (
            "grid",
            spec.grid_rows,
            spec.grid_cols,
            spec.grid_edge_travel_time,
            spec.grid_jitter,
        )
    return (
        network_part,
        config.seed,
        config.oracle_backend,
        config.oracle_cache_size,
        config.oracle_landmarks,
        config.oracle_witness_hops,
        config.oracle_cache_dir,
    )


class SessionPool:
    """Thread-safe LRU pool of prepared :class:`~repro.api.Session` objects.

    Parameters
    ----------
    max_sessions:
        Resident-session bound; the least recently used session is
        evicted beyond it.
    oracle_cache_dir:
        Default on-disk oracle cache handed to every pooled session
        (individual specs may still override it).
    breaker_threshold / breaker_reset_seconds:
        Consecutive preparation failures that quarantine one pool
        entry, and how long the quarantine lasts before a half-open
        probe is allowed through.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        *,
        oracle_cache_dir: str | None = None,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self._max_sessions = max_sessions
        self._oracle_cache_dir = oracle_cache_dir
        self._breaker_threshold = breaker_threshold
        self._breaker_reset_seconds = breaker_reset_seconds
        self._sessions: OrderedDict[tuple, Session] = OrderedDict()
        self._breakers: dict[tuple, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._quarantine_refusals = 0

    def acquire(self, spec: ScenarioSpec) -> Session:
        """The pooled session for the spec's network/oracle identity.

        A hit returns the existing session (and refreshes its LRU
        position); a miss creates one.  The session returned is shared
        — callers must go through its thread-safe ``prepare``/``run``
        surface.  An identity whose breaker is open raises
        :class:`~repro.resilience.degradation.CircuitOpenError`
        (half-open admits one probe per reset window).
        """
        key = pool_key(spec)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is not None and not breaker.allow():
                self._quarantine_refusals += 1
                raise CircuitOpenError(
                    "session preparation for this scenario identity keeps "
                    "failing; the entry is quarantined",
                    retry_after_seconds=breaker.seconds_until_retry(),
                )
            session = self._sessions.get(key)
            if session is not None:
                self._hits += 1
                self._sessions.move_to_end(key)
                return session
            self._misses += 1
            session = Session(oracle_cache_dir=self._oracle_cache_dir)
            self._sessions[key] = session
            while len(self._sessions) > self._max_sessions:
                evicted_key, _ = self._sessions.popitem(last=False)
                self._breakers.pop(evicted_key, None)
                self._evictions += 1
            return session

    def record_failure(self, spec: ScenarioSpec) -> None:
        """Count one preparation failure against the spec's identity.

        When the failure trips the breaker the session itself is also
        evicted: whatever half-built state it holds is suspect, and the
        half-open probe after the reset window should start clean.
        """
        key = pool_key(spec)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    reset_seconds=self._breaker_reset_seconds,
                )
                self._breakers[key] = breaker
            breaker.record_failure()
            if breaker.state == OPEN:
                self._sessions.pop(key, None)

    def record_success(self, spec: ScenarioSpec) -> None:
        """A successful preparation closes the identity's breaker."""
        key = pool_key(spec)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is not None:
                breaker.record_success()

    def is_quarantined(self, spec: ScenarioSpec) -> bool:
        """Whether the spec's identity is currently refused (read-only)."""
        key = pool_key(spec)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return False
            # Read-only: peeks at the state without consuming the
            # half-open probe that ``allow`` would (a cooled-down
            # breaker reports half-open, i.e. not quarantined).
            return breaker.state == OPEN

    def stats(self) -> dict[str, int]:
        """Pool counters for the service's ``/metrics`` endpoint."""
        with self._lock:
            oracle_builds = sum(
                session.oracle_builds for session in self._sessions.values()
            )
            quarantined = sum(
                1
                for breaker in self._breakers.values()
                if breaker.state == OPEN
            )
            return {
                "sessions": len(self._sessions),
                "max_sessions": self._max_sessions,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "oracle_builds": oracle_builds,
                "quarantined": quarantined,
                "quarantine_refusals": self._quarantine_refusals,
            }
