"""Wire types of the scenario service: requests, run records, errors.

The service speaks one vocabulary over both of its transports (HTTP
and stdin JSON-lines): a **submission** carries a
:class:`~repro.api.ScenarioSpec` document (either the flat spec mapping
itself or wrapped as ``{"spec": {...}}`` alongside transport options
such as ``wait``), and every reply is a JSON-able mapping derived from
a :class:`RunRecord`.  Validation is eager and reuses the spec layer's
precise :class:`~repro.exceptions.ConfigurationError` messages — a bad
submission never reaches the executor; it comes straight back as a
structured 400-style :class:`ProtocolError`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..api import ScenarioSpec
from ..exceptions import ConfigurationError

#: Lifecycle states of a submitted run.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
#: The run's process died (or drained away) mid-flight; the record
#: carries the last checkpoint cursor when one survived.  Runs recovered
#: from the journal land here when they cannot be (or are not) resumed.
INTERRUPTED = "interrupted"

RUN_STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED, INTERRUPTED)

#: States a record can never leave.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED, INTERRUPTED})

#: Submission keys that are transport options, not spec fields.
_SUBMIT_OPTION_KEYS = frozenset({"spec", "wait", "timeout"})


class ProtocolError(Exception):
    """A request the service refuses, with an HTTP-shaped status code.

    ``payload`` is the structured body both transports return verbatim
    (the HTTP server as the response body of a 4xx, the stdin transport
    as the reply line), so clients can match on ``error`` rather than
    parse prose.
    """

    def __init__(self, status: int, error: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.error = error
        self.detail = detail

    @property
    def payload(self) -> dict[str, Any]:
        return {"error": self.error, "detail": self.detail, "status": self.status}


def parse_submission(payload: Any) -> tuple[ScenarioSpec, dict[str, Any]]:
    """Validate a submission document into ``(spec, options)``.

    Accepts either a flat :class:`ScenarioSpec` mapping or a wrapper
    ``{"spec": {...}, "wait": bool, "timeout": seconds}``.  Spec
    problems surface as a 400-style :class:`ProtocolError` carrying the
    spec layer's precise message.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            400,
            "invalid-request",
            f"a submission must be a JSON object, got {type(payload).__name__}",
        )
    options: dict[str, Any] = {}
    if "spec" in payload:
        document = payload["spec"]
        for key in payload:
            if key not in _SUBMIT_OPTION_KEYS:
                raise ProtocolError(
                    400,
                    "invalid-request",
                    f"unknown submission key {key!r}; expected "
                    f"{sorted(_SUBMIT_OPTION_KEYS)}",
                )
        options["wait"] = bool(payload.get("wait", False))
        if payload.get("timeout") is not None:
            timeout = payload["timeout"]
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                raise ProtocolError(
                    400, "invalid-request", "timeout must be a number of seconds"
                )
            options["timeout"] = float(timeout)
    else:
        document = payload
    if not isinstance(document, Mapping):
        raise ProtocolError(
            400,
            "invalid-spec",
            f"the spec document must be a JSON object, got "
            f"{type(document).__name__}",
        )
    try:
        spec = ScenarioSpec.from_dict(document)
    except ConfigurationError as exc:
        raise ProtocolError(400, "invalid-spec", str(exc)) from exc
    return spec, options


@dataclass
class RunRecord:
    """One submitted run's lifecycle, from queued to completed/failed.

    Mutable by design — the service moves it through the states and
    attaches the result summary — but only ever mutated through the
    state methods below, which also stamp the timings and set the
    ``done`` event that pollers and the stdin ``wait`` option block on.
    A small state lock makes the transitions race-free: a record in a
    terminal state never changes again, so an executor thread finishing
    a run and a transport thread cancelling it cannot both win.
    """

    run_id: str
    spec: ScenarioSpec
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)
    cancellation: Any = field(default=None, repr=False)
    #: Cursor of the run's last surviving checkpoint (set on recovery
    #: and on drain interruption) — how far it got before the cut.
    checkpoint: dict[str, Any] | None = None
    #: Cursor this run resumed from, when it continued a prior attempt.
    resumed_from: dict[str, Any] | None = None
    #: Checkpoint file the executor should resume from (recovery only;
    #: never serialized).
    resume_path: str | None = field(default=None, repr=False)
    _state_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def claim(self) -> bool:
        """QUEUED → RUNNING, exactly once.

        Returns ``False`` when the record already left the queue — a
        cancel raced the executor and won; the run must not start.
        """
        with self._state_lock:
            if self.status != QUEUED:
                return False
            self.status = RUNNING
            self.started_at = time.time()
            return True

    def mark_running(self) -> None:
        self.claim()

    def mark_completed(self, result: dict[str, Any]) -> None:
        with self._state_lock:
            if self.status in TERMINAL_STATES:
                return
            self.status = COMPLETED
            self.finished_at = time.time()
            self.result = result
            self.done.set()

    def mark_failed(self, error: str, detail: str) -> None:
        with self._state_lock:
            if self.status in TERMINAL_STATES:
                return
            self.status = FAILED
            self.finished_at = time.time()
            self.error = {"error": error, "detail": detail}
            self.done.set()

    def mark_cancelled(
        self, reason: str, partial: dict[str, Any] | None = None
    ) -> None:
        """Terminal ``cancelled`` state, keeping whatever partial survived."""
        with self._state_lock:
            if self.status in TERMINAL_STATES:
                return
            self.status = CANCELLED
            self.finished_at = time.time()
            self.error = {"error": "cancelled", "detail": reason}
            if partial is not None:
                self.result = partial
            self.done.set()

    def mark_interrupted(
        self, reason: str, *, checkpoint: dict[str, Any] | None = None
    ) -> None:
        """Terminal ``interrupted`` state: the run was cut, not failed.

        ``checkpoint`` is the last surviving cursor, so a client (or a
        later ``repro run --resume``) can see exactly how far the run
        got and what a resume would continue from.
        """
        with self._state_lock:
            if self.status in TERMINAL_STATES:
                return
            self.status = INTERRUPTED
            self.finished_at = time.time()
            self.error = {"error": "interrupted", "detail": reason}
            if checkpoint is not None:
                self.checkpoint = checkpoint
            self.done.set()

    def cancel_if_queued(self, reason: str) -> bool:
        """Cancel a run that never started (QUEUED → CANCELLED)."""
        with self._state_lock:
            if self.status != QUEUED:
                return False
            self.status = CANCELLED
            self.finished_at = time.time()
            self.error = {"error": "cancelled", "detail": reason}
            self.done.set()
            return True

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-finish wall clock (``None`` while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        """Start-to-finish wall clock (``None`` while in flight)."""
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    def as_dict(self, *, include_result: bool = True) -> dict[str, Any]:
        """The JSON-able view both transports return."""
        data: dict[str, Any] = {
            "run_id": self.run_id,
            "status": self.status,
            "scenario": self.spec.describe(),
            "algorithm": self.spec.algorithm,
            "spec": self.spec.to_dict(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency_seconds": self.latency_seconds,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.checkpoint is not None:
            data["checkpoint"] = self.checkpoint
        if self.resumed_from is not None:
            data["resumed_from"] = self.resumed_from
        if include_result and self.result is not None:
            data["result"] = self.result
        return data


def json_bytes(payload: Any) -> bytes:
    """Canonical JSON encoding used by both transports."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
