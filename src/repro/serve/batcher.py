"""Cross-request oracle batching: coalesce concurrent query blocks.

Concurrent scenario runs that share one pooled network also share its
distance oracle, and the pure-Python backends are not safe under
concurrent queries (their LRU caches mutate on reads).  The obvious
fix — a mutex around the oracle — serialises correctly but wastes the
one structural opportunity a resident service has: at any moment,
several runs on the same city are usually waiting on the *same shape*
of query block (``travel_times_many`` over idle workers x pooled
pickups).

:class:`OracleBatcher` turns the mutex into a **group-commit**: every
``travel_times_many`` call enqueues its block and then competes for
the flush lock.  Whoever wins drains the whole queue, merges the
queued blocks into one aggregated block
(:func:`~repro.simulation.parallel.merge_block_requests` — the PR 4
shard machinery's union mirror), answers it with a single oracle call
(chunked through :func:`~repro.simulation.parallel.partition_shards`
and recombined with
:func:`~repro.simulation.parallel.merge_shard_results` so one giant
union cannot blow up a single call), and hands every waiter exactly
the pairs it asked for.  Followers that queued while the leader was
flushing never touch the oracle at all.

The answers are the same floats a serial run computes — batching
changes *when* the oracle is asked, never *what it answers* — so a
served run's metrics stay identical to a direct
``repro.api.run_scenario`` execution of the same spec.

:class:`BatchedNetworkView` is how runs opt in without code changes: a
:class:`~repro.network.graph.RoadNetwork` subclass sharing the pooled
network's graph and oracle, routing every batched query through the
batcher and serialising the remaining query surface behind the same
flush lock.  The service wraps each run's workload in a view over the
pooled network, so dispatchers, planners and fleets run unmodified.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from ..network.graph import RoadNetwork
from ..network.oracle.base import CacheInfo, DistanceOracle, OracleStats
from ..simulation.parallel import (
    merge_block_requests,
    merge_shard_results,
    partition_shards,
)

#: Aggregated-call chunk bound: a union block with more targets than
#: this is answered in several oracle calls (chunked deterministically
#: with ``partition_shards``) so one flush cannot hold the lock for an
#: unbounded stretch.
DEFAULT_MAX_TARGETS_PER_CALL = 256


class _PendingBlock:
    """One caller's queued ``travel_times_many`` block."""

    __slots__ = ("sources", "targets", "result", "done")

    def __init__(self, sources: list[int], targets: list[int]) -> None:
        self.sources = sources
        self.targets = targets
        self.result: dict[tuple[int, int], float] | None = None
        self.done = threading.Event()


class OracleBatcher:
    """Group-commit batching of ``travel_times_many`` on one network.

    Parameters
    ----------
    network:
        The pooled road network whose oracle answers the queries.
    max_targets_per_call:
        Chunk bound of one aggregated oracle call (see module
        docstring).
    """

    def __init__(
        self,
        network: RoadNetwork,
        *,
        max_targets_per_call: int = DEFAULT_MAX_TARGETS_PER_CALL,
    ) -> None:
        if max_targets_per_call < 1:
            raise ValueError("max_targets_per_call must be at least 1")
        self._network = network
        self._max_targets_per_call = max_targets_per_call
        self._mutex = threading.Lock()
        self._flush_lock = threading.Lock()
        self._queue: list[_PendingBlock] = []
        self._requests = 0
        self._batches = 0
        self._coalesced = 0
        self._pairs_requested = 0
        self._pairs_computed = 0
        self._serial_queries = 0

    @property
    def network(self) -> RoadNetwork:
        """The pooled network this batcher serialises access to."""
        return self._network

    # ------------------------------------------------------------------
    # the batched primitive
    # ------------------------------------------------------------------
    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """One block's travel times, answered by a (possibly shared) flush."""
        block = _PendingBlock(
            list(dict.fromkeys(sources)), list(dict.fromkeys(targets))
        )
        if not block.sources or not block.targets:
            return {}
        with self._mutex:
            self._queue.append(block)
            self._requests += 1
            self._pairs_requested += len(block.sources) * len(block.targets)
        with self._flush_lock:
            # A leader that flushed while this caller waited may have
            # answered the block already; only flush if it is still open.
            if not block.done.is_set():
                self._flush()
        assert block.result is not None
        return block.result

    def _flush(self) -> None:
        """Drain the queue and answer every block (flush lock held)."""
        with self._mutex:
            batch = self._queue
            self._queue = []
        if not batch:
            return
        self._batches += 1
        self._coalesced += len(batch) - 1
        sources, targets = merge_block_requests(
            (block.sources, block.targets) for block in batch
        )
        self._pairs_computed += len(sources) * len(targets)
        if len(targets) > self._max_targets_per_call:
            num_chunks = -(-len(targets) // self._max_targets_per_call)
            merged = merge_shard_results(
                self._network.travel_times_many(sources, chunk)
                for chunk in partition_shards(targets, num_chunks)
                if chunk
            )
        else:
            merged = self._network.travel_times_many(sources, targets)
        for block in batch:
            block.result = {
                (source, target): merged[(source, target)]
                for source in block.sources
                for target in block.targets
                if (source, target) in merged
            }
            block.done.set()

    # ------------------------------------------------------------------
    # the serialised remainder of the query surface
    # ------------------------------------------------------------------
    def serial(self, fn, *args, **kwargs):
        """Run one non-batched oracle query under the flush lock."""
        with self._flush_lock:
            self._serial_queries += 1
            return fn(*args, **kwargs)

    def stats(self) -> dict[str, int | float]:
        """Batching counters for the service's ``/metrics`` endpoint.

        ``coalesced_requests`` counts blocks that shared another
        block's flush; ``pairs_computed / pairs_requested`` > 1 is the
        price of aggregation (the union block covers pairs nobody asked
        for), < 1 means requests overlapped enough for the union to be
        cheaper than answering them one by one.
        """
        with self._mutex:
            return {
                "requests": self._requests,
                "batches": self._batches,
                "coalesced_requests": self._coalesced,
                "pairs_requested": self._pairs_requested,
                "pairs_computed": self._pairs_computed,
                "serial_queries": self._serial_queries,
            }


class BatchedNetworkView(RoadNetwork):
    """A run's window onto a pooled network, thread-safe by construction.

    Shares the pooled network's graph and oracle (no copies, no
    re-preprocessing) while routing ``travel_times_many`` through the
    cross-request batcher and every other oracle query through its
    flush lock.  Oracle management calls are forwarded to the pooled
    network so all views of one network always see the same attached
    oracle.
    """

    def __init__(self, batcher: OracleBatcher) -> None:
        parent = batcher.network
        super().__init__(parent.graph, oracle=parent.oracle)
        self._parent = parent
        self._batcher = batcher

    # -- oracle management forwards to the pooled network ---------------
    @property
    def oracle(self) -> DistanceOracle:
        return self._parent.oracle

    def set_oracle(self, oracle: DistanceOracle) -> None:
        self._parent.set_oracle(oracle)

    def use_backend(self, name: str, **options) -> DistanceOracle:
        return self._parent.use_backend(name, **options)

    def clear_cache(self) -> None:
        self._batcher.serial(self._parent.clear_cache)

    def cache_info(self) -> CacheInfo:
        return self._batcher.serial(self._parent.cache_info)

    def oracle_stats(self) -> OracleStats:
        return self._batcher.serial(self._parent.oracle_stats)

    # -- queries: batched where batchable, serialised otherwise ---------
    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        for node in source_list:
            self._require_node(node)
        for node in target_list:
            self._require_node(node)
        return self._batcher.travel_times_many(source_list, target_list)

    def travel_time(self, source: int, target: int) -> float:
        return self._batcher.serial(self._parent.travel_time, source, target)

    def travel_times_from(self, source: int) -> Mapping[int, float]:
        return self._batcher.serial(self._parent.travel_times_from, source)

    def travel_times_to(self, target: int) -> Mapping[int, float]:
        return self._batcher.serial(self._parent.travel_times_to, target)

    def shortest_path(self, source: int, target: int) -> list[int]:
        return self._batcher.serial(self._parent.shortest_path, source, target)

    def is_reachable(self, source: int, target: int) -> bool:
        return self._batcher.serial(self._parent.is_reachable, source, target)


def batched_workload(workload, batcher: OracleBatcher):
    """An isolated copy of a pooled workload, querying through the batcher.

    Orders carry mutable lifecycle bookkeeping (``status``) and the
    pooled workload is shared by every run on its session, so each
    served run gets its own order clones (ids preserved — outcome
    accounting is unchanged) next to the batched network view.  Workers
    need no clone here: ``make_dispatcher`` already clones them into a
    fresh fleet per run.
    """
    from dataclasses import replace

    from ..datasets.synthetic import Workload

    return Workload(
        orders=[replace(order) for order in workload.orders],
        workers=list(workload.workers),
        network=BatchedNetworkView(batcher),
        name=workload.name,
    )
