"""Transports of the scenario service: asyncio HTTP and stdin JSON-lines.

Both are stdlib-only adapters over
:class:`~repro.serve.service.ScenarioService`.

**HTTP** (:class:`ScenarioServer`) — a deliberately small HTTP/1.1
surface on ``asyncio.start_server`` (no framework, no dependency):

========  =================  ==============================================
method    path               meaning
========  =================  ==============================================
POST      ``/runs``          submit a ScenarioSpec JSON document; returns
                             202 + the queued run record.  ``{"spec": ...,
                             "wait": true}`` (or ``?wait=1``) blocks until
                             the run finished and returns the full record.
GET       ``/runs``          list retained run records (without results)
GET       ``/runs/<id>``     one run record, result included when finished
GET       ``/runs/<id>/events``  the run's retained progress events
POST      ``/runs/<id>/cancel``  cancel a queued run now, or ask a
                             running one to stop at its next tick
                             boundary; returns 202 + the record
GET       ``/metrics``       pool / batcher / queue / latency counters
GET       ``/healthz``       liveness probe
POST      ``/shutdown``      stop the server; ``?drain=1`` (or a body of
                             ``{"drain": true, "grace": seconds}``) first
                             performs a graceful drain — admission stops
                             with a structured 503 ``draining`` refusal,
                             in-flight runs finish or checkpoint within
                             the grace budget, and a clean-shutdown
                             marker is journaled before the process exits
========  =================  ==============================================

Every response is JSON; refusals carry the structured
:class:`~repro.serve.protocol.ProtocolError` payload with a matching
status code.  Simulations never run on the event loop — the service's
bounded executor runs them, and ``wait`` blocks in a side thread via
``run_in_executor``.

**stdin JSON-lines** (:func:`serve_stdin`) — the no-socket fallback for
pipelines and CI: one JSON request per line on stdin, one JSON reply
per line on stdout.  ``{"op": "submit", "spec": {...}, "wait": true}``
submits (and optionally blocks), ``poll``/``events``/``metrics``/
``list`` observe, ``cancel`` stops a run, ``shutdown`` exits the loop
— ``{"op": "shutdown", "drain": true, "grace": seconds}`` first runs
the same graceful drain as ``POST /shutdown?drain=1`` and replies with
the drain summary.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, IO, Mapping
from urllib.parse import parse_qs, urlsplit

from .protocol import ProtocolError, RunRecord, json_bytes
from .service import ScenarioService

#: Largest accepted request body (a spec document is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ScenarioServer:
    """Asyncio HTTP front end of a :class:`ScenarioService`.

    Parameters
    ----------
    service:
        The service to expose (owned by the caller; ``serve_forever``
        shuts it down when the server stops).
    host, port:
        Listen address.  ``port=0`` picks a free port — the bound
        address is available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        service: ScenarioService,
        host: str = "127.0.0.1",
        port: int = 8700,
        *,
        drain_grace: float = 30.0,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._drain_grace = drain_grace
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._drain_summary: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`request_stop`)."""
        await self.start()
        assert self._server is not None
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            if self._drain_task is not None:
                # A graceful drain owns the wind-down (it settles the
                # in-flight runs and journals the clean-shutdown marker).
                await self._drain_task
            else:
                # Drain in-flight runs off the event loop.
                await asyncio.get_running_loop().run_in_executor(
                    None, self._service.shutdown
                )

    def request_stop(self) -> None:
        """Ask ``serve_forever`` to wind down (thread-unsafe; loop only)."""
        self._stop.set()

    def request_drain(self, grace: float | None = None) -> None:
        """Begin a graceful drain and stop once it settles (loop only).

        Admission stops immediately (the service 503s new submissions
        as ``draining``); the listener stays open so ``/metrics`` and
        ``GET /runs`` keep answering while in-flight runs finish or
        checkpoint, then the server winds down.  Idempotent — a second
        call while a drain is in progress is a no-op.
        """
        if self._drain_task is not None or self._stop.is_set():
            return
        budget = self._drain_grace if grace is None else grace
        loop = asyncio.get_running_loop()

        async def _drain_then_stop() -> None:
            self._drain_summary = await loop.run_in_executor(
                None, self._service.drain, budget
            )
            self._stop.set()

        self._drain_task = loop.create_task(_drain_then_stop())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                status, payload = await self._handle_request(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                # The client vanished mid-request (closed the socket
                # before sending the promised body); nobody is left to
                # answer — tear the connection down cleanly and move on.
                return
            except ProtocolError as exc:
                status, payload = exc.status, exc.payload
            except Exception as exc:  # noqa: BLE001 - a bad request must not kill the loop
                status, payload = 500, {
                    "error": "internal-error",
                    "detail": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                }
            body = json_bytes(payload)
            phrase = _STATUS_PHRASES.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {phrase}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            try:
                writer.write(head.encode("ascii") + body)
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, Any]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ProtocolError(400, "invalid-request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ProtocolError(
                400, "invalid-request", f"malformed request line {request_line!r}"
            )
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise ProtocolError(
                        400, "invalid-request", "malformed Content-Length"
                    )
                if content_length < 0:
                    raise ProtocolError(
                        400, "invalid-request", "negative Content-Length"
                    )
        if content_length > MAX_BODY_BYTES:
            # Refuse before reading a byte of the body: an oversized
            # announcement must not make the server buffer it.
            raise ProtocolError(
                413,
                "payload-too-large",
                f"body of {content_length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        body = await reader.readexactly(content_length) if content_length else b""
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return await self._route(method.upper(), split.path, query, body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: dict[str, str], body: bytes
    ) -> tuple[int, Any]:
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}
        if path == "/metrics" and method == "GET":
            return 200, self._service.metrics()
        if path == "/shutdown" and method == "POST":
            drain, grace = _parse_shutdown(query, body)
            if drain:
                self.request_drain(grace)
                return 202, {
                    "status": "draining",
                    "grace": self._drain_grace if grace is None else grace,
                }
            self.request_stop()
            return 200, {"status": "shutting-down"}
        if path == "/runs" and method == "POST":
            return await self._submit(query, body)
        if path == "/runs" and method == "GET":
            return 200, {
                "runs": [
                    record.as_dict(include_result=False)
                    for record in self._service.list_runs()
                ]
            }
        if path.startswith("/runs/"):
            rest = path[len("/runs/"):]
            if rest.endswith("/cancel"):
                if method != "POST":
                    raise ProtocolError(
                        405, "method-not-allowed", f"{method} {path}"
                    )
                run_id = rest[: -len("/cancel")]
                record = self._service.cancel(run_id)
                return 202, record.as_dict(include_result=False)
            if method != "GET":
                raise ProtocolError(405, "method-not-allowed", f"{method} {path}")
            if rest.endswith("/events"):
                run_id = rest[: -len("/events")]
                return 200, {"run_id": run_id, "events": self._service.events(run_id)}
            return 200, self._service.get(rest).as_dict()
        if path in ("/runs", "/metrics", "/healthz", "/shutdown"):
            raise ProtocolError(405, "method-not-allowed", f"{method} {path}")
        raise ProtocolError(404, "unknown-path", f"no route for {path}")

    async def _submit(
        self, query: dict[str, str], body: bytes
    ) -> tuple[int, Any]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, "invalid-json", str(exc))
        wait = query.get("wait", "").lower() in ("1", "true", "yes")
        if isinstance(payload, dict) and payload.get("wait"):
            wait = True
        timeout = None
        if isinstance(payload, dict) and payload.get("timeout") is not None:
            timeout = payload["timeout"]
        elif "timeout" in query:
            timeout = query["timeout"]
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ProtocolError(
                    400, "invalid-request", "timeout must be a number of seconds"
                )
        record = self._service.submit(payload)
        if not wait:
            return 202, record.as_dict()
        loop = asyncio.get_running_loop()
        record = await loop.run_in_executor(
            None, self._service.wait, record.run_id, timeout
        )
        if not record.done.is_set():
            return 408, {
                "error": "wait-timeout",
                "detail": f"run {record.run_id} still {record.status}",
                "status": 408,
                "run": record.as_dict(include_result=False),
            }
        return 200, record.as_dict()


def _parse_shutdown(
    query: dict[str, str], body: bytes
) -> tuple[bool, float | None]:
    """``(drain?, grace)`` of a shutdown request (query or JSON body)."""
    drain = query.get("drain", "").lower() in ("1", "true", "yes")
    grace: Any = query.get("grace")
    if body:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, "invalid-json", str(exc))
        if isinstance(payload, Mapping):
            drain = drain or bool(payload.get("drain"))
            if payload.get("grace") is not None:
                grace = payload["grace"]
    if grace is None:
        return drain, None
    try:
        return drain, float(grace)
    except (TypeError, ValueError):
        raise ProtocolError(
            400, "invalid-request", "grace must be a number of seconds"
        )


async def run_http_server(
    service: ScenarioService,
    host: str = "127.0.0.1",
    port: int = 8700,
    *,
    drain_grace: float = 30.0,
) -> None:
    """Start an HTTP server and serve until shutdown is requested."""
    server = ScenarioServer(service, host, port, drain_grace=drain_grace)
    await server.start()
    bound_host, bound_port = server.address
    print(f"repro.serve listening on http://{bound_host}:{bound_port}", flush=True)
    await server.serve_forever()


# ----------------------------------------------------------------------
# stdin JSON-lines transport
# ----------------------------------------------------------------------
def _record_reply(record: RunRecord) -> dict[str, Any]:
    return {"ok": True, **record.as_dict()}


def serve_stdin(
    service: ScenarioService,
    in_stream: IO[str] | None = None,
    out_stream: IO[str] | None = None,
) -> int:
    """Serve JSON-lines requests until EOF or a ``shutdown`` op.

    Every input line is one request object; every reply is one JSON
    line with ``"ok"`` true/false.  Unknown ops and invalid specs are
    structured refusals (the :class:`ProtocolError` payload), never a
    crash — the loop only exits on EOF or an explicit shutdown, and the
    exit drains in-flight runs.  Returns the number of requests served.
    """
    stdin = in_stream if in_stream is not None else sys.stdin
    stdout = out_stream if out_stream is not None else sys.stdout

    def reply(payload: dict[str, Any]) -> None:
        stdout.write(json.dumps(payload, sort_keys=True) + "\n")
        stdout.flush()

    served = 0
    try:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            served += 1
            try:
                reply(_handle_stdin_request(service, line))
            except ProtocolError as exc:
                reply({"ok": False, **exc.payload})
            except _Shutdown as stop:
                if stop.drain:
                    summary = service.drain(stop.grace)
                    reply({"ok": True, "status": "drained", **summary})
                else:
                    reply({"ok": True, "status": "shutting-down"})
                break
    finally:
        service.shutdown(wait=True)
    return served


class _Shutdown(Exception):
    """Internal control flow: the stdin loop saw a shutdown op."""

    def __init__(self, drain: bool = False, grace: float | None = 30.0) -> None:
        super().__init__("shutdown")
        self.drain = drain
        self.grace = grace


def _handle_stdin_request(service: ScenarioService, line: str) -> dict[str, Any]:
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(400, "invalid-json", str(exc))
    if not isinstance(request, dict):
        raise ProtocolError(
            400, "invalid-request", "each line must be a JSON object"
        )
    op = request.get("op", "submit")
    if op == "submit":
        # A flat-spec submission carries the transport options inline;
        # strip them (the wrapper form hands them to parse_submission).
        strip = {"op"} if "spec" in request else {"op", "wait", "timeout"}
        record = service.submit(
            {key: value for key, value in request.items() if key not in strip}
        )
        if request.get("wait"):
            record = service.wait(record.run_id, request.get("timeout"))
        return _record_reply(record)
    if op == "poll":
        return _record_reply(service.get(_required_run_id(request)))
    if op == "cancel":
        return _record_reply(service.cancel(_required_run_id(request)))
    if op == "wait":
        record = service.wait(_required_run_id(request), request.get("timeout"))
        if not record.done.is_set():
            raise ProtocolError(
                408, "wait-timeout", f"run {record.run_id} still {record.status}"
            )
        return _record_reply(record)
    if op == "events":
        run_id = _required_run_id(request)
        return {"ok": True, "run_id": run_id, "events": service.events(run_id)}
    if op == "list":
        return {
            "ok": True,
            "runs": [
                record.as_dict(include_result=False)
                for record in service.list_runs()
            ],
        }
    if op == "metrics":
        return {"ok": True, **service.metrics()}
    if op == "shutdown":
        grace: Any = request.get("grace", 30.0)
        if grace is not None:
            try:
                grace = float(grace)
            except (TypeError, ValueError):
                raise ProtocolError(
                    400, "invalid-request", "grace must be a number of seconds"
                )
        raise _Shutdown(drain=bool(request.get("drain")), grace=grace)
    raise ProtocolError(
        400,
        "unknown-op",
        f"unknown op {op!r}; expected submit/poll/cancel/wait/events/"
        f"list/metrics/shutdown",
    )


def _required_run_id(request: dict[str, Any]) -> str:
    run_id = request.get("run_id")
    if not isinstance(run_id, str) or not run_id:
        raise ProtocolError(400, "invalid-request", "run_id is required")
    return run_id


__all__ = [
    "ScenarioServer",
    "run_http_server",
    "serve_stdin",
    "MAX_BODY_BYTES",
]
