"""``repro.serve`` — the resident scenario service.

Where :mod:`repro.api` runs one scenario per call, this package keeps
the expensive state *resident* and serves many concurrent scenario
runs over it, the way a production dispatch backend would:

* :class:`ScenarioService` — the transport-agnostic core: eager spec
  validation, a bounded run executor, a shared
  :class:`~repro.serve.pool.SessionPool` (one prepared network +
  oracle per identity, however many requests name it), per-network
  cross-request :class:`~repro.serve.batcher.OracleBatcher` batching,
  and per-run result/event stores;
* :class:`ScenarioServer` / :func:`run_http_server` — the stdlib-only
  asyncio HTTP surface (``POST /runs``, ``GET /runs/<id>``,
  ``GET /metrics``, ``POST /shutdown``);
* :func:`serve_stdin` — the JSON-lines stdin/stdout fallback for
  pipelines and CI;
* :class:`JsonlSink` / :class:`MemorySink` — pluggable result sinks on
  the :class:`~repro.simulation.hooks.SimulationHooks` protocol,
  usable outside the server too (``run_scenario(spec,
  hooks=JsonlSink("trace.jsonl"))``).

Start one from the command line with ``python -m repro.cli serve`` —
see ``docs/SERVING.md`` for the endpoint reference and examples.
"""

from .batcher import BatchedNetworkView, OracleBatcher, batched_workload
from .pool import SessionPool, pool_key
from .protocol import (
    CANCELLED,
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUN_STATES,
    RUNNING,
    TERMINAL_STATES,
    ProtocolError,
    RunRecord,
    parse_submission,
)
from .server import ScenarioServer, run_http_server, serve_stdin
from .service import ScenarioService
from .sinks import EventRecorder, JsonlSink, MemorySink, read_trace

__all__ = [
    "ScenarioService",
    "ScenarioServer",
    "run_http_server",
    "serve_stdin",
    "SessionPool",
    "pool_key",
    "OracleBatcher",
    "BatchedNetworkView",
    "batched_workload",
    "EventRecorder",
    "JsonlSink",
    "MemorySink",
    "read_trace",
    "ProtocolError",
    "RunRecord",
    "parse_submission",
    "RUN_STATES",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "INTERRUPTED",
    "TERMINAL_STATES",
]
