"""The scenario service core: submit, execute, observe — no transport.

:class:`ScenarioService` is everything the server does minus the wire:
it validates submissions eagerly (:func:`~repro.serve.protocol.
parse_submission`), multiplexes accepted runs over a bounded thread
executor, prepares each run on a **pooled session**
(:class:`~repro.serve.pool.SessionPool` — one oracle per network/oracle
identity, however many concurrent requests name it), routes every run's
oracle traffic through the per-network **cross-request batcher**
(:class:`~repro.serve.batcher.OracleBatcher`), and streams each run's
events into sinks (an in-memory store per run, plus a JSONL trace file
per run when a trace directory is configured).

Both transports in :mod:`repro.serve.server` — the asyncio HTTP server
and the stdin JSON-lines loop — are thin adapters over this class, so
tests can drive the full service lifecycle without opening a socket.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

from ..api import RunResult, ScenarioSpec, Session
from ..exceptions import ConfigurationError, ReproError
from ..network.graph import RoadNetwork
from ..simulation.hooks import CompositeHooks, SimulationHooks
from .batcher import OracleBatcher, batched_workload
from .pool import DEFAULT_MAX_SESSIONS, SessionPool
from .protocol import (
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    ProtocolError,
    RunRecord,
    parse_submission,
)
from .sinks import JsonlSink, MemorySink

#: Default width of the run executor: enough to overlap preparation
#: and simulation of a few requests without oversubscribing the GIL.
DEFAULT_MAX_RUNS = 2

#: Default bound on finished run records kept queryable.
DEFAULT_MAX_RECORDS = 1024


class ScenarioService:
    """Long-lived, transport-agnostic scenario execution service.

    Parameters
    ----------
    max_runs:
        Executor width — how many submitted runs may execute at once
        (further submissions queue; ``queue_depth`` in ``/metrics``).
    max_sessions:
        Bound of the shared session pool.
    trace_dir:
        When set, every run streams its events to
        ``<trace_dir>/<run_id>.jsonl`` through a
        :class:`~repro.serve.sinks.JsonlSink`.
    oracle_cache_dir:
        On-disk oracle-preprocessing cache handed to pooled sessions,
        so even a freshly started service skips CH contraction for
        known graphs.
    store_events:
        Events retained in memory per run (``GET /runs/<id>`` shows
        the tail); ``0`` disables the in-memory event store.
    """

    def __init__(
        self,
        *,
        max_runs: int = DEFAULT_MAX_RUNS,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        trace_dir: str | Path | None = None,
        oracle_cache_dir: str | None = None,
        store_events: int = 1000,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        if max_runs < 1:
            raise ValueError("max_runs must be at least 1")
        if store_events < 0:
            raise ValueError("store_events must be non-negative")
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        self._pool = SessionPool(max_sessions, oracle_cache_dir=oracle_cache_dir)
        self._executor = ThreadPoolExecutor(
            max_workers=max_runs, thread_name_prefix="serve-run"
        )
        self._max_runs = max_runs
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._store_events = store_events
        self._max_records = max_records
        self._lock = threading.Lock()
        self._records: dict[str, RunRecord] = {}
        self._record_order: list[str] = []
        self._event_stores: dict[str, MemorySink] = {}
        self._batchers: dict[int, OracleBatcher] = {}
        self._run_ids = itertools.count(1)
        self._closed = False
        # Per-backend oracle counters accumulated from finished runs.
        self._oracle_counters: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> RunRecord:
        """Validate one submission and enqueue its run.

        Returns the queued :class:`RunRecord` immediately; a spec the
        spec layer rejects raises a 400-style
        :class:`~repro.serve.protocol.ProtocolError` and never reaches
        the executor.
        """
        spec, _options = parse_submission(payload)
        return self.submit_spec(spec)

    def submit_spec(self, spec: ScenarioSpec) -> RunRecord:
        """Enqueue an already validated spec (the programmatic door)."""
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    503, "shutting-down", "the service is shutting down"
                )
            run_id = f"run-{next(self._run_ids):06d}"
            record = RunRecord(run_id=run_id, spec=spec)
            self._records[run_id] = record
            self._record_order.append(run_id)
            self._evict_records()
            if self._store_events:
                self._event_stores[run_id] = MemorySink(
                    max_events=self._store_events, context={"run_id": run_id}
                )
        self._executor.submit(self._execute, record)
        return record

    def _evict_records(self) -> None:
        """Drop the oldest *finished* records beyond the bound (lock held)."""
        while len(self._record_order) > self._max_records:
            for index, run_id in enumerate(self._record_order):
                record = self._records[run_id]
                if record.status in (COMPLETED, FAILED):
                    del self._record_order[index]
                    del self._records[run_id]
                    self._event_stores.pop(run_id, None)
                    break
            else:
                return  # everything left is still in flight; keep it all

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, record: RunRecord) -> None:
        record.mark_running()
        try:
            result = self._run(record)
        except ProtocolError as exc:
            record.mark_failed(exc.error, exc.detail)
        except ConfigurationError as exc:
            record.mark_failed("invalid-spec", str(exc))
        except ReproError as exc:
            record.mark_failed("run-failed", str(exc))
        except OSError as exc:
            # Unreadable CSV paths, full disks: the run failed, the
            # service did not.
            record.mark_failed("run-failed", str(exc))
        except Exception as exc:  # noqa: BLE001 - a run must never kill the service
            record.mark_failed("internal-error", f"{type(exc).__name__}: {exc}")
        else:
            record.mark_completed(self._summarise(result))
            self._fold_oracle_counters(result)

    def _run(self, record: RunRecord) -> RunResult:
        spec = record.spec
        session = self._pool.acquire(spec)
        # Thread-safe preparation: concurrent requests for one
        # network/oracle identity block here while the first builds.
        workload = session.prepare(spec)
        batcher = self._batcher_for(workload.network)
        run_workload = batched_workload(workload, batcher)
        provider = None
        if spec.algorithm.lower() == "watter-expect":
            # The memoised provider (fitted to the spec's own source),
            # exactly as a direct Session.run(spec) would bootstrap it —
            # passing the batched workload below must not change which
            # provider serves the run.
            provider = session.expect_provider(spec)
        hooks = self._hooks_for(record)
        return session.run(
            spec, hooks=hooks, workload=run_workload, provider=provider
        )

    def _batcher_for(self, network: RoadNetwork) -> OracleBatcher:
        with self._lock:
            batcher = self._batchers.get(id(network))
            if batcher is None:
                batcher = OracleBatcher(network)
                self._batchers[id(network)] = batcher
            return batcher

    def _hooks_for(self, record: RunRecord) -> SimulationHooks | None:
        hooks: list[SimulationHooks | None] = []
        with self._lock:
            hooks.append(self._event_stores.get(record.run_id))
        if self._trace_dir is not None:
            hooks.append(
                JsonlSink(
                    self._trace_dir / f"{record.run_id}.jsonl",
                    context={"run_id": record.run_id},
                )
            )
        hooks = [hook for hook in hooks if hook is not None]
        if not hooks:
            return None
        if len(hooks) == 1:
            return hooks[0]
        return CompositeHooks(hooks)

    @staticmethod
    def _summarise(result: RunResult) -> dict[str, Any]:
        metrics = result.metrics.summary_row()
        oracle_stats = result.oracle_stats
        return {
            "metrics": metrics,
            "graph_hash": result.graph_hash,
            "timings": dict(result.timings),
            "oracle_stats": dict(oracle_stats) if oracle_stats else None,
        }

    def _fold_oracle_counters(self, result: RunResult) -> None:
        stats = result.oracle_stats
        if not stats:
            return
        backend = result.spec.config().oracle_backend
        with self._lock:
            counters = self._oracle_counters.setdefault(backend, {})
            counters["runs"] = counters.get("runs", 0) + 1
            for key, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                counters[key] = counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def get(self, run_id: str) -> RunRecord:
        """The record of one run (404-style error when unknown)."""
        with self._lock:
            record = self._records.get(run_id)
        if record is None:
            raise ProtocolError(404, "unknown-run", f"no run with id {run_id!r}")
        return record

    def wait(self, run_id: str, timeout: float | None = None) -> RunRecord:
        """Block until the run finished (or ``timeout`` elapsed)."""
        record = self.get(run_id)
        record.done.wait(timeout)
        return record

    def events(self, run_id: str) -> list[dict[str, Any]]:
        """The retained event stream of one run (empty if disabled)."""
        self.get(run_id)  # 404 on unknown ids, even with the store off
        with self._lock:
            store = self._event_stores.get(run_id)
        return store.events if store is not None else []

    def list_runs(self) -> list[RunRecord]:
        """All retained records, oldest first."""
        with self._lock:
            return [self._records[run_id] for run_id in self._record_order]

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` document: pool, batcher, queue and latency."""
        with self._lock:
            records = [self._records[run_id] for run_id in self._record_order]
            batcher_stats = [b.stats() for b in self._batchers.values()]
            oracle_counters = {
                backend: dict(counters)
                for backend, counters in self._oracle_counters.items()
            }
        by_status = {state: 0 for state in (QUEUED, RUNNING, COMPLETED, FAILED)}
        latencies = []
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
            if record.latency_seconds is not None:
                latencies.append(record.latency_seconds)
        batcher_total: dict[str, float] = {}
        for stats in batcher_stats:
            for key, value in stats.items():
                batcher_total[key] = batcher_total.get(key, 0) + value
        return {
            "runs": by_status,
            "queue_depth": by_status[QUEUED],
            "max_concurrent_runs": self._max_runs,
            "pool": self._pool.stats(),
            "batcher": batcher_total,
            "oracle": oracle_counters,
            "latency_seconds": {
                "count": len(latencies),
                "total": sum(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "max": max(latencies) if latencies else None,
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and (optionally) drain in-flight runs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
