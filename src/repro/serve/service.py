"""The scenario service core: submit, execute, observe — no transport.

:class:`ScenarioService` is everything the server does minus the wire:
it validates submissions eagerly (:func:`~repro.serve.protocol.
parse_submission`), multiplexes accepted runs over a bounded thread
executor, prepares each run on a **pooled session**
(:class:`~repro.serve.pool.SessionPool` — one oracle per network/oracle
identity, however many concurrent requests name it), routes every run's
oracle traffic through the per-network **cross-request batcher**
(:class:`~repro.serve.batcher.OracleBatcher`), and streams each run's
events into sinks (an in-memory store per run, plus a JSONL trace file
per run when a trace directory is configured).

Both transports in :mod:`repro.serve.server` — the asyncio HTTP server
and the stdin JSON-lines loop — are thin adapters over this class, so
tests can drive the full service lifecycle without opening a socket.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

from ..api import RunResult, ScenarioSpec, Session
from ..exceptions import ConfigurationError, ReproError
from ..network.graph import RoadNetwork
from ..resilience.cancellation import CancellationToken, RunCancelled
from ..resilience.degradation import CircuitOpenError, DegradationLog
from ..resilience.faults import fault_point
from ..resilience.retry import RetryPolicy, retry_call
from ..simulation.hooks import CompositeHooks, SimulationHooks
from .batcher import OracleBatcher, batched_workload
from .pool import DEFAULT_MAX_SESSIONS, SessionPool
from .protocol import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    ProtocolError,
    RunRecord,
    parse_submission,
)
from .sinks import JsonlSink, MemorySink

#: Default width of the run executor: enough to overlap preparation
#: and simulation of a few requests without oversubscribing the GIL.
DEFAULT_MAX_RUNS = 2

#: Default bound on finished run records kept queryable.
DEFAULT_MAX_RECORDS = 1024

#: Transient preparation failures (unreadable cache volumes, racing
#: CSV readers) get one quick retry before counting against the pool
#: entry's circuit breaker.
PREPARE_RETRY_POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.05, max_delay=0.5, retry_on=(OSError,)
)


class ScenarioService:
    """Long-lived, transport-agnostic scenario execution service.

    Parameters
    ----------
    max_runs:
        Executor width — how many submitted runs may execute at once
        (further submissions queue; ``queue_depth`` in ``/metrics``).
    max_sessions:
        Bound of the shared session pool.
    trace_dir:
        When set, every run streams its events to
        ``<trace_dir>/<run_id>.jsonl`` through a
        :class:`~repro.serve.sinks.JsonlSink`.
    oracle_cache_dir:
        On-disk oracle-preprocessing cache handed to pooled sessions,
        so even a freshly started service skips CH contraction for
        known graphs.
    store_events:
        Events retained in memory per run (``GET /runs/<id>`` shows
        the tail); ``0`` disables the in-memory event store.
    max_queue:
        Bound on *queued* (accepted, not yet running) runs.  A full
        queue refuses further submissions with a 429-shaped
        ``overloaded`` error instead of accepting unbounded work;
        ``None`` keeps the queue unbounded.
    default_deadline:
        Wall-clock budget (seconds) applied to every run whose spec
        does not set its own ``deadline_seconds``; ``None`` means runs
        without a spec deadline are unlimited.
    """

    def __init__(
        self,
        *,
        max_runs: int = DEFAULT_MAX_RUNS,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        trace_dir: str | Path | None = None,
        oracle_cache_dir: str | None = None,
        store_events: int = 1000,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_queue: int | None = None,
        default_deadline: float | None = None,
    ) -> None:
        if max_runs < 1:
            raise ValueError("max_runs must be at least 1")
        if store_events < 0:
            raise ValueError("store_events must be non-negative")
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        self._max_queue = max_queue
        self._default_deadline = default_deadline
        self._pool = SessionPool(max_sessions, oracle_cache_dir=oracle_cache_dir)
        self._executor = ThreadPoolExecutor(
            max_workers=max_runs, thread_name_prefix="serve-run"
        )
        self._max_runs = max_runs
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._store_events = store_events
        self._max_records = max_records
        self._lock = threading.Lock()
        self._records: dict[str, RunRecord] = {}
        self._record_order: list[str] = []
        self._event_stores: dict[str, MemorySink] = {}
        self._batchers: dict[int, OracleBatcher] = {}
        self._run_ids = itertools.count(1)
        self._closed = False
        # Per-backend oracle counters accumulated from finished runs.
        self._oracle_counters: dict[str, dict[str, float]] = {}
        #: Submissions refused because the admission queue was full.
        self._rejected_total = 0
        #: Degradation events folded from finished runs, keyed by site.
        self._degradation_counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> RunRecord:
        """Validate one submission and enqueue its run.

        Returns the queued :class:`RunRecord` immediately; a spec the
        spec layer rejects raises a 400-style
        :class:`~repro.serve.protocol.ProtocolError` and never reaches
        the executor.
        """
        spec, _options = parse_submission(payload)
        return self.submit_spec(spec)

    def submit_spec(self, spec: ScenarioSpec) -> RunRecord:
        """Enqueue an already validated spec (the programmatic door).

        Refuses structurally before queuing work it cannot serve: a
        full admission queue comes back as a 429-shaped ``overloaded``
        error, and an identity whose session-pool circuit breaker is
        open as a 503-shaped ``session-quarantined`` error.
        """
        if self._pool.is_quarantined(spec):
            raise ProtocolError(
                503,
                "session-quarantined",
                "session preparation for this scenario identity keeps "
                "failing and is quarantined; retry after the breaker's "
                "cool-down",
            )
        with self._lock:
            if self._closed:
                raise ProtocolError(
                    503, "shutting-down", "the service is shutting down"
                )
            if self._max_queue is not None:
                queued = sum(
                    1
                    for run_id in self._record_order
                    if self._records[run_id].status == QUEUED
                )
                if queued >= self._max_queue:
                    self._rejected_total += 1
                    raise ProtocolError(
                        429,
                        "overloaded",
                        f"the admission queue is full ({queued} queued, "
                        f"bound {self._max_queue}); retry later",
                    )
            run_id = f"run-{next(self._run_ids):06d}"
            deadline = spec.deadline_seconds
            if deadline is None:
                deadline = self._default_deadline
            record = RunRecord(
                run_id=run_id,
                spec=spec,
                cancellation=CancellationToken(deadline),
            )
            self._records[run_id] = record
            self._record_order.append(run_id)
            self._evict_records()
            if self._store_events:
                self._event_stores[run_id] = MemorySink(
                    max_events=self._store_events, context={"run_id": run_id}
                )
        self._executor.submit(self._execute, record)
        return record

    def _evict_records(self) -> None:
        """Drop the oldest *finished* records beyond the bound (lock held)."""
        while len(self._record_order) > self._max_records:
            for index, run_id in enumerate(self._record_order):
                record = self._records[run_id]
                if record.status in TERMINAL_STATES:
                    del self._record_order[index]
                    del self._records[run_id]
                    self._event_stores.pop(run_id, None)
                    break
            else:
                return  # everything left is still in flight; keep it all

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, record: RunRecord) -> None:
        if not record.claim():
            # A cancel won the race while the run sat in the queue.
            return
        try:
            result = self._run(record)
        except RunCancelled as exc:
            partial = getattr(exc, "partial", None)
            record.mark_cancelled(exc.reason, partial)
            if partial is not None:
                self._fold_degradations(partial.get("degradations") or ())
        except CircuitOpenError as exc:
            record.mark_failed("session-quarantined", str(exc))
        except ProtocolError as exc:
            record.mark_failed(exc.error, exc.detail)
        except ConfigurationError as exc:
            record.mark_failed("invalid-spec", str(exc))
        except ReproError as exc:
            record.mark_failed("run-failed", str(exc))
        except OSError as exc:
            # Unreadable CSV paths, full disks: the run failed, the
            # service did not.
            record.mark_failed("run-failed", str(exc))
        except Exception as exc:  # noqa: BLE001 - a run must never kill the service
            record.mark_failed("internal-error", f"{type(exc).__name__}: {exc}")
        else:
            record.mark_completed(self._summarise(result))
            self._fold_oracle_counters(result)
            self._fold_degradations(result.degradations)

    def _run(self, record: RunRecord) -> RunResult:
        spec = record.spec
        session = self._pool.acquire(spec)
        # One log spans preparation and the run so fallbacks taken while
        # standing the oracle up (corrupt-cache rebuild, CH demoted to
        # lazy) surface in the run's result and the service metrics.
        degradations = DegradationLog()

        def prepare():
            # The injectable fault site sits inside the retried call, so
            # a scheduled ``fail_first`` exercises exactly this path.
            fault_point("session.prepare")
            return session.prepare(spec, degradations=degradations)

        # Thread-safe preparation: concurrent requests for one
        # network/oracle identity block here while the first builds.
        # Transient IO failures get one quick retry; a failure that
        # survives it counts against the identity's circuit breaker.
        try:
            workload = retry_call(prepare, policy=PREPARE_RETRY_POLICY)
        except Exception:
            self._pool.record_failure(spec)
            raise
        self._pool.record_success(spec)
        batcher = self._batcher_for(workload.network)
        run_workload = batched_workload(workload, batcher)
        provider = None
        if spec.algorithm.lower() == "watter-expect":
            # The memoised provider (fitted to the spec's own source),
            # exactly as a direct Session.run(spec) would bootstrap it —
            # passing the batched workload below must not change which
            # provider serves the run.
            provider = session.expect_provider(spec)
        hooks = self._hooks_for(record)
        return session.run(
            spec,
            hooks=hooks,
            workload=run_workload,
            provider=provider,
            cancellation=record.cancellation,
            degradations=degradations,
        )

    def _batcher_for(self, network: RoadNetwork) -> OracleBatcher:
        with self._lock:
            batcher = self._batchers.get(id(network))
            if batcher is None:
                batcher = OracleBatcher(network)
                self._batchers[id(network)] = batcher
            return batcher

    def _hooks_for(self, record: RunRecord) -> SimulationHooks | None:
        hooks: list[SimulationHooks | None] = []
        with self._lock:
            hooks.append(self._event_stores.get(record.run_id))
        if self._trace_dir is not None:
            hooks.append(
                JsonlSink(
                    self._trace_dir / f"{record.run_id}.jsonl",
                    context={"run_id": record.run_id},
                )
            )
        hooks = [hook for hook in hooks if hook is not None]
        if not hooks:
            return None
        if len(hooks) == 1:
            return hooks[0]
        return CompositeHooks(hooks)

    @staticmethod
    def _summarise(result: RunResult) -> dict[str, Any]:
        metrics = result.metrics.summary_row()
        oracle_stats = result.oracle_stats
        return {
            "metrics": metrics,
            "graph_hash": result.graph_hash,
            "timings": dict(result.timings),
            "oracle_stats": dict(oracle_stats) if oracle_stats else None,
            "degradations": [dict(event) for event in result.degradations],
        }

    def _fold_degradations(self, events) -> None:
        with self._lock:
            for event in events:
                site = event.get("site", "unknown") if isinstance(event, Mapping) else "unknown"
                self._degradation_counters[site] = (
                    self._degradation_counters.get(site, 0) + 1
                )

    def _fold_oracle_counters(self, result: RunResult) -> None:
        stats = result.oracle_stats
        if not stats:
            return
        backend = result.spec.config().oracle_backend
        with self._lock:
            counters = self._oracle_counters.setdefault(backend, {})
            counters["runs"] = counters.get("runs", 0) + 1
            for key, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                counters[key] = counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def get(self, run_id: str) -> RunRecord:
        """The record of one run (404-style error when unknown)."""
        with self._lock:
            record = self._records.get(run_id)
        if record is None:
            raise ProtocolError(404, "unknown-run", f"no run with id {run_id!r}")
        return record

    def wait(self, run_id: str, timeout: float | None = None) -> RunRecord:
        """Block until the run finished (or ``timeout`` elapsed)."""
        record = self.get(run_id)
        record.done.wait(timeout)
        return record

    def cancel(self, run_id: str, reason: str = "cancelled by request") -> RunRecord:
        """Request cancellation of a queued or running run.

        A queued run is cancelled immediately (the executor's claim
        then no-ops); a running run is asked to stop at its next tick
        boundary — the record reaches ``cancelled`` when the engine
        unwinds.  Cancelling a finished run changes nothing.
        """
        record = self.get(run_id)
        if record.cancel_if_queued(reason):
            return record
        if record.cancellation is not None:
            record.cancellation.cancel(reason)
        return record

    def events(self, run_id: str) -> list[dict[str, Any]]:
        """The retained event stream of one run (empty if disabled)."""
        self.get(run_id)  # 404 on unknown ids, even with the store off
        with self._lock:
            store = self._event_stores.get(run_id)
        return store.events if store is not None else []

    def list_runs(self) -> list[RunRecord]:
        """All retained records, oldest first."""
        with self._lock:
            return [self._records[run_id] for run_id in self._record_order]

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` document: pool, batcher, queue and latency."""
        with self._lock:
            records = [self._records[run_id] for run_id in self._record_order]
            batcher_stats = [b.stats() for b in self._batchers.values()]
            oracle_counters = {
                backend: dict(counters)
                for backend, counters in self._oracle_counters.items()
            }
            rejected_total = self._rejected_total
            degradations = dict(self._degradation_counters)
        by_status = {
            state: 0 for state in (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)
        }
        latencies = []
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
            if record.latency_seconds is not None:
                latencies.append(record.latency_seconds)
        batcher_total: dict[str, float] = {}
        for stats in batcher_stats:
            for key, value in stats.items():
                batcher_total[key] = batcher_total.get(key, 0) + value
        return {
            "runs": by_status,
            "queue_depth": by_status[QUEUED],
            "max_queue": self._max_queue,
            "rejected_total": rejected_total,
            "max_concurrent_runs": self._max_runs,
            "default_deadline_seconds": self._default_deadline,
            "degradations": degradations,
            "pool": self._pool.stats(),
            "batcher": batcher_total,
            "oracle": oracle_counters,
            "latency_seconds": {
                "count": len(latencies),
                "total": sum(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "max": max(latencies) if latencies else None,
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and (optionally) drain in-flight runs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
