"""The scenario service core: submit, execute, observe — no transport.

:class:`ScenarioService` is everything the server does minus the wire:
it validates submissions eagerly (:func:`~repro.serve.protocol.
parse_submission`), multiplexes accepted runs over a bounded thread
executor, prepares each run on a **pooled session**
(:class:`~repro.serve.pool.SessionPool` — one oracle per network/oracle
identity, however many concurrent requests name it), routes every run's
oracle traffic through the per-network **cross-request batcher**
(:class:`~repro.serve.batcher.OracleBatcher`), and streams each run's
events into sinks (an in-memory store per run, plus a JSONL trace file
per run when a trace directory is configured).

Both transports in :mod:`repro.serve.server` — the asyncio HTTP server
and the stdin JSON-lines loop — are thin adapters over this class, so
tests can drive the full service lifecycle without opening a socket.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

from ..api import RunResult, ScenarioSpec, Session
from ..durability.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CheckpointError,
    Checkpointer,
    RunCheckpoint,
    read_checkpoint_header,
)
from ..durability.journal import RunJournal
from ..durability.results import ResultStore
from ..exceptions import ConfigurationError, ReproError
from ..network.graph import RoadNetwork
from ..resilience.cancellation import CancellationToken, RunCancelled
from ..resilience.degradation import CircuitOpenError, DegradationLog
from ..resilience.faults import fault_point
from ..resilience.retry import RetryPolicy, retry_call
from ..simulation.hooks import CompositeHooks, SimulationHooks
from .batcher import OracleBatcher, batched_workload
from .pool import DEFAULT_MAX_SESSIONS, SessionPool
from .protocol import (
    CANCELLED,
    COMPLETED,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    ProtocolError,
    RunRecord,
    parse_submission,
)
from .sinks import JsonlSink, MemorySink

#: Default width of the run executor: enough to overlap preparation
#: and simulation of a few requests without oversubscribing the GIL.
DEFAULT_MAX_RUNS = 2

#: Default bound on finished run records kept queryable.
DEFAULT_MAX_RECORDS = 1024

#: Transient preparation failures (unreadable cache volumes, racing
#: CSV readers) get one quick retry before counting against the pool
#: entry's circuit breaker.
PREPARE_RETRY_POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.05, max_delay=0.5, retry_on=(OSError,)
)


class ScenarioService:
    """Long-lived, transport-agnostic scenario execution service.

    Parameters
    ----------
    max_runs:
        Executor width — how many submitted runs may execute at once
        (further submissions queue; ``queue_depth`` in ``/metrics``).
    max_sessions:
        Bound of the shared session pool.
    trace_dir:
        When set, every run streams its events to
        ``<trace_dir>/<run_id>.jsonl`` through a
        :class:`~repro.serve.sinks.JsonlSink`.
    oracle_cache_dir:
        On-disk oracle-preprocessing cache handed to pooled sessions,
        so even a freshly started service skips CH contraction for
        known graphs.
    store_events:
        Events retained in memory per run (``GET /runs/<id>`` shows
        the tail); ``0`` disables the in-memory event store.
    max_queue:
        Bound on *queued* (accepted, not yet running) runs.  A full
        queue refuses further submissions with a 429-shaped
        ``overloaded`` error instead of accepting unbounded work;
        ``None`` keeps the queue unbounded.
    default_deadline:
        Wall-clock budget (seconds) applied to every run whose spec
        does not set its own ``deadline_seconds``; ``None`` means runs
        without a spec deadline are unlimited.
    state_dir:
        Durable service state: a write-ahead run journal
        (``journal.jsonl``), per-run result documents (``results/``)
        and simulation checkpoints (``checkpoints/``).  On startup the
        journal is replayed: finished runs are served from the result
        store, submitted-but-never-started runs are re-enqueued, and
        orphaned in-flight runs are resumed from their last checkpoint
        (or reported ``interrupted``) — a ``kill -9`` loses no accepted
        work.  Without a state dir the service is exactly as ephemeral
        as before.
    checkpoint_interval:
        Ticks between simulation checkpoints for journaled runs.
    auto_resume:
        Whether recovery re-executes orphaned in-flight runs from their
        checkpoints (default); ``False`` reports them ``interrupted``
        instead, leaving the checkpoints in place for a manual
        ``repro run --resume``.
    """

    def __init__(
        self,
        *,
        max_runs: int = DEFAULT_MAX_RUNS,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        trace_dir: str | Path | None = None,
        oracle_cache_dir: str | None = None,
        store_events: int = 1000,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_queue: int | None = None,
        default_deadline: float | None = None,
        state_dir: str | Path | None = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        auto_resume: bool = True,
    ) -> None:
        if max_runs < 1:
            raise ValueError("max_runs must be at least 1")
        if store_events < 0:
            raise ValueError("store_events must be non-negative")
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be at least 1 (or None)")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        self._max_queue = max_queue
        self._default_deadline = default_deadline
        self._pool = SessionPool(max_sessions, oracle_cache_dir=oracle_cache_dir)
        self._executor = ThreadPoolExecutor(
            max_workers=max_runs, thread_name_prefix="serve-run"
        )
        self._max_runs = max_runs
        self._trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._store_events = store_events
        self._max_records = max_records
        self._lock = threading.Lock()
        self._records: dict[str, RunRecord] = {}
        self._record_order: list[str] = []
        self._event_stores: dict[str, MemorySink] = {}
        self._batchers: dict[int, OracleBatcher] = {}
        self._run_ids = itertools.count(1)
        self._closed = False
        self._draining = False
        # Per-backend oracle counters accumulated from finished runs.
        self._oracle_counters: dict[str, dict[str, float]] = {}
        #: Submissions refused because the admission queue was full.
        self._rejected_total = 0
        #: Degradation events folded from finished runs, keyed by site.
        self._degradation_counters: dict[str, int] = {}
        # ---- durable state (all None/zero without a state dir) ----
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        self._checkpoint_interval = checkpoint_interval
        self._auto_resume = auto_resume
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._journal: RunJournal | None = None
        self._results: ResultStore | None = None
        self._checkpoints_written = 0
        self._checkpoint_failures = 0
        self._recovered = {
            "restored": 0,
            "requeued": 0,
            "resumed": 0,
            "interrupted": 0,
        }
        if self._state_dir is not None:
            self._state_dir.mkdir(parents=True, exist_ok=True)
            self._journal = RunJournal(self._state_dir / "journal.jsonl")
            self._results = ResultStore(self._state_dir / "results")
            self._recover()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> RunRecord:
        """Validate one submission and enqueue its run.

        Returns the queued :class:`RunRecord` immediately; a spec the
        spec layer rejects raises a 400-style
        :class:`~repro.serve.protocol.ProtocolError` and never reaches
        the executor.
        """
        spec, _options = parse_submission(payload)
        return self.submit_spec(spec)

    def submit_spec(self, spec: ScenarioSpec) -> RunRecord:
        """Enqueue an already validated spec (the programmatic door).

        Refuses structurally before queuing work it cannot serve: a
        full admission queue comes back as a 429-shaped ``overloaded``
        error, and an identity whose session-pool circuit breaker is
        open as a 503-shaped ``session-quarantined`` error.
        """
        if self._pool.is_quarantined(spec):
            raise ProtocolError(
                503,
                "session-quarantined",
                "session preparation for this scenario identity keeps "
                "failing and is quarantined; retry after the breaker's "
                "cool-down",
            )
        with self._lock:
            if self._draining:
                raise ProtocolError(
                    503,
                    "draining",
                    "the service is draining: in-flight runs are being "
                    "finished or checkpointed, no new work is admitted",
                )
            if self._closed:
                raise ProtocolError(
                    503, "shutting-down", "the service is shutting down"
                )
            if self._max_queue is not None:
                queued = sum(
                    1
                    for run_id in self._record_order
                    if self._records[run_id].status == QUEUED
                )
                if queued >= self._max_queue:
                    self._rejected_total += 1
                    raise ProtocolError(
                        429,
                        "overloaded",
                        f"the admission queue is full ({queued} queued, "
                        f"bound {self._max_queue}); retry later",
                    )
            run_id = f"run-{next(self._run_ids):06d}"
            deadline = spec.deadline_seconds
            if deadline is None:
                deadline = self._default_deadline
            record = RunRecord(
                run_id=run_id,
                spec=spec,
                cancellation=CancellationToken(deadline),
            )
            self._records[run_id] = record
            self._record_order.append(run_id)
            self._evict_records()
            if self._store_events:
                self._event_stores[run_id] = MemorySink(
                    max_events=self._store_events, context={"run_id": run_id}
                )
        # Write-ahead: the submission is journaled before the executor
        # can touch it, so a crash at any later instant leaves a record
        # to re-enqueue from.
        self._journal_append(
            {"type": "submitted", "run_id": run_id, "spec": spec.to_dict()}
        )
        self._executor.submit(self._execute, record)
        return record

    def _journal_append(self, record: Mapping[str, Any]) -> None:
        if self._journal is not None:
            self._journal.append(record)

    def _evict_records(self) -> None:
        """Drop the oldest *finished* records beyond the bound (lock held)."""
        while len(self._record_order) > self._max_records:
            for index, run_id in enumerate(self._record_order):
                record = self._records[run_id]
                if record.status in TERMINAL_STATES:
                    del self._record_order[index]
                    del self._records[run_id]
                    self._event_stores.pop(run_id, None)
                    break
            else:
                return  # everything left is still in flight; keep it all

    # ------------------------------------------------------------------
    # crash recovery (state_dir only)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: account for every previously accepted run.

        Invariant this enforces (and the SIGKILL test asserts): every
        run the previous process journaled as ``submitted`` is either
        served from the result store, re-enqueued, resumed from its
        checkpoint, or reported ``interrupted`` — never silently lost.
        """
        assert self._journal is not None and self._results is not None
        entries = self._journal.replay()
        if not entries:
            return
        clean = entries[-1].get("type") == "clean_shutdown"
        runs: dict[str, dict[str, Any]] = {}
        highest = 0
        for entry in entries:
            run_id = entry.get("run_id")
            if not isinstance(run_id, str):
                continue
            number = _run_number(run_id)
            if number is not None:
                highest = max(highest, number)
            info = runs.setdefault(run_id, {"last": None, "spec": None})
            info["last"] = entry.get("type")
            if entry.get("type") == "submitted":
                info["spec"] = entry.get("spec")
        for run_id in self._results.run_ids():
            number = _run_number(run_id)
            if number is not None:
                highest = max(highest, number)
        # New submissions continue the id sequence instead of reusing
        # ids the journal (or the result store) already knows.
        self._run_ids = itertools.count(highest + 1)
        if clean:
            # Runs whose full documents live in the result store need no
            # journal history; dropping them bounds journal growth.
            self._journal.compact(self._results.run_ids())
        terminal = {"finished", "failed", "cancelled", "interrupted"}
        for run_id in sorted(runs, key=lambda rid: _run_number(rid) or 0):
            info = runs[run_id]
            last = info["last"]
            if last in terminal:
                continue  # served from the result store on demand
            record = self._recovered_record(run_id, info["spec"])
            if record is None:
                continue
            if clean or last is None:
                # A clean shutdown deliberately left this run behind
                # (shutdown without drain); account for it, don't rerun.
                record.mark_interrupted(
                    "the service shut down before this run finished",
                    checkpoint=self._checkpoint_cursor(run_id),
                )
                self._register_recovered(record, "interrupted")
                self._finalize_durable(record)
                continue
            if last == "submitted":
                # Accepted but never started: run it now, same id.
                self._register_recovered(record, "requeued")
                self._executor.submit(self._execute, record)
                continue
            # Orphaned mid-flight (started/checkpointed): resume when a
            # checkpoint survived and resuming is allowed, else report.
            cursor = self._checkpoint_cursor(run_id)
            path = self._checkpoint_path(run_id)
            if self._auto_resume and path is not None and path.exists():
                record.resume_path = str(path)
                record.resumed_from = cursor
                self._register_recovered(record, "resumed")
                self._executor.submit(self._execute, record)
            else:
                record.mark_interrupted(
                    "the service died while this run was in flight",
                    checkpoint=cursor,
                )
                self._register_recovered(record, "interrupted")
                self._finalize_durable(record)

    def _recovered_record(
        self, run_id: str, spec_document: Any
    ) -> RunRecord | None:
        """A fresh QUEUED record for a journaled run (None if unusable)."""
        if not isinstance(spec_document, Mapping):
            return None
        try:
            spec = ScenarioSpec.from_dict(spec_document)
        except ConfigurationError:
            return None
        deadline = spec.deadline_seconds
        if deadline is None:
            deadline = self._default_deadline
        return RunRecord(
            run_id=run_id,
            spec=spec,
            cancellation=CancellationToken(deadline),
        )

    def _register_recovered(self, record: RunRecord, how: str) -> None:
        with self._lock:
            self._records[record.run_id] = record
            self._record_order.append(record.run_id)
            if self._store_events and record.status == QUEUED:
                self._event_stores[record.run_id] = MemorySink(
                    max_events=self._store_events,
                    context={"run_id": record.run_id},
                )
            self._recovered[how] += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, record: RunRecord) -> None:
        if not record.claim():
            # A cancel won the race while the run sat in the queue.
            return
        self._journal_append({"type": "started", "run_id": record.run_id})
        try:
            result = self._run(record)
        except RunCancelled as exc:
            partial = getattr(exc, "partial", None)
            if self._draining:
                # A drain cut this run, it did not abandon it: the last
                # checkpoint stays on disk, the record says how far the
                # run got, and a restart on the same state dir can
                # resume it by hand (``repro run --resume``).
                record.mark_interrupted(
                    f"interrupted by drain: {exc.reason}",
                    checkpoint=self._checkpoint_cursor(record.run_id),
                )
            else:
                record.mark_cancelled(exc.reason, partial)
            if partial is not None:
                self._fold_degradations(partial.get("degradations") or ())
        except CheckpointError as exc:
            if record.resume_path is not None:
                # A recovered run whose checkpoint cannot be trusted is
                # *interrupted*, not failed — the original work was cut
                # by a crash, and the corrupt file must not masquerade
                # as a run error.
                record.mark_interrupted(
                    f"resume failed: {exc}", checkpoint=record.resumed_from
                )
            else:
                record.mark_failed("run-failed", str(exc))
        except CircuitOpenError as exc:
            record.mark_failed("session-quarantined", str(exc))
        except ProtocolError as exc:
            record.mark_failed(exc.error, exc.detail)
        except ConfigurationError as exc:
            record.mark_failed("invalid-spec", str(exc))
        except ReproError as exc:
            record.mark_failed("run-failed", str(exc))
        except OSError as exc:
            # Unreadable CSV paths, full disks: the run failed, the
            # service did not.
            record.mark_failed("run-failed", str(exc))
        except Exception as exc:  # noqa: BLE001 - a run must never kill the service
            record.mark_failed("internal-error", f"{type(exc).__name__}: {exc}")
        else:
            record.mark_completed(self._summarise(result))
            self._fold_oracle_counters(result)
            self._fold_degradations(result.degradations)
        self._finalize_durable(record)

    def _finalize_durable(self, record: RunRecord) -> None:
        """Persist a terminal record and journal how the run ended."""
        if record.status not in TERMINAL_STATES:
            return
        if self._results is not None:
            self._results.save(record.run_id, record.as_dict())
        terminal_types = {
            COMPLETED: "finished",
            FAILED: "failed",
            CANCELLED: "cancelled",
            INTERRUPTED: "interrupted",
        }
        entry: dict[str, Any] = {
            "type": terminal_types[record.status],
            "run_id": record.run_id,
        }
        if record.error is not None:
            entry["detail"] = record.error.get("detail")
        self._journal_append(entry)
        if record.status == COMPLETED:
            # A finished run needs no resume point; reclaim the space.
            path = self._checkpoint_path(record.run_id)
            if path is not None:
                path.unlink(missing_ok=True)

    def _checkpoint_path(self, run_id: str) -> Path | None:
        if self._state_dir is None:
            return None
        return self._state_dir / "checkpoints" / f"{run_id}.ckpt"

    def _checkpoint_cursor(self, run_id: str) -> dict[str, Any] | None:
        """Cursor of the run's newest on-disk checkpoint, if readable."""
        path = self._checkpoint_path(run_id)
        if path is None or not path.exists():
            return None
        try:
            header = read_checkpoint_header(path)
        except CheckpointError:
            return None
        cursor = header.get("cursor")
        return dict(cursor) if isinstance(cursor, dict) else None

    def _run(self, record: RunRecord) -> RunResult:
        spec = record.spec
        session = self._pool.acquire(spec)
        # One log spans preparation and the run so fallbacks taken while
        # standing the oracle up (corrupt-cache rebuild, CH demoted to
        # lazy) surface in the run's result and the service metrics.
        degradations = DegradationLog()

        def prepare():
            # The injectable fault site sits inside the retried call, so
            # a scheduled ``fail_first`` exercises exactly this path.
            fault_point("session.prepare")
            return session.prepare(spec, degradations=degradations)

        # Thread-safe preparation: concurrent requests for one
        # network/oracle identity block here while the first builds.
        # Transient IO failures get one quick retry; a failure that
        # survives it counts against the identity's circuit breaker.
        try:
            workload = retry_call(prepare, policy=PREPARE_RETRY_POLICY)
        except Exception:
            self._pool.record_failure(spec)
            raise
        self._pool.record_success(spec)
        batcher = self._batcher_for(workload.network)
        run_workload = batched_workload(workload, batcher)
        provider = None
        if spec.algorithm.lower() == "watter-expect" and record.resume_path is None:
            # The memoised provider (fitted to the spec's own source),
            # exactly as a direct Session.run(spec) would bootstrap it —
            # passing the batched workload below must not change which
            # provider serves the run.  (A resumed dispatcher carries
            # its provider inside the checkpoint.)
            provider = session.expect_provider(spec)
        hooks = self._hooks_for(record, degradations)
        return session.run(
            spec,
            hooks=hooks,
            workload=run_workload,
            provider=provider,
            cancellation=record.cancellation,
            degradations=degradations,
            resume_from=record.resume_path,
        )

    def _batcher_for(self, network: RoadNetwork) -> OracleBatcher:
        with self._lock:
            batcher = self._batchers.get(id(network))
            if batcher is None:
                batcher = OracleBatcher(network)
                self._batchers[id(network)] = batcher
            return batcher

    def _hooks_for(
        self, record: RunRecord, degradations: DegradationLog | None = None
    ) -> SimulationHooks | None:
        hooks: list[SimulationHooks | None] = []
        with self._lock:
            hooks.append(self._event_stores.get(record.run_id))
        if self._trace_dir is not None:
            hooks.append(
                JsonlSink(
                    self._trace_dir / f"{record.run_id}.jsonl",
                    context={"run_id": record.run_id},
                )
            )
        checkpoint_path = self._checkpoint_path(record.run_id)
        if checkpoint_path is not None:
            hooks.append(
                _ServiceCheckpointer(
                    self,
                    record,
                    checkpoint_path,
                    interval=self._checkpoint_interval,
                    degradations=degradations,
                )
            )
        hooks = [hook for hook in hooks if hook is not None]
        if not hooks:
            return None
        if len(hooks) == 1:
            return hooks[0]
        return CompositeHooks(hooks)

    @staticmethod
    def _summarise(result: RunResult) -> dict[str, Any]:
        metrics = result.metrics.summary_row()
        oracle_stats = result.oracle_stats
        return {
            "metrics": metrics,
            "graph_hash": result.graph_hash,
            "timings": dict(result.timings),
            "oracle_stats": dict(oracle_stats) if oracle_stats else None,
            "degradations": [dict(event) for event in result.degradations],
        }

    def _fold_degradations(self, events) -> None:
        with self._lock:
            for event in events:
                site = event.get("site", "unknown") if isinstance(event, Mapping) else "unknown"
                self._degradation_counters[site] = (
                    self._degradation_counters.get(site, 0) + 1
                )

    def _fold_oracle_counters(self, result: RunResult) -> None:
        stats = result.oracle_stats
        if not stats:
            return
        backend = result.spec.config().oracle_backend
        with self._lock:
            counters = self._oracle_counters.setdefault(backend, {})
            counters["runs"] = counters.get("runs", 0) + 1
            for key, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                counters[key] = counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def get(self, run_id: str) -> RunRecord:
        """The record of one run (404-style error when unknown).

        With a state dir, runs that finished in a *previous* process
        (or were evicted from the in-memory window) are served from the
        durable result store — restart-transparent to clients polling
        a run id.
        """
        with self._lock:
            record = self._records.get(run_id)
        if record is None and self._results is not None:
            document = self._results.load(run_id)
            if document is not None:
                with self._lock:
                    self._recovered["restored"] += 1
                return _record_from_document(run_id, document)
        if record is None:
            raise ProtocolError(404, "unknown-run", f"no run with id {run_id!r}")
        return record

    def wait(self, run_id: str, timeout: float | None = None) -> RunRecord:
        """Block until the run finished (or ``timeout`` elapsed)."""
        record = self.get(run_id)
        record.done.wait(timeout)
        return record

    def cancel(self, run_id: str, reason: str = "cancelled by request") -> RunRecord:
        """Request cancellation of a queued or running run.

        A queued run is cancelled immediately (the executor's claim
        then no-ops); a running run is asked to stop at its next tick
        boundary — the record reaches ``cancelled`` when the engine
        unwinds.  Cancelling a finished run changes nothing.
        """
        record = self.get(run_id)
        if record.cancel_if_queued(reason):
            return record
        if record.cancellation is not None:
            record.cancellation.cancel(reason)
        return record

    def events(self, run_id: str) -> list[dict[str, Any]]:
        """The retained event stream of one run (empty if disabled)."""
        self.get(run_id)  # 404 on unknown ids, even with the store off
        with self._lock:
            store = self._event_stores.get(run_id)
        return store.events if store is not None else []

    def list_runs(self) -> list[RunRecord]:
        """All retained records, oldest first."""
        with self._lock:
            return [self._records[run_id] for run_id in self._record_order]

    def metrics(self) -> dict[str, Any]:
        """The ``/metrics`` document: pool, batcher, queue and latency."""
        with self._lock:
            records = [self._records[run_id] for run_id in self._record_order]
            batcher_stats = [b.stats() for b in self._batchers.values()]
            oracle_counters = {
                backend: dict(counters)
                for backend, counters in self._oracle_counters.items()
            }
            rejected_total = self._rejected_total
            degradations = dict(self._degradation_counters)
        by_status = {
            state: 0
            for state in (
                QUEUED,
                RUNNING,
                COMPLETED,
                FAILED,
                CANCELLED,
                INTERRUPTED,
            )
        }
        latencies = []
        for record in records:
            by_status[record.status] = by_status.get(record.status, 0) + 1
            if record.latency_seconds is not None:
                latencies.append(record.latency_seconds)
        batcher_total: dict[str, float] = {}
        for stats in batcher_stats:
            for key, value in stats.items():
                batcher_total[key] = batcher_total.get(key, 0) + value
        return {
            "runs": by_status,
            "queue_depth": by_status[QUEUED],
            "max_queue": self._max_queue,
            "rejected_total": rejected_total,
            "max_concurrent_runs": self._max_runs,
            "default_deadline_seconds": self._default_deadline,
            "degradations": degradations,
            "pool": self._pool.stats(),
            "batcher": batcher_total,
            "oracle": oracle_counters,
            "durability": self._durability_metrics(),
            "latency_seconds": {
                "count": len(latencies),
                "total": sum(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "max": max(latencies) if latencies else None,
            },
        }

    def _durability_metrics(self) -> dict[str, Any] | None:
        if self._state_dir is None:
            return None
        assert self._journal is not None and self._results is not None
        return {
            "state_dir": str(self._state_dir),
            "draining": self._draining,
            "journal_appends": self._journal.appends,
            "journal_append_failures": self._journal.append_failures,
            "journal_compactions": self._journal.compactions,
            "checkpoints_written": self._checkpoints_written,
            "checkpoint_write_failures": self._checkpoint_failures,
            "results_saved": self._results.saves,
            "recovered": dict(self._recovered),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, grace: float | None = 30.0) -> dict[str, Any]:
        """Graceful shutdown: stop admission, settle in-flight work, exit clean.

        Admission stops immediately (submissions come back as a
        503-shaped ``draining`` error).  In-flight and queued runs get
        ``grace`` seconds to finish on their own; whatever is still
        unfinished after the budget is cut at its next tick boundary —
        the engine writes one final forced checkpoint and the record
        lands in ``interrupted`` with its last cursor, resumable on the
        next start.  Finally a ``clean_shutdown`` marker is journaled
        (which is what lets the next startup compact the journal).

        Returns a summary: how many runs finished, were interrupted,
        or were already terminal when the drain began.
        """
        with self._lock:
            already = self._draining or self._closed
            self._draining = True
        summary = {"finished": 0, "interrupted": 0}
        if not already:
            deadline = (
                None if grace is None else time.monotonic() + max(grace, 0.0)
            )
            while True:
                pending = [
                    record
                    for record in self.list_runs()
                    if record.status not in TERMINAL_STATES
                ]
                if not pending:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    for record in pending:
                        if record.cancellation is not None:
                            record.cancellation.cancel(
                                "drain grace budget exhausted"
                            )
                        # Never-started runs have no engine to unwind;
                        # settle them here (claim() then refuses).
                        if record.status == QUEUED:
                            record.mark_interrupted(
                                "interrupted by drain before starting",
                                checkpoint=None,
                            )
                            self._finalize_durable(record)
                    deadline = None  # keep waiting for the unwinding runs
                time.sleep(0.05)
        self.shutdown(wait=True)
        for record in self.list_runs():
            if record.status == INTERRUPTED:
                summary["interrupted"] += 1
            elif record.status in TERMINAL_STATES:
                summary["finished"] += 1
        return summary

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions and (optionally) drain in-flight runs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        # The marker that distinguishes "process exited" from "process
        # died": its presence at the journal's tail is what authorises
        # compaction on the next startup.
        self._journal_append({"type": "clean_shutdown"})
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)


class _ServiceCheckpointer(Checkpointer):
    """A per-run checkpointer that also journals and counts its writes."""

    def __init__(
        self,
        service: ScenarioService,
        record: RunRecord,
        path: Path,
        *,
        interval: int,
        degradations: DegradationLog | None = None,
    ) -> None:
        super().__init__(path, interval=interval, degradations=degradations)
        self._service = service
        self._record = record

    def on_checkpoint(self, checkpoint: RunCheckpoint) -> None:
        before = self.writes
        super().on_checkpoint(checkpoint)
        if self.writes > before:
            cursor = checkpoint.cursor.as_dict()
            self._record.checkpoint = cursor
            self._service._checkpoints_written += 1
            self._service._journal_append(
                {
                    "type": "checkpointed",
                    "run_id": self._record.run_id,
                    "cursor": cursor,
                }
            )
        else:
            self._service._checkpoint_failures += 1


def _run_number(run_id: str) -> int | None:
    """The sequence number inside a service-issued ``run-%06d`` id."""
    if not run_id.startswith("run-"):
        return None
    try:
        return int(run_id[4:])
    except ValueError:
        return None


def _record_from_document(run_id: str, document: Mapping[str, Any]) -> RunRecord:
    """Rehydrate a terminal record from its durable result document."""
    try:
        spec = ScenarioSpec.from_dict(document.get("spec") or {})
    except ConfigurationError as exc:
        raise ProtocolError(
            404,
            "unknown-run",
            f"run {run_id!r} has a stored result but its spec no longer "
            f"parses: {exc}",
        ) from exc
    record = RunRecord(run_id=run_id, spec=spec)
    record.status = document.get("status", COMPLETED)
    record.submitted_at = document.get("submitted_at") or record.submitted_at
    record.started_at = document.get("started_at")
    record.finished_at = document.get("finished_at")
    result = document.get("result")
    record.result = dict(result) if isinstance(result, Mapping) else None
    error = document.get("error")
    record.error = dict(error) if isinstance(error, Mapping) else None
    checkpoint = document.get("checkpoint")
    record.checkpoint = (
        dict(checkpoint) if isinstance(checkpoint, Mapping) else None
    )
    resumed = document.get("resumed_from")
    record.resumed_from = dict(resumed) if isinstance(resumed, Mapping) else None
    record.done.set()
    return record
