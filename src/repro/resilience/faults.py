"""Deterministic fault injection: seeded failure schedules for chaos tests.

The property the resilience layer must hold — *under faults, a run
either reproduces its fault-free metrics exactly or fails with a
structured, attributed error; it never hangs and never silently drops
orders* — is only testable if faults are reproducible.  This module
makes them so: a :class:`FaultInjector` carries a **schedule** mapping
named fault *sites* to what happens on which call, and the runtime's
transient-failure points call :func:`fault_point` (a no-op unless an
injector is installed) at those sites.

Instrumented sites today:

==========================  ================================================
site                        where it fires
==========================  ================================================
``oracle.cache.load``       each CH cache-file read attempt
``oracle.cache.save``       each CH cache-file write attempt
``oracle.cache.file``       corruption hook: garbles the cache file on disk
``oracle.ch.build``         each from-scratch CH contraction
``session.prepare``         each serve-layer session preparation attempt
``dispatch.shard``          each shard task (thread or forked process)
``journal.append``          each write-ahead run-journal append attempt
``checkpoint.write``        each run-checkpoint file write attempt
``cache.lock``              each cross-process cache-lock acquisition
==========================  ================================================

Per-site schedule keys: ``fail_calls`` (1-based call numbers that
raise), ``fail_first`` (shorthand for calls ``1..n``), ``exception``
(``"os"`` -> :class:`InjectedOSError`, ``"runtime"`` ->
:class:`InjectedRuntimeError`), ``latency_seconds`` (sleep injected on
every call), ``kill_calls`` (hard-exit the worker *process* — honoured
only inside forked children; in the parent it raises instead, so a
mis-targeted schedule can never kill the test process), and
``corrupt_calls`` (for corruption hooks: which invocations garble the
file).  Injected exceptions carry ``site`` and ``call`` so errors stay
attributable end to end.

Counters are per-process: a forked shard worker inherits the installed
injector and its counts at fork time, then counts its own calls — which
is exactly what makes ``kill_calls`` on ``dispatch.shard``
deterministic per worker.

Install an injector process-wide with :func:`install_injector` /
:func:`uninstall_injector`, scoped with :func:`injected_faults`, or
from the CLI with ``repro serve --inject-faults schedule.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from contextlib import contextmanager


class InjectedOSError(OSError):
    """An injected transient IO failure, attributed to its fault site."""

    def __init__(self, site: str, call: int, message: str | None = None) -> None:
        detail = message or f"injected fault at {site!r} (call {call})"
        super().__init__(detail)
        self.site = site
        self.call = call


class InjectedRuntimeError(RuntimeError):
    """An injected non-IO failure, attributed to its fault site."""

    def __init__(self, site: str, call: int, message: str | None = None) -> None:
        detail = message or f"injected fault at {site!r} (call {call})"
        super().__init__(detail)
        self.site = site
        self.call = call


_EXCEPTION_KINDS = {"os": InjectedOSError, "runtime": InjectedRuntimeError}

_SITE_KEYS = frozenset(
    {
        "fail_calls",
        "fail_first",
        "exception",
        "message",
        "latency_seconds",
        "kill_calls",
        "corrupt_calls",
        "corrupt_first",
    }
)

#: Exit code a killed worker dies with (visible in worker-death tests).
KILLED_EXIT_CODE = 113


def _call_set(value: Any, key: str, site: str) -> frozenset[int]:
    if value is None:
        return frozenset()
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, int) and not isinstance(item, bool) and item >= 1
        for item in value
    ):
        raise ValueError(
            f"fault site {site!r}: {key} must be a list of 1-based call "
            f"numbers, got {value!r}"
        )
    return frozenset(value)


@dataclass(frozen=True)
class SiteSchedule:
    """What happens at one fault site, per 1-based call number."""

    fail_calls: frozenset[int] = field(default_factory=frozenset)
    exception: str = "os"
    message: str | None = None
    latency_seconds: float = 0.0
    kill_calls: frozenset[int] = field(default_factory=frozenset)
    corrupt_calls: frozenset[int] = field(default_factory=frozenset)

    @classmethod
    def from_dict(cls, site: str, data: Mapping[str, Any]) -> "SiteSchedule":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fault site {site!r}: schedule must be a mapping, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - _SITE_KEYS)
        if unknown:
            raise ValueError(
                f"fault site {site!r}: unknown schedule keys {unknown}; "
                f"expected {sorted(_SITE_KEYS)}"
            )
        fail_calls = set(_call_set(data.get("fail_calls"), "fail_calls", site))
        first = data.get("fail_first")
        if first is not None:
            if not isinstance(first, int) or isinstance(first, bool) or first < 0:
                raise ValueError(
                    f"fault site {site!r}: fail_first must be a non-negative "
                    f"integer, got {first!r}"
                )
            fail_calls.update(range(1, first + 1))
        corrupt_calls = set(
            _call_set(data.get("corrupt_calls"), "corrupt_calls", site)
        )
        corrupt_first = data.get("corrupt_first")
        if corrupt_first is not None:
            if (
                not isinstance(corrupt_first, int)
                or isinstance(corrupt_first, bool)
                or corrupt_first < 0
            ):
                raise ValueError(
                    f"fault site {site!r}: corrupt_first must be a "
                    f"non-negative integer, got {corrupt_first!r}"
                )
            corrupt_calls.update(range(1, corrupt_first + 1))
        exception = data.get("exception", "os")
        if exception not in _EXCEPTION_KINDS:
            raise ValueError(
                f"fault site {site!r}: exception must be one of "
                f"{sorted(_EXCEPTION_KINDS)}, got {exception!r}"
            )
        latency = data.get("latency_seconds", 0.0)
        if (
            isinstance(latency, bool)
            or not isinstance(latency, (int, float))
            or latency < 0
        ):
            raise ValueError(
                f"fault site {site!r}: latency_seconds must be a "
                f"non-negative number, got {latency!r}"
            )
        message = data.get("message")
        if message is not None and not isinstance(message, str):
            raise ValueError(
                f"fault site {site!r}: message must be a string, got {message!r}"
            )
        return cls(
            fail_calls=frozenset(fail_calls),
            exception=exception,
            message=message,
            latency_seconds=float(latency),
            kill_calls=_call_set(data.get("kill_calls"), "kill_calls", site),
            corrupt_calls=frozenset(corrupt_calls),
        )


def _in_forked_child() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


class FaultInjector:
    """Seeded, site-keyed fault schedule with per-process call counters."""

    def __init__(
        self, schedule: Mapping[str, Mapping[str, Any]], *, seed: int = 0
    ) -> None:
        if not isinstance(schedule, Mapping):
            raise ValueError(
                f"a fault schedule must be a mapping of site -> spec, got "
                f"{type(schedule).__name__}"
            )
        self._sites = {
            site: SiteSchedule.from_dict(site, spec)
            for site, spec in schedule.items()
        }
        self._seed = seed
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultInjector":
        """Build from a schedule document.

        Accepts either a flat ``{site: spec}`` mapping or the wrapper
        ``{"seed": n, "faults": {site: spec}, ...}`` (extra top-level
        keys such as ``"expect"`` are ignored, so committed schedule
        files can carry test metadata).
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a fault schedule document must be a mapping, got "
                f"{type(data).__name__}"
            )
        if "faults" in data:
            faults = data["faults"]
            seed = data.get("seed", 0)
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ValueError(f"fault schedule seed must be an int, got {seed!r}")
            return cls(faults, seed=seed)
        return cls(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultInjector":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _next_call(self, site: str) -> int:
        with self._lock:
            call = self._counts.get(site, 0) + 1
            self._counts[site] = call
            return call

    def fire(self, site: str) -> None:
        """One instrumented call passed this site: maybe fault it.

        Order of effects on a scheduled call: injected latency first,
        then a hard worker kill (child processes only — in the parent
        it raises instead of exiting), then the scheduled exception.
        """
        call = self._next_call(site)
        schedule = self._sites.get(site)
        if schedule is None:
            return
        if schedule.latency_seconds > 0:
            time.sleep(schedule.latency_seconds)
        if call in schedule.kill_calls:
            if _in_forked_child():
                os._exit(KILLED_EXIT_CODE)
            raise InjectedRuntimeError(
                site, call, f"kill scheduled at {site!r} outside a worker process"
            )
        if call in schedule.fail_calls:
            raise _EXCEPTION_KINDS[schedule.exception](
                site, call, schedule.message
            )

    def corrupt_file(self, site: str, path: str | Path) -> bool:
        """Garble ``path`` if this invocation of ``site`` is scheduled.

        Writes seeded garbage (deterministic per site + seed) over the
        file, returning whether corruption happened.  Missing files are
        never created — corruption models bit rot, not new data.
        """
        call = self._next_call(site)
        schedule = self._sites.get(site)
        if schedule is None or call not in schedule.corrupt_calls:
            return False
        file_path = Path(path)
        if not file_path.exists():
            return False
        rng_seed = self._seed ^ zlib.crc32(site.encode("utf-8")) ^ call
        import random

        rng = random.Random(rng_seed)
        garbage = bytes(rng.randrange(256) for _ in range(64))
        file_path.write_bytes(b"\x00corrupt\x00" + garbage)
        return True

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Per-site call counts seen so far (this process)."""
        with self._lock:
            return dict(self._counts)

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._sites))


# ----------------------------------------------------------------------
# process-wide installation (inherited by forked workers)
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None


def install_injector(injector: FaultInjector) -> None:
    """Install a process-wide injector (forked children inherit it)."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall_injector() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_injector() -> FaultInjector | None:
    return _ACTIVE


@contextmanager
def injected_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped installation for tests: installs, yields, uninstalls."""
    install_injector(injector)
    try:
        yield injector
    finally:
        uninstall_injector()


def fault_point(site: str) -> None:
    """Hook the runtime plants at transient-failure points (no-op idle)."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site)


def corrupt_file_if_scheduled(site: str, path: str | Path) -> bool:
    """Hook planted before cache reads: maybe garble the file first."""
    injector = _ACTIVE
    if injector is not None:
        return injector.corrupt_file(site, path)
    return False
