"""Cooperative deadlines and cancellation for long-running scenario runs.

A resident service cannot afford a stuck simulation: one run that never
returns pins an executor slot forever.  Preemption is not an option —
the engine is pure Python and mid-tick state is not safely abortable —
so cancellation here is **cooperative**: the caller hands the run a
:class:`CancellationToken`, and the engine calls :meth:`CancellationToken.
check` at every tick boundary (and before every order submission).  A
token that has been cancelled — explicitly via :meth:`CancellationToken.
cancel` (``POST /runs/<id>/cancel``) or implicitly because its
wall-clock deadline expired — makes the next ``check()`` raise
:class:`RunCancelled`, which unwinds the run cleanly through the
engine's ``finally`` blocks (worker pools are torn down, nothing
leaks).

The deadline clock starts at :meth:`CancellationToken.start` — stamped
when the run actually begins executing, not when it was submitted — so
queue time never eats a run's budget.  Both the clock source and the
deadline arithmetic use ``time.monotonic`` (injectable for tests).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..exceptions import ReproError


class RunCancelled(ReproError):
    """A run was cancelled — by deadline expiry or by explicit request.

    ``partial`` carries whatever the unwinding layers could salvage
    (wall-clock timings, the graph hash, degradation events); the
    serving layer attaches it to the run record so a cancelled run is
    still accountable.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
        self.partial: dict[str, Any] | None = None


class CancellationToken:
    """Thread-safe cancellation flag with an optional wall-clock deadline.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget measured from :meth:`start`; ``None`` means
        no deadline (the token only cancels explicitly).
    clock:
        Monotonic time source; injectable so tests drive expiry
        deterministically.
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self._clock = clock
        self._deadline_seconds = deadline_seconds
        self._started_at: float | None = None
        self._deadline_at: float | None = None
        self._reason: str | None = None
        self._lock = threading.Lock()

    @property
    def deadline_seconds(self) -> float | None:
        return self._deadline_seconds

    def start(self) -> None:
        """Stamp the deadline clock (idempotent; first call wins)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()
                if self._deadline_seconds is not None:
                    self._deadline_at = self._started_at + self._deadline_seconds

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel the token; the first recorded reason wins."""
        with self._lock:
            if self._reason is None:
                self._reason = reason

    def _poll_deadline(self) -> None:
        with self._lock:
            if (
                self._reason is None
                and self._deadline_at is not None
                and self._clock() >= self._deadline_at
            ):
                self._reason = (
                    f"deadline of {self._deadline_seconds:g}s exceeded"
                )

    @property
    def cancelled(self) -> bool:
        """Whether the token has been cancelled (deadline expiry counts)."""
        self._poll_deadline()
        with self._lock:
            return self._reason is not None

    @property
    def reason(self) -> str | None:
        with self._lock:
            return self._reason

    def elapsed_seconds(self) -> float | None:
        """Seconds since :meth:`start` (``None`` before it)."""
        with self._lock:
            if self._started_at is None:
                return None
            return self._clock() - self._started_at

    def remaining_seconds(self) -> float | None:
        """Budget left before deadline expiry (``None`` without one)."""
        with self._lock:
            if self._deadline_at is None:
                return None
            return self._deadline_at - self._clock()

    def check(self) -> None:
        """Raise :class:`RunCancelled` if the token is cancelled.

        The cooperative checkpoint: cheap enough to call at every tick
        boundary (one monotonic read and one lock acquisition).
        """
        self._poll_deadline()
        with self._lock:
            reason = self._reason
        if reason is not None:
            raise RunCancelled(reason)
