"""Degradation chains: recorded fallbacks and per-identity circuit breaking.

When a component of the runtime fails persistently, the run should
*degrade*, not die — a corrupt CH cache rebuilds from scratch, a CH
contraction that itself fails falls back to the ``lazy`` backend, a
process-mode dispatch pool whose workers keep dying falls back to
serial execution.  Every such fallback is an observable event: the run
that degraded still answers, but its :class:`~repro.api.RunResult`
(``degradations``) and the service ``/metrics`` say exactly what was
given up, where, and why.

:class:`CircuitBreaker` is the service-side complement: a pooled
session whose preparation keeps failing (a bad cache volume, an
impossible oracle config) is quarantined for a cool-down instead of
re-running its expensive failing build on every request.  The breaker
follows the classic three states — ``closed`` (normal), ``open``
(refusing), ``half-open`` (one trial request probes recovery).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..exceptions import ReproError


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback: what degraded, from what, to what, and why."""

    site: str
    from_value: str
    to_value: str
    reason: str

    def as_dict(self) -> dict[str, str]:
        return {
            "site": self.site,
            "from": self.from_value,
            "to": self.to_value,
            "reason": self.reason,
        }


class DegradationLog:
    """Thread-safe, append-only record of a run's degradation events.

    One log travels with one run (session -> oracle registry ->
    dispatch engine); the serving layer folds the events into the run
    summary and the ``/metrics`` counters.
    """

    def __init__(self) -> None:
        self._events: list[DegradationEvent] = []
        self._lock = threading.Lock()

    def record(
        self, site: str, from_value: str, to_value: str, reason: str
    ) -> DegradationEvent:
        event = DegradationEvent(
            site=site, from_value=from_value, to_value=to_value, reason=reason
        )
        with self._lock:
            self._events.append(event)
        return event

    @property
    def events(self) -> tuple[DegradationEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def as_dicts(self) -> list[dict[str, str]]:
        return [event.as_dict() for event in self.events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class CircuitOpenError(ReproError):
    """A quarantined identity refused a request (503-shaped upstream)."""

    def __init__(self, detail: str, *, retry_after_seconds: float | None = None):
        super().__init__(detail)
        self.retry_after_seconds = retry_after_seconds


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a timed half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_seconds:
        Cool-down after which one trial request is let through
        (half-open); its success closes the breaker, its failure
        re-opens it for another full cool-down.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_seconds < 0:
            raise ValueError("reset_seconds must be non-negative")
        self._failure_threshold = failure_threshold
        self._reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = CLOSED
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _maybe_half_open(self) -> None:
        """Open -> half-open after the cool-down (lock held)."""
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self._reset_seconds
        ):
            self._state = HALF_OPEN

    def allow(self) -> bool:
        """Whether a request may proceed; a half-open probe is consumed.

        At most one trial runs per cool-down window: the transition to
        half-open admits exactly one caller (this call), and further
        calls are refused until that trial reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                # Consume the probe: revert to OPEN with a fresh window
                # so concurrent callers are refused while it runs.
                self._state = OPEN
                self._opened_at = self._clock()
                return True
            return False

    def seconds_until_retry(self) -> float | None:
        """Cool-down remaining while open (``None`` when requests flow)."""
        with self._lock:
            self._maybe_half_open()
            if self._state != OPEN or self._opened_at is None:
                return None
            remaining = self._reset_seconds - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self._failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED
            self._opened_at = None
