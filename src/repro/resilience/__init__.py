"""``repro.resilience`` — the stdlib-only fault-tolerance runtime.

Four building blocks, threaded through the serve, api, oracle and
dispatch layers:

* **Deadlines & cancellation** (:mod:`~repro.resilience.cancellation`)
  — a :class:`CancellationToken` the engine checks cooperatively at
  tick boundaries; expiry or an explicit cancel raises
  :class:`RunCancelled`, which unwinds cleanly (pools torn down,
  partial timings preserved).
* **Retry with backoff + jitter** (:mod:`~repro.resilience.retry`) —
  a frozen :class:`RetryPolicy` applied at the runtime's transient
  failure points (oracle cache IO, shard dispatch, session
  preparation); jitter is seeded, so retried runs stay reproducible.
* **Degradation chains** (:mod:`~repro.resilience.degradation`) —
  recorded fallbacks (:class:`DegradationLog` travels with each run
  into ``RunResult.degradations`` and ``/metrics``) plus a
  per-identity :class:`CircuitBreaker` quarantining repeatedly failing
  pooled sessions.
* **Deterministic fault injection** (:mod:`~repro.resilience.faults`)
  — seeded :class:`FaultInjector` schedules behind the
  :func:`fault_point` hooks, powering the chaos property tests and
  ``repro serve --inject-faults``.

See ``docs/RESILIENCE.md`` for semantics and the failure-mode table.
"""

from .cancellation import CancellationToken, RunCancelled
from .degradation import (
    CircuitBreaker,
    CircuitOpenError,
    DegradationEvent,
    DegradationLog,
)
from .faults import (
    FaultInjector,
    InjectedOSError,
    InjectedRuntimeError,
    active_injector,
    corrupt_file_if_scheduled,
    fault_point,
    injected_faults,
    install_injector,
    uninstall_injector,
)
from .retry import DEFAULT_IO_POLICY, RetryPolicy, retry_call, retrying

__all__ = [
    "CancellationToken",
    "RunCancelled",
    "RetryPolicy",
    "retry_call",
    "retrying",
    "DEFAULT_IO_POLICY",
    "DegradationEvent",
    "DegradationLog",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultInjector",
    "InjectedOSError",
    "InjectedRuntimeError",
    "fault_point",
    "corrupt_file_if_scheduled",
    "install_injector",
    "uninstall_injector",
    "active_injector",
    "injected_faults",
]
