"""Retry with exponential backoff and deterministic jitter.

The transient-failure points of the runtime — oracle cache IO, session
preparation, a process-pool shard whose worker died — share one retry
vocabulary: a frozen :class:`RetryPolicy` describing *how often* and
*how patiently* to retry, applied either explicitly
(:func:`retry_call`) or as a decorator (:func:`retrying`).

Backoff is the standard exponential ramp capped at ``max_delay``;
jitter is a symmetric fraction of each delay drawn from a **seeded**
RNG, so a given policy produces the same delay sequence on every run —
the fault-injection property tests depend on retried runs being
reproducible, and production behaviour is no worse for it (the jitter
still decorrelates independent callers because each ``retry_call``
draws its own sequence position).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient-failure point retries.

    Attributes
    ----------
    max_attempts:
        Total tries including the first; ``1`` disables retrying.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Exponential backoff factor between consecutive delays.
    max_delay:
        Cap on any single delay.
    jitter:
        Symmetric jitter fraction: each delay is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    retry_on:
        Exception types that count as transient; anything else
        propagates immediately.
    seed:
        Seed of the jitter RNG (deterministic delays per policy use).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    retry_on: tuple[type[BaseException], ...] = field(default=(OSError,))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def delays(self) -> list[float]:
        """The jittered backoff sequence (one delay per retry)."""
        rng = random.Random(self.seed)
        delays: list[float] = []
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            capped = min(delay, self.max_delay)
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(max(0.0, capped * factor))
            delay *= self.multiplier
        return delays


#: Conservative default for small-file IO: three quick tries.
DEFAULT_IO_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.02, max_delay=0.2, retry_on=(OSError,)
)


def retry_call(
    fn: Callable[..., T],
    *args: Any,
    policy: RetryPolicy = DEFAULT_IO_POLICY,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    **kwargs: Any,
) -> T:
    """Call ``fn`` under ``policy``; re-raise the last transient failure.

    ``on_retry(attempt, exc, delay)`` fires before each sleep (attempt
    counts from 1), letting callers count failures or record
    degradation events without wrapping the whole call.
    """
    delays = policy.delays()
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:  # noqa: PERF203 - retry loop
            last = exc
            if attempt >= policy.max_attempts:
                break
            delay = delays[attempt - 1]
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
    assert last is not None
    raise last


def retrying(
    policy: RetryPolicy = DEFAULT_IO_POLICY,
    *,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args: Any, **kwargs: Any) -> T:
            return retry_call(
                fn, *args, policy=policy, on_retry=on_retry, sleep=sleep, **kwargs
            )

        wrapper.__name__ = getattr(fn, "__name__", "retrying")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate
