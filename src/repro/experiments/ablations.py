"""Ablation studies corresponding to the paper's appendix experiments.

The main text points to appendix sections for the sensitivity of WATTER
to the grid-index size (Appendix D), the watch window ``eta``
(Appendix F), the decision time slot ``delta_t`` (Appendix G) and the
reinforcement-learning loss weight ``omega`` (Appendix C/E).  These
functions run the corresponding sweeps for the WATTER variants so the
design choices called out in DESIGN.md can be re-validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import LearningConfig, SimulationConfig
from ..core.state import StateEncoder
from ..core.threshold import ThresholdOptimizer, fit_extra_time_distribution
from ..datasets.workloads import build_workload
from ..learning.trainer import ValueFunctionTrainer, generate_experience
from ..network.grid import GridIndex
from .config import PARAMETER_GRID, default_config
from .runner import ExperimentRun, _run_on_workload, run_comparison
from .sweeps import SweepResult

_WATTER_VARIANTS = ("WATTER-expect", "WATTER-online", "WATTER-timeout")


def vary_grid_size(
    dataset: str = "CDC",
    grid_sizes: Sequence[int] = PARAMETER_GRID["grid_sizes"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = _WATTER_VARIANTS,
) -> SweepResult:
    """Appendix D: sensitivity of the WATTER variants to the grid-index size."""
    base = base_config or default_config(dataset)
    result = SweepResult(parameter="grid_size", dataset=dataset)
    for size in grid_sizes:
        config = base.with_overrides(grid_size=int(size))
        for metrics in run_comparison(dataset, config, algorithms):
            result.runs.append(
                ExperimentRun(
                    algorithm=metrics.algorithm,
                    dataset=dataset,
                    parameter="grid_size",
                    value=float(size),
                    metrics=metrics,
                )
            )
    return result


def vary_watch_window(
    dataset: str = "CDC",
    watch_windows: Sequence[float] = PARAMETER_GRID["watch_windows"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = _WATTER_VARIANTS,
) -> SweepResult:
    """Appendix F: sensitivity to the watch-window scale ``eta``."""
    base = base_config or default_config(dataset)
    result = SweepResult(parameter="watch_window_scale", dataset=dataset)
    for eta in watch_windows:
        config = base.with_overrides(watch_window_scale=float(eta))
        for metrics in run_comparison(dataset, config, algorithms):
            result.runs.append(
                ExperimentRun(
                    algorithm=metrics.algorithm,
                    dataset=dataset,
                    parameter="watch_window_scale",
                    value=float(eta),
                    metrics=metrics,
                )
            )
    return result


def vary_time_slot(
    dataset: str = "CDC",
    time_slots: Sequence[float] = PARAMETER_GRID["time_slots"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = _WATTER_VARIANTS,
) -> SweepResult:
    """Appendix G: sensitivity to the decision time slot ``delta_t``.

    The check period follows the time slot, so a larger ``delta_t``
    means fewer (cheaper) pool checks but coarser decisions.
    """
    base = base_config or default_config(dataset)
    result = SweepResult(parameter="time_slot", dataset=dataset)
    for slot in time_slots:
        config = base.with_overrides(time_slot=float(slot), check_period=float(slot))
        for metrics in run_comparison(dataset, config, algorithms):
            result.runs.append(
                ExperimentRun(
                    algorithm=metrics.algorithm,
                    dataset=dataset,
                    parameter="time_slot",
                    value=float(slot),
                    metrics=metrics,
                )
            )
    return result


@dataclass
class LossWeightAblation:
    """Training diagnostics per loss-weight value (Appendix C/E)."""

    dataset: str
    rows: list[dict] = field(default_factory=list)

    def omegas(self) -> list[float]:
        """The loss-weight values covered."""
        return [row["omega"] for row in self.rows]


def vary_loss_weight(
    dataset: str = "CDC",
    loss_weights: Sequence[float] = PARAMETER_GRID["loss_weights"],
    base_config: SimulationConfig | None = None,
    learning_config: LearningConfig | None = None,
) -> LossWeightAblation:
    """Appendix C/E: effect of the TD / target loss mix ``omega``.

    For each ``omega`` the value network is trained on the same recorded
    experience and the resulting WATTER-expect run is evaluated, so the
    rows show both the training loss and the online extra time obtained.
    """
    base = base_config or default_config(dataset)
    base = base.with_overrides(num_orders=max(base.num_orders // 2, 50))
    learning = learning_config or LearningConfig(epochs=3)
    workload = build_workload(dataset, base)

    bootstrap = _run_on_workload("WATTER-online", workload, base)
    extra_times = [
        outcome.extra_time
        for outcome in bootstrap.collector.outcomes
        if outcome.served and outcome.extra_time > 0
    ] or [order.penalty * 0.5 for order in workload.orders]
    mixture = fit_extra_time_distribution(extra_times, seed=base.seed)
    optimizer = ThresholdOptimizer(mixture)
    encoder = StateEncoder(
        GridIndex(workload.network, size=base.grid_size),
        time_slot=base.time_slot,
        horizon=base.horizon,
    )
    targets = optimizer.optimal_thresholds(workload.orders)
    transitions = generate_experience(workload, base, encoder, optimizer, targets)

    ablation = LossWeightAblation(dataset=dataset)
    for omega in loss_weights:
        config = LearningConfig(
            hidden_sizes=learning.hidden_sizes,
            learning_rate=learning.learning_rate,
            discount=learning.discount,
            batch_size=learning.batch_size,
            replay_capacity=learning.replay_capacity,
            target_sync_period=learning.target_sync_period,
            epochs=learning.epochs,
            loss_weight=float(omega),
            seed=learning.seed,
        )
        trainer = ValueFunctionTrainer(encoder, config)
        trainer.add_experience(transitions)
        report = trainer.train()
        provider = trainer.build_provider()
        result = _run_on_workload("WATTER-expect", workload, base, provider)
        ablation.rows.append(
            {
                "omega": float(omega),
                "training_loss": report.mean_loss,
                "transitions": report.transitions,
                "extra_time": result.metrics.total_extra_time,
                "service_rate": result.metrics.service_rate,
            }
        )
    return ablation
