"""Parameter sweeps reproducing Figures 3-6 of the paper.

Each sweep varies one Table III parameter while holding the others at
their defaults and reports the four metrics (Extra Time, Unified Cost,
Service Rate, Running Time) for every compared algorithm at every
parameter value — exactly the series plotted in the corresponding
figure.  The raw rows are returned as :class:`ExperimentRun` records and
can be rendered with :func:`repro.experiments.reporting.format_sweep_table`.

The sweeps are thin adapters over :func:`repro.api.sweep`: every
parameter value becomes one :class:`~repro.api.ScenarioSpec`, and the
whole sweep shares a single :class:`~repro.api.Session` so the road
network (and any heavyweight oracle preprocessing) is built once
instead of once per value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import SimulationConfig
from .config import PARAMETER_GRID, default_config, worker_counts_scaled
from .runner import ALGORITHMS, ExperimentRun


@dataclass
class SweepResult:
    """All runs of one sweep (one figure panel row in the paper)."""

    parameter: str
    dataset: str
    runs: list[ExperimentRun] = field(default_factory=list)

    def values(self) -> list[float]:
        """The distinct parameter values in sweep order."""
        seen: list[float] = []
        for run in self.runs:
            if run.value not in seen:
                seen.append(run.value)
        return seen

    def algorithms(self) -> list[str]:
        """The algorithms that appear in the sweep."""
        seen: list[str] = []
        for run in self.runs:
            if run.algorithm not in seen:
                seen.append(run.algorithm)
        return seen

    def series(self, algorithm: str, metric: str) -> list[float]:
        """One plotted line: ``metric`` of ``algorithm`` across the sweep values."""
        series = []
        for value in self.values():
            for run in self.runs:
                if run.algorithm == algorithm and run.value == value:
                    series.append(getattr(run.metrics, metric))
                    break
        return series


def _run_sweep(
    parameter: str,
    values: Sequence[float],
    dataset: str,
    base_config: SimulationConfig,
    algorithms: Sequence[str],
    config_for_value,
    use_rl: bool = False,
) -> SweepResult:
    from ..api import ScenarioSpec, sweep as api_sweep

    base_spec = ScenarioSpec.from_config(dataset, base_config, use_rl=use_rl)

    def spec_for_value(_spec: ScenarioSpec, value) -> ScenarioSpec:
        return ScenarioSpec.from_config(
            dataset, config_for_value(base_config, value), use_rl=use_rl
        )

    points = api_sweep(
        base_spec,
        parameter,
        values,
        algorithms=algorithms,
        use_rl=use_rl,
        spec_for_value=spec_for_value,
    )
    result = SweepResult(parameter=parameter, dataset=dataset)
    for point in points:
        for run in point.results:
            result.runs.append(
                ExperimentRun(
                    algorithm=run.metrics.algorithm,
                    dataset=dataset,
                    parameter=parameter,
                    value=float(point.value),
                    metrics=run.metrics,
                )
            )
    return result


def vary_num_orders(
    dataset: str = "CDC",
    fractions: Sequence[float] = PARAMETER_GRID["order_fractions"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = ALGORITHMS,
    use_rl: bool = False,
) -> SweepResult:
    """Figure 3: performance while varying the number of riders ``n``."""
    base = base_config or default_config(dataset)

    def with_value(config: SimulationConfig, fraction: float) -> SimulationConfig:
        return config.with_overrides(
            num_orders=max(int(config.num_orders * fraction), 10)
        )

    return _run_sweep(
        "num_orders", fractions, dataset, base, algorithms, with_value, use_rl
    )


def vary_num_workers(
    dataset: str = "CDC",
    worker_counts: Sequence[int] | None = None,
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = ALGORITHMS,
    use_rl: bool = False,
) -> SweepResult:
    """Figure 4: performance while varying the number of workers ``m``."""
    base = base_config or default_config(dataset)
    counts = worker_counts if worker_counts is not None else worker_counts_scaled()

    def with_value(config: SimulationConfig, count: float) -> SimulationConfig:
        return config.with_overrides(num_workers=max(int(count), 1))

    return _run_sweep(
        "num_workers", counts, dataset, base, algorithms, with_value, use_rl
    )


def vary_deadline(
    dataset: str = "CDC",
    deadline_scales: Sequence[float] = PARAMETER_GRID["deadline_scales"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = ALGORITHMS,
    use_rl: bool = False,
) -> SweepResult:
    """Figure 5: performance while varying the deadline scale ``tau``."""
    base = base_config or default_config(dataset)

    def with_value(config: SimulationConfig, scale: float) -> SimulationConfig:
        return config.with_overrides(deadline_scale=float(scale))

    return _run_sweep(
        "deadline_scale", deadline_scales, dataset, base, algorithms, with_value, use_rl
    )


def vary_capacity(
    dataset: str = "CDC",
    capacities: Sequence[int] = PARAMETER_GRID["capacities"],
    base_config: SimulationConfig | None = None,
    algorithms: Sequence[str] = ALGORITHMS,
    use_rl: bool = False,
) -> SweepResult:
    """Figure 6: performance while varying the maximum vehicle capacity ``Kw``."""
    base = base_config or default_config(dataset)

    def with_value(config: SimulationConfig, capacity: float) -> SimulationConfig:
        value = max(int(capacity), 2)
        return config.with_overrides(max_capacity=value, max_group_size=value)

    return _run_sweep(
        "max_capacity", capacities, dataset, base, algorithms, with_value, use_rl
    )
