"""Micro-benchmark of the distance-oracle backends on a real workload.

``benchmark_oracles`` replays the shortest-path query mix an actual
simulation issues — approach legs from worker locations, pickup-to-
pickup shareability probes, route legs between stop nodes — against a
fresh instance of every backend, and reports setup time, query time and
cache behaviour.  The ``repro bench`` CLI subcommand and the
``benchmarks/test_bench_oracle.py`` regression benchmark both call it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

from ..config import SimulationConfig
from ..datasets.synthetic import Workload
from ..datasets.workloads import build_workload
from ..exceptions import ConfigurationError, UnreachableError
from ..network.oracle import available_backends, create_oracle
from .config import default_config


@dataclass(frozen=True)
class OracleBenchResult:
    """Timing and cache behaviour of one backend over the query mix."""

    backend: str
    setup_seconds: float
    query_seconds: float
    num_queries: int
    hit_rate: float
    sssp_runs: int

    @property
    def queries_per_second(self) -> float:
        """Query throughput (guarding the division for pathological runs)."""
        if self.query_seconds <= 0.0:
            return float("inf")
        return self.num_queries / self.query_seconds


def realistic_query_mix(
    dataset: str, config: SimulationConfig, num_queries: int
) -> tuple[list[tuple[int, int]], Workload]:
    """Build ``(source, target)`` pairs shaped like the dispatch hot path.

    Returns the pairs plus the generated :class:`Workload` (whose
    ``network.graph`` callers build oracles over).  Roughly a third of
    the queries are worker-approach legs, a third shareability pickup
    gaps, and a third route legs; pairs repeat the way pooled orders
    re-probe each other.
    """
    workload = build_workload(dataset, config)
    rng = random.Random(config.seed)
    pickups = [order.pickup for order in workload.orders]
    dropoffs = [order.dropoff for order in workload.orders]
    worker_locations = [worker.location for worker in workload.workers]
    pairs: list[tuple[int, int]] = []
    while len(pairs) < num_queries:
        kind = rng.random()
        if kind < 0.34:
            pairs.append((rng.choice(worker_locations), rng.choice(pickups)))
        elif kind < 0.67:
            pairs.append((rng.choice(pickups), rng.choice(pickups)))
        else:
            source = rng.choice(pickups + dropoffs)
            target = rng.choice(pickups + dropoffs)
            pairs.append((source, target))
    return pairs, workload


def benchmark_oracles(
    dataset: str = "CDC",
    config: SimulationConfig | None = None,
    backends: Sequence[str] | None = None,
    num_queries: int = 4000,
) -> list[OracleBenchResult]:
    """Time every backend over the same realistic query mix.

    Each backend gets a *fresh* oracle (cold caches) over the same
    network, answers the same pairs in the same order, and its answers
    are cross-checked against the first backend's for agreement.
    """
    if num_queries < 1:
        raise ConfigurationError("num_queries must be at least 1")
    config = config or default_config(dataset)
    pairs, workload = realistic_query_mix(dataset, config, num_queries)
    graph = workload.network.graph
    hint = workload.active_nodes()
    if backends is None:
        # The seed backend goes first so the table's speedup column (and
        # the agreement cross-check) is measured against it.
        names = sorted(available_backends(), key=lambda n: (n != "lazy", n))
    else:
        names = list(backends)
    results: list[OracleBenchResult] = []
    reference: list[float | None] | None = None
    for name in names:
        started = time.perf_counter()
        oracle = create_oracle(
            name,
            graph,
            nodes=hint,
            cache_size=config.oracle_cache_size,
            num_landmarks=config.oracle_landmarks,
            seed=config.seed,
        )
        setup = time.perf_counter() - started
        answers: list[float | None] = []
        started = time.perf_counter()
        for source, target in pairs:
            try:
                answers.append(oracle.travel_time(source, target))
            except UnreachableError:
                answers.append(None)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = answers
        else:
            for got, want in zip(answers, reference):
                if (got is None) != (want is None):
                    raise AssertionError(f"backend {name} disagrees on reachability")
                if got is not None and abs(got - want) > 1e-6 * max(want, 1.0):
                    raise AssertionError(
                        f"backend {name} disagrees: {got} != {want}"
                    )
        stats = oracle.stats()
        results.append(
            OracleBenchResult(
                backend=name,
                setup_seconds=setup,
                query_seconds=elapsed,
                num_queries=len(pairs),
                hit_rate=stats.hit_rate,
                sssp_runs=stats.sssp_runs,
            )
        )
    return results


def format_oracle_bench_table(
    results: Sequence[OracleBenchResult], title: str = "Distance-oracle benchmark"
) -> str:
    """Render backend timings as an aligned text table."""
    baseline = results[0].query_seconds if results else 0.0
    columns = [
        ("backend", lambda r: r.backend),
        ("setup (s)", lambda r: f"{r.setup_seconds:.3f}"),
        ("queries (s)", lambda r: f"{r.query_seconds:.3f}"),
        (
            "us/query",
            lambda r: (
                f"{1e6 * r.query_seconds / r.num_queries:.1f}"
                if r.num_queries
                else "n/a"
            ),
        ),
        ("hit rate", lambda r: f"{r.hit_rate:.3f}"),
        ("sssp runs", lambda r: f"{r.sssp_runs}"),
        (
            "speedup",
            lambda r: (
                f"{baseline / r.query_seconds:.1f}x" if r.query_seconds > 0 else "inf"
            ),
        ),
    ]
    rows = [[header for header, _ in columns]]
    for result in results:
        rows.append([extract(result) for _, extract in columns])
    widths = [max(len(row[idx]) for row in rows) for idx in range(len(columns))]
    lines = [title, "-" * len(title)]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
