"""Micro-benchmark of the distance-oracle backends on a real workload.

``benchmark_oracles`` replays the shortest-path query mix an actual
simulation issues — approach legs from worker locations, pickup-to-
pickup shareability probes, route legs between stop nodes — against a
fresh instance of every backend, and reports setup time, query time and
cache behaviour.

``benchmark_dispatch_queries`` isolates the dispatch hot path's
many-sources-to-one-target shape (every idle worker against one pickup)
and times the batched many-to-one answer against the per-source forward
path it replaced, and ``benchmark_spatial_index`` times the fleet's
ring-expanding ``find_worker_for`` against the full scan.  The ``repro
bench`` CLI subcommand and the ``benchmarks/test_bench_oracle.py``
regression benchmarks call all three.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Mapping, Sequence

from ..config import ExtraTimeWeights, SimulationConfig
from ..datasets.synthetic import Workload
from ..datasets.workloads import build_workload
from ..exceptions import ConfigurationError, UnreachableError
from ..model.group import Group
from ..model.order import Order
from ..model.worker import Worker
from ..network.generators import grid_city, large_city
from ..network.grid import GridIndex
from ..network.oracle import available_backends, create_oracle
from ..network.oracle.ch import CHOracle
from ..routing.planner import RoutePlanner
from ..simulation.fleet import WorkerFleet
from ..simulation.parallel import ParallelDispatchEngine, usable_cpu_count
from .config import default_config
from .reporting import render_aligned_table


@dataclass(frozen=True)
class OracleBenchResult:
    """Timing and cache behaviour of one backend over the query mix."""

    backend: str
    setup_seconds: float
    query_seconds: float
    num_queries: int
    hit_rate: float
    sssp_runs: int

    @property
    def queries_per_second(self) -> float:
        """Query throughput (guarding the division for pathological runs)."""
        if self.query_seconds <= 0.0:
            return float("inf")
        return self.num_queries / self.query_seconds


def realistic_query_mix(
    dataset: str, config: SimulationConfig, num_queries: int
) -> tuple[list[tuple[int, int]], Workload]:
    """Build ``(source, target)`` pairs shaped like the dispatch hot path.

    Returns the pairs plus the generated :class:`Workload` (whose
    ``network.graph`` callers build oracles over).  Roughly a third of
    the queries are worker-approach legs, a third shareability pickup
    gaps, and a third route legs; pairs repeat the way pooled orders
    re-probe each other.
    """
    workload = build_workload(dataset, config)
    rng = random.Random(config.seed)
    pickups = [order.pickup for order in workload.orders]
    dropoffs = [order.dropoff for order in workload.orders]
    worker_locations = [worker.location for worker in workload.workers]
    pairs: list[tuple[int, int]] = []
    while len(pairs) < num_queries:
        kind = rng.random()
        if kind < 0.34:
            pairs.append((rng.choice(worker_locations), rng.choice(pickups)))
        elif kind < 0.67:
            pairs.append((rng.choice(pickups), rng.choice(pickups)))
        else:
            source = rng.choice(pickups + dropoffs)
            target = rng.choice(pickups + dropoffs)
            pairs.append((source, target))
    return pairs, workload


def benchmark_oracles(
    dataset: str = "CDC",
    config: SimulationConfig | None = None,
    backends: Sequence[str] | None = None,
    num_queries: int = 4000,
) -> list[OracleBenchResult]:
    """Time every backend over the same realistic query mix.

    Each backend gets a *fresh* oracle (cold caches) over the same
    network, answers the same pairs in the same order, and its answers
    are cross-checked against the first backend's for agreement.
    """
    if num_queries < 1:
        raise ConfigurationError("num_queries must be at least 1")
    config = config or default_config(dataset)
    pairs, workload = realistic_query_mix(dataset, config, num_queries)
    graph = workload.network.graph
    hint = workload.active_nodes()
    if backends is None:
        # The seed backend goes first so the table's speedup column (and
        # the agreement cross-check) is measured against it.
        names = sorted(available_backends(), key=lambda n: (n != "lazy", n))
    else:
        names = list(backends)
    results: list[OracleBenchResult] = []
    reference: list[float | None] | None = None
    for name in names:
        started = time.perf_counter()
        oracle = create_oracle(
            name,
            graph,
            nodes=hint,
            cache_size=config.oracle_cache_size,
            num_landmarks=config.oracle_landmarks,
            seed=config.seed,
        )
        setup = time.perf_counter() - started
        answers: list[float | None] = []
        started = time.perf_counter()
        for source, target in pairs:
            try:
                answers.append(oracle.travel_time(source, target))
            except UnreachableError:
                answers.append(None)
        elapsed = time.perf_counter() - started
        if reference is None:
            reference = answers
        else:
            for got, want in zip(answers, reference):
                if (got is None) != (want is None):
                    raise AssertionError(f"backend {name} disagrees on reachability")
                if got is not None and abs(got - want) > 1e-6 * max(want, 1.0):
                    raise AssertionError(
                        f"backend {name} disagrees: {got} != {want}"
                    )
        stats = oracle.stats()
        results.append(
            OracleBenchResult(
                backend=name,
                setup_seconds=setup,
                query_seconds=elapsed,
                num_queries=len(pairs),
                hit_rate=stats.hit_rate,
                sssp_runs=stats.sssp_runs,
            )
        )
    return results


@dataclass(frozen=True)
class DispatchBenchResult:
    """Timing of one backend over the many-to-one dispatch query mix."""

    backend: str
    num_sources: int
    num_rounds: int
    forward_seconds: float
    batched_seconds: float
    reverse_sssp_runs: int
    #: Wall-clock construction time of one fresh oracle (the honest
    #: setup cost a reported speedup has to amortise — the CH backend's
    #: contraction pass, the landmark backend's landmark Dijkstras).
    precompute_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """How much faster the batched many-to-one path answered."""
        if self.batched_seconds <= 0.0:
            return float("inf")
        return self.forward_seconds / self.batched_seconds


@dataclass(frozen=True)
class SpatialBenchResult:
    """Timing of the fleet's nearest-worker search with/without the index."""

    num_nodes: int
    num_workers: int
    num_searches: int
    scan_seconds: float
    indexed_seconds: float
    candidates_examined: int

    @property
    def speedup(self) -> float:
        """Wall-clock improvement of the ring search over the full scan."""
        if self.indexed_seconds <= 0.0:
            return float("inf")
        return self.scan_seconds / self.indexed_seconds

    @property
    def candidates_fraction(self) -> float:
        """Fraction of the fleet the pruned search actually examined."""
        total = self.num_searches * self.num_workers
        return (self.candidates_examined / total) if total else 0.0


def _dispatch_rounds(
    graph, num_sources: int, num_rounds: int, seed: int
) -> list[tuple[list[int], int]]:
    """Disjoint (worker locations, pickup) rounds over fresh nodes.

    Every round uses nodes no earlier round touched, so neither path
    can answer from a previous round's cache — each measured round is
    one genuinely cold dispatch decision.
    """
    nodes = sorted(graph.nodes)
    rng = random.Random(seed)
    rng.shuffle(nodes)
    per_round = num_sources + 1
    rounds: list[tuple[list[int], int]] = []
    for start in range(0, len(nodes) - per_round + 1, per_round):
        chunk = nodes[start : start + per_round]
        rounds.append((chunk[:num_sources], chunk[num_sources]))
        if len(rounds) == num_rounds:
            break
    if not rounds:
        raise ConfigurationError(
            f"graph too small for {num_sources} sources per dispatch round"
        )
    return rounds


def benchmark_dispatch_queries(
    dataset: str = "CDC",
    config: SimulationConfig | None = None,
    backends: Sequence[str] | None = None,
    num_sources: int = 32,
    num_rounds: int = 24,
    graph=None,
) -> list[DispatchBenchResult]:
    """Time the many-to-one dispatch mix against the per-source path.

    Each round replays one dispatch decision — ``num_sources`` idle
    worker locations against a single pickup node — twice on fresh
    oracles of the same backend: once through point-to-point
    ``travel_time`` per source (the per-source forward-Dijkstra path the
    batching replaced) and once through the batched
    ``travel_times_many`` many-to-one path.  Answers are cross-checked
    pair-for-pair.

    Because every round touches only fresh nodes, the per-source path
    doubles as a *cold point-to-point* measurement per backend (for the
    lazy backend each query is a full Dijkstra; for ``ch`` it is one
    bidirectional upward search), and ``precompute_seconds`` records
    what one fresh oracle cost to build so reported speedups stay
    setup-honest.
    """
    if graph is None:
        config = config or default_config(dataset)
        workload = build_workload(dataset, config)
        graph = workload.network.graph
    num_sources = min(num_sources, max(graph.number_of_nodes() // 4, 2))
    rounds = _dispatch_rounds(graph, num_sources, num_rounds, seed=17)
    if backends is None:
        names = sorted(available_backends(), key=lambda n: (n != "lazy", n))
    else:
        names = list(backends)
    results: list[DispatchBenchResult] = []
    for name in names:
        kwargs = dict(nodes=[], num_landmarks=None, seed=0)
        started = time.perf_counter()
        forward_oracle = create_oracle(name, graph, **kwargs)
        precompute_seconds = time.perf_counter() - started
        started = time.perf_counter()
        forward_answers: list[dict[int, float]] = []
        for sources, target in rounds:
            answers: dict[int, float] = {}
            for source in sources:
                try:
                    answers[source] = forward_oracle.travel_time(source, target)
                except UnreachableError:
                    continue
            forward_answers.append(answers)
        forward_seconds = time.perf_counter() - started
        batched_oracle = create_oracle(name, graph, **kwargs)
        started = time.perf_counter()
        batched_answers: list[dict[tuple[int, int], float]] = []
        for sources, target in rounds:
            batched_answers.append(batched_oracle.travel_times_many(sources, [target]))
        batched_seconds = time.perf_counter() - started
        for (sources, target), forward, batched in zip(
            rounds, forward_answers, batched_answers
        ):
            for source in sources:
                want = forward.get(source)
                got = batched.get((source, target))
                if (got is None) != (want is None):
                    raise AssertionError(
                        f"backend {name} disagrees on reachability for "
                        f"({source}, {target})"
                    )
                if want is not None and abs(got - want) > 1e-6 * max(want, 1.0):
                    raise AssertionError(
                        f"backend {name} disagrees: {got} != {want}"
                    )
        results.append(
            DispatchBenchResult(
                backend=name,
                num_sources=num_sources,
                num_rounds=len(rounds),
                forward_seconds=forward_seconds,
                batched_seconds=batched_seconds,
                reverse_sssp_runs=batched_oracle.stats().reverse_sssp_runs,
                precompute_seconds=precompute_seconds,
            )
        )
    return results


def benchmark_spatial_index(
    grid_dim: int = 32,
    num_workers: int = 256,
    num_searches: int = 60,
    repeats: int = 3,
    seed: int = 7,
) -> SpatialBenchResult:
    """Time ``find_worker_for`` with and without the worker spatial index.

    Builds a ``grid_dim x grid_dim`` city (>=1k nodes at the default),
    scatters ``num_workers`` idle workers, and replays the same
    singleton-group searches against a ring-expanding fleet and a
    full-scan fleet.  Both fleets see identical warmed oracle caches so
    the measured difference is candidate pruning, and the chosen
    workers are cross-checked per search.
    """
    network = grid_city(rows=grid_dim, cols=grid_dim, seed=seed, jitter=0.25)
    nodes = network.nodes_sorted()
    rng = random.Random(seed)
    locations = [rng.choice(nodes) for _ in range(num_workers)]
    planner = RoutePlanner(network)
    groups: list[Group] = []
    while len(groups) < num_searches:
        pickup, dropoff = rng.sample(nodes, 2)
        shortest = network.travel_time(pickup, dropoff)
        order = Order(
            pickup=pickup,
            dropoff=dropoff,
            release_time=0.0,
            shortest_time=shortest,
            deadline=3.0 * shortest,
            wait_limit=shortest,
        )
        planned = planner.try_plan([order], 4, 0.0)
        if planned is None:
            continue
        groups.append(
            Group(
                orders=(order,),
                route=planned.route,
                created_at=0.0,
                weights=ExtraTimeWeights(),
            )
        )

    def build_fleet(use_spatial_index: bool) -> WorkerFleet:
        workers = [
            Worker(location=location, capacity=4, worker_id=wid)
            for wid, location in enumerate(locations)
        ]
        return WorkerFleet(
            workers,
            network,
            GridIndex(network, size=max(grid_dim // 2, 1)),
            use_spatial_index=use_spatial_index,
        )

    def timed(fleet: WorkerFleet) -> tuple[float, list[int | None]]:
        for group in groups:  # warm the oracle caches outside the timer
            fleet.find_worker_for(group, 0.0)
        chosen: list[int | None] = []
        started = time.perf_counter()
        for _ in range(repeats):
            chosen = [
                worker.worker_id if worker is not None else None
                for worker in (
                    fleet.find_worker_for(group, 0.0) for group in groups
                )
            ]
        return time.perf_counter() - started, chosen

    scan_seconds, scan_chosen = timed(build_fleet(False))
    indexed_fleet = build_fleet(True)
    indexed_seconds, indexed_chosen = timed(indexed_fleet)
    if indexed_chosen != scan_chosen:
        raise AssertionError("spatial index changed the selected workers")
    index = indexed_fleet.spatial_index
    assert index is not None
    return SpatialBenchResult(
        num_nodes=len(network),
        num_workers=num_workers,
        num_searches=index.searches,
        scan_seconds=scan_seconds,
        indexed_seconds=indexed_seconds,
        candidates_examined=index.candidates_yielded,
    )


@dataclass(frozen=True)
class ParallelDispatchBenchResult:
    """Periodic-check throughput of the sharded engine vs the serial path."""

    mode: str
    effective_mode: str
    num_shards: int
    num_nodes: int
    num_workers: int
    #: Distinct parking nodes of those workers — the actual source
    #: count of every many-to-one block (several workers share a node,
    #: and the oracle answers per location, not per worker).
    num_unique_locations: int
    num_targets: int
    serial_seconds: float
    parallel_seconds: float
    #: CPUs the measuring process may run on — hardware parallelism is
    #: bounded by this, so a 1-CPU container cannot (and honestly does
    #: not) show a process-shard speedup.
    available_cpus: int

    @property
    def speedup(self) -> float:
        """Periodic-check throughput ratio (serial time / sharded time)."""
        if self.parallel_seconds <= 0.0:
            return float("inf")
        return self.serial_seconds / self.parallel_seconds

    @property
    def checks_per_second(self) -> float:
        """Whole periodic checks the sharded engine sustains per second."""
        if self.parallel_seconds <= 0.0:
            return float("inf")
        return 1.0 / self.parallel_seconds


#: Acceptance bars of the dispatch benchmarks, shared between the
#: trajectory writer (the recorded ``met`` flags) and the benchmark
#: suite's assertions so the two can never silently disagree.
MANY_TO_ONE_ACCEPTANCE_SPEEDUP = 5.0
CH_COLD_P2P_ACCEPTANCE_SPEEDUP = 5.0
SPATIAL_ACCEPTANCE_SPEEDUP = 1.2
CH_CACHE_ACCEPTANCE_SPEEDUP = 5.0
#: The csr kernel's reverse-PHAST sweep must beat the dict kernel's by
#: this factor on the 1024-node dispatch grid; without numpy the bar is
#: recorded as not applicable rather than silently failed or faked.
CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP = 3.0


@dataclass(frozen=True)
class KernelBenchResult:
    """dict vs csr reverse-PHAST sweep timings on the dispatch grid."""

    num_nodes: int
    num_targets: int
    dict_seconds: float
    csr_seconds: float
    #: numpy was importable and the csr oracle actually ran the csr
    #: kernel (``False`` means both timings exercised the dict path and
    #: the ratio is meaningless).
    applicable: bool

    @property
    def speedup(self) -> float:
        """Wall-clock improvement of the csr sweep over the dict sweep."""
        if not self.applicable:
            return 0.0
        if self.csr_seconds <= 0.0:
            return float("inf")
        return self.dict_seconds / self.csr_seconds


def benchmark_csr_kernel(
    graph=None,
    grid_dim: int = 32,
    num_targets: int = 96,
    seed: int = 1234,
) -> KernelBenchResult:
    """Time the reverse-PHAST sweep stage, dict kernel vs csr kernel.

    The many-to-one dispatch path answers each wide batch with one
    backward upward search (a dict Dijkstra, identical under both
    kernels) followed by one downward sweep that produces the arrival
    representation the batch reads — a node-keyed mapping under the dict
    kernel, a dense float64 row under the csr kernel.  This benchmark
    isolates that sweep stage, the unit the csr kernel vectorises: the
    shared seed maps are computed once outside the timed region, then
    each kernel produces its native arrival representation for
    ``num_targets`` cold targets (each target swept exactly once per
    kernel — the per-target memoisation in the query path never engages,
    so no round answers from a previous round's cache).  Every arrival
    value is cross-checked between the kernels, so the vectorised sweep
    can only ever be a speedup, never a behaviour change.

    Without numpy a ``kernel="csr"`` oracle silently runs the dict path;
    the result is then marked not applicable instead of recording a fake
    ~1x ratio as a failure.
    """
    from ..network.oracle.csr import finite_entries

    if graph is None:
        graph = grid_city(rows=grid_dim, cols=grid_dim, seed=7, jitter=0.25).graph
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    num_targets = min(num_targets, len(nodes))
    targets = rng.sample(nodes, num_targets)
    dict_oracle = create_oracle("ch", graph, kernel="dict")
    csr_oracle = create_oracle("ch", graph, kernel="csr")
    assert isinstance(dict_oracle, CHOracle)
    assert isinstance(csr_oracle, CHOracle)
    applicable = csr_oracle.kernel == "csr"
    # Warm both code paths (allocator, numpy ufunc dispatch) so neither
    # side pays first-call overheads inside the timed region.
    for target in targets[: min(4, num_targets)]:
        dict_oracle.reverse_sweep(dict_oracle.reverse_seed_map(target))
        csr_oracle.reverse_sweep(csr_oracle.reverse_seed_map(target))
    # The contraction is deterministic, so both oracles share one
    # hierarchy and the seed maps are interchangeable between them.
    seed_maps = [dict_oracle.reverse_seed_map(target) for target in targets]
    started = time.perf_counter()
    dict_maps = [dict_oracle.reverse_sweep(seeds) for seeds in seed_maps]
    dict_seconds = time.perf_counter() - started
    started = time.perf_counter()
    csr_rows = [csr_oracle.reverse_sweep(seeds) for seeds in seed_maps]
    csr_seconds = time.perf_counter() - started
    if applicable:
        order = csr_oracle.node_order
        for target, want, row in zip(targets, dict_maps, csr_rows):
            idxs, values = finite_entries(row)
            got = {
                order[idx]: value
                for idx, value in zip(idxs.tolist(), values.tolist())
            }
            if set(got) != set(want):
                raise AssertionError(
                    f"kernels disagree on reachability for target {target}"
                )
            for node, value in want.items():
                if abs(got[node] - value) > 1e-9 * max(value, 1.0):
                    raise AssertionError(
                        f"kernels disagree for ({node}, {target}): "
                        f"{got[node]} != {value}"
                    )
    return KernelBenchResult(
        num_nodes=graph.number_of_nodes(),
        num_targets=num_targets,
        dict_seconds=dict_seconds,
        csr_seconds=csr_seconds,
        applicable=applicable,
    )


@dataclass(frozen=True)
class CHCacheBenchResult:
    """Cold vs warm CH oracle construction with a disk preprocessing cache."""

    num_nodes: int
    cold_seconds: float
    warm_seconds: float
    loaded_from_cache: bool

    @property
    def speedup(self) -> float:
        """How much faster a warm cache directory stands the oracle up."""
        if self.warm_seconds <= 0.0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds


def benchmark_ch_preprocessing_cache(
    graph=None,
    grid_dim: int = 32,
    cache_dir: str | None = None,
    num_check_pairs: int = 64,
    seed: int = 3,
) -> CHCacheBenchResult:
    """Time CH oracle construction cold (contracting) vs warm (from disk).

    The cold build always contracts the graph (it deliberately bypasses
    any pre-existing cache file, so a warm ``cache_dir`` cannot turn
    the "cold" measurement into a second restore and fake a ~1x
    ratio) and persists its node order and shortcuts to ``cache_dir``
    (a temporary directory by default); the warm build — what a *fresh
    process* with a warm ``oracle_cache_dir`` does — restores the
    hierarchy from that file instead of re-contracting.  Both oracles
    answer the same sampled query set and are cross-checked
    pair-for-pair, so the cache can only ever be a speedup, never a
    behaviour change.
    """
    from ..network.oracle.cache import ch_cache_path, save_ch_preprocessing

    if graph is None:
        graph = grid_city(rows=grid_dim, cols=grid_dim, seed=seed, jitter=0.3).graph
    with tempfile.TemporaryDirectory() as scratch:
        directory = cache_dir or scratch
        started = time.perf_counter()
        cold = create_oracle("ch", graph)  # no cache_dir: always contracts
        cold_seconds = time.perf_counter() - started
        assert isinstance(cold, CHOracle)
        save_ch_preprocessing(
            ch_cache_path(directory, graph, cold.witness_hop_limit), cold, graph
        )
        started = time.perf_counter()
        warm = create_oracle("ch", graph, cache_dir=directory)
        warm_seconds = time.perf_counter() - started
        assert isinstance(warm, CHOracle)
        rng = random.Random(seed)
        nodes = sorted(graph.nodes)
        for _ in range(num_check_pairs):
            source, target = rng.sample(nodes, 2)
            try:
                want = cold.travel_time(source, target)
            except UnreachableError:
                want = None
            try:
                got = warm.travel_time(source, target)
            except UnreachableError:
                got = None
            if (got is None) != (want is None):
                raise AssertionError(
                    f"cache-restored CH oracle disagrees on reachability for "
                    f"({source}, {target})"
                )
            if want is not None and abs(got - want) > 1e-9 * max(want, 1.0):
                raise AssertionError(
                    f"cache-restored CH oracle disagrees: {got} != {want}"
                )
        return CHCacheBenchResult(
            num_nodes=graph.number_of_nodes(),
            cold_seconds=cold_seconds,
            warm_seconds=warm_seconds,
            loaded_from_cache=warm.preprocessing_loaded,
        )

#: The overlay backend exists so a city-scale process never pays a full
#: CH contraction: coarsening the graph and contracting the small coarse
#: remainder must stand the oracle up at least this much faster than
#: contracting the full graph directly.  The direct contraction takes
#: tens of minutes at 10^5 nodes, so fresh CI runs measure a smaller
#: instance or skip the direct side entirely and record the bar as not
#: applicable rather than faked (``REPRO_BENCH_COARSEN_FULL=1`` opts in).
COARSEN_READINESS_ACCEPTANCE_SPEEDUP = 10.0


@dataclass(frozen=True)
class CoarsenBenchResult:
    """Overlay readiness (coarsen + inner CH) vs direct full-graph CH."""

    num_nodes: int
    num_edges: int
    levels: int
    coarse_nodes: int
    coarse_edges: int
    coarsen_seconds: float
    inner_setup_seconds: float
    direct_ch_seconds: float
    error_bound: float
    max_relative_error: float
    num_check_pairs: int
    #: The direct full-graph contraction actually ran (``False`` means
    #: it was skipped for time and the ratio is meaningless).
    applicable: bool

    @property
    def overlay_ready_seconds(self) -> float:
        """Wall clock until the overlay backend can answer queries."""
        return self.coarsen_seconds + self.inner_setup_seconds

    @property
    def speedup(self) -> float:
        """Readiness improvement of the overlay over direct contraction."""
        if not self.applicable:
            return 0.0
        if self.overlay_ready_seconds <= 0.0:
            return float("inf")
        return self.direct_ch_seconds / self.overlay_ready_seconds


def benchmark_coarsening(
    graph=None,
    rows: int = 320,
    cols: int = 320,
    levels: int = 4,
    num_check_pairs: int = 24,
    measure_direct: bool = False,
    seed: int = 11,
) -> CoarsenBenchResult:
    """Time overlay-oracle readiness against a direct full-graph CH build.

    The overlay side is the two stages a fresh ``overlay`` backend pays
    with a cold cache: the multilevel coarsening pass over the full
    graph, then the CH contraction of the (much smaller) coarse graph.
    The direct side is what the ``ch`` backend pays on the same graph —
    one full contraction.  Every run cross-checks ``num_check_pairs``
    sampled overlay answers against exact point-to-point Dijkstras and
    raises if the configured certified bound is violated, so the
    readiness speedup can never be bought with wrong answers.

    ``measure_direct=False`` (the default) skips the direct contraction
    — at the 10^5-node default shape it takes tens of minutes — and
    returns a result with ``applicable=False``; the benchmark suite
    enables it via ``REPRO_BENCH_COARSEN_FULL=1``.
    """
    import networkx as nx

    from ..network.coarsen import MultilevelCoarsener
    from ..network.coarsen.overlay import OverlayOracle

    if graph is None:
        graph = large_city(rows=rows, cols=cols, seed=seed).graph
    started = time.perf_counter()
    hierarchy = MultilevelCoarsener(graph, levels=levels).build()
    coarsen_seconds = time.perf_counter() - started
    started = time.perf_counter()
    overlay = OverlayOracle(graph, hierarchy=hierarchy)
    inner_setup_seconds = time.perf_counter() - started
    top = hierarchy.coarse_graph
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    max_relative_error = 0.0
    for _ in range(num_check_pairs):
        source, target = rng.sample(nodes, 2)
        try:
            want = nx.dijkstra_path_length(
                graph, source, target, weight="travel_time"
            )
        except nx.NetworkXNoPath:
            continue
        got = overlay.travel_time(source, target)
        relative = abs(got - want) / want if want > 0 else 0.0
        if relative > overlay.error_bound + 1e-9:
            raise AssertionError(
                f"overlay answer for ({source}, {target}) off by "
                f"{relative:.4f} > bound {overlay.error_bound}"
            )
        max_relative_error = max(max_relative_error, relative)
    direct_ch_seconds = 0.0
    if measure_direct:
        started = time.perf_counter()
        direct = create_oracle("ch", graph)
        direct_ch_seconds = time.perf_counter() - started
        assert isinstance(direct, CHOracle)
    return CoarsenBenchResult(
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        levels=hierarchy.params.levels,
        coarse_nodes=top.number_of_nodes(),
        coarse_edges=top.number_of_edges(),
        coarsen_seconds=coarsen_seconds,
        inner_setup_seconds=inner_setup_seconds,
        direct_ch_seconds=direct_ch_seconds,
        error_bound=overlay.error_bound,
        max_relative_error=max_relative_error,
        num_check_pairs=num_check_pairs,
        applicable=measure_direct,
    )


def bench_scenario_identity(graph, backends: Sequence[str], **source) -> dict:
    """Self-describing ``scenario`` block for benchmark trajectories.

    One schema for every writer (the benchmark suite's fixture and the
    CLI's ``bench --dispatch --json``): the source descriptors the
    caller knows (dataset/seed/grid shape/workload sizes), the backend
    set that was timed, and the content hash of the graph the numbers
    were measured on.  Deliberately *no* ``algorithm`` field — the
    oracle benchmarks run no dispatcher.
    """
    from ..network.oracle.cache import graph_signature

    return {
        **source,
        "backends": sorted(backends),
        "graph_hash": graph_signature(graph),
    }


#: The ISSUE's acceptance bar: 4 process shards must at least double
#: periodic-check throughput — *when the machine has the cores to run
#: four shards concurrently*.  Below this many usable CPUs the bar is
#: recorded as not applicable rather than silently failed or faked.
PARALLEL_ACCEPTANCE_SHARDS = 4
PARALLEL_ACCEPTANCE_SPEEDUP = 2.0
PARALLEL_ACCEPTANCE_MIN_CPUS = 4


def benchmark_parallel_dispatch(
    grid_dim: int = 32,
    num_workers: int = 256,
    num_targets: int = 96,
    num_shards: int = 4,
    mode: str = "process",
    seed: int = 7,
) -> ParallelDispatchBenchResult:
    """Time one periodic check's oracle work, serial vs sharded.

    The workload is the check's real shape on the 1024-node /
    256-worker mix: ``num_targets`` pooled-order probe nodes, each
    needing every idle worker's approach time — one many-to-one
    ``travel_times_many`` block per target.  The serial measurement
    replays those blocks one by one (exactly what the serial dispatcher
    issues); the sharded measurement answers the same blocks through
    ``ParallelDispatchEngine.prefetch_many_to_one`` at ``num_shards``
    shards.  Both sides run an unmeasured warm-up round over a separate
    target set first — a simulation's engine lives for hundreds of
    checks, so the one-time costs (pool spin-up, the forked children
    faulting their copy-on-write pages, reverse-graph materialisation)
    are steady-state-irrelevant and kept out of the timer, while every
    *measured* target still needs its full reverse search on both
    sides.  The merged shard results are cross-checked pair-for-pair
    against the serial answers — the determinism the engine's reducer
    guarantees.
    """
    serial_network = grid_city(rows=grid_dim, cols=grid_dim, seed=seed, jitter=0.25)
    sharded_network = grid_city(rows=grid_dim, cols=grid_dim, seed=seed, jitter=0.25)
    nodes = serial_network.nodes_sorted()
    rng = random.Random(seed)
    # A real fleet parks several workers on the same node; the oracle
    # works per *location*, so the deduplicated source list is what
    # both measured paths actually query (and what gets recorded).
    worker_nodes = [rng.choice(nodes) for _ in range(num_workers)]
    location_set = set(worker_nodes)
    locations = sorted(location_set)
    remaining = [node for node in nodes if node not in location_set]
    rng.shuffle(remaining)
    if len(remaining) < 2 * num_targets:
        raise ConfigurationError(
            f"grid too small for {num_targets} probe targets"
        )
    warmup_targets = sorted(remaining[:num_targets])
    targets = sorted(remaining[num_targets : 2 * num_targets])

    for target in warmup_targets:
        serial_network.travel_times_many(locations, [target])
    started = time.perf_counter()
    serial_answers: dict[tuple[int, int], float] = {}
    for target in targets:
        serial_answers.update(
            serial_network.travel_times_many(locations, [target])
        )
    serial_seconds = time.perf_counter() - started

    with ParallelDispatchEngine(
        sharded_network, num_shards=num_shards, mode=mode
    ) as engine:
        engine.prefetch_many_to_one(locations, warmup_targets)
        started = time.perf_counter()
        parallel_answers = engine.prefetch_many_to_one(locations, targets)
        parallel_seconds = time.perf_counter() - started
        effective_mode = engine.effective_mode
    if parallel_answers != serial_answers:
        raise AssertionError(
            "sharded periodic-check answers diverged from the serial path"
        )
    return ParallelDispatchBenchResult(
        mode=mode,
        effective_mode=effective_mode,
        num_shards=num_shards,
        num_nodes=len(serial_network),
        num_workers=num_workers,
        num_unique_locations=len(locations),
        num_targets=num_targets,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        available_cpus=usable_cpu_count(),
    )


def write_dispatch_trajectory(
    path: str | Path,
    dispatch_results: Sequence[DispatchBenchResult],
    spatial_result: SpatialBenchResult | None = None,
    parallel_results: Sequence[ParallelDispatchBenchResult] = (),
    ch_cache: CHCacheBenchResult | None = None,
    csr_kernel: KernelBenchResult | None = None,
    coarsen: CoarsenBenchResult | None = None,
    scenario: Mapping | None = None,
) -> Path:
    """Write the dispatch benchmark trajectory file (``BENCH_dispatch.json``).

    The file records, per backend, the timings of the forward and
    batched many-to-one paths, the spatial-index microbenchmark, the
    sharded-engine periodic-check benchmark, the CH preprocessing-cache
    benchmark and the dict-vs-csr sweep-kernel benchmark, so CI runs
    leave a machine-readable trace of the hot path's speedups.  A ``scenario`` block (spec
    identity: backends, seed, graph hash) makes the artifact
    self-describing.  An ``acceptance`` section restates every bar the
    benchmark suite asserts (value, threshold, met, applicable) — the
    CI regression gate (``benchmarks/check_regression.py``) fails the
    build when a recorded ratio degrades or an applicable bar flips
    from met to not met.
    """
    payload: dict = {
        "benchmark": "dispatch_many_to_one",
        "backends": [
            {**asdict(result), "speedup": result.speedup}
            for result in dispatch_results
        ],
    }
    if scenario is not None:
        payload["scenario"] = dict(scenario)
    acceptance: dict[str, dict] = {}
    by_backend = {result.backend: result for result in dispatch_results}
    if "lazy" in by_backend:
        lazy_speedup = by_backend["lazy"].speedup
        acceptance["lazy_many_to_one_speedup"] = {
            "value": lazy_speedup,
            "threshold": MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
            "met": lazy_speedup >= MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
            "applicable": True,
        }
    if "ch" in by_backend and "lazy" in by_backend:
        # The acceptance numbers of the CH backend: cold point-to-point
        # speedup over the seed behaviour, many-to-one standing against
        # the other batched backends, and the preprocessing bill both
        # have to amortise.
        ch = by_backend["ch"]
        others = [r for r in dispatch_results if r.backend != "ch"]
        cold_speedup = (
            by_backend["lazy"].forward_seconds / ch.forward_seconds
            if ch.forward_seconds > 0
            else float("inf")
        )
        payload["ch"] = {
            "cold_p2p_speedup_vs_lazy": cold_speedup,
            "many_to_one_seconds": ch.batched_seconds,
            "best_other_many_to_one_seconds": min(
                r.batched_seconds for r in others
            ),
            "precompute_seconds": ch.precompute_seconds,
        }
        acceptance["ch_cold_p2p_speedup_vs_lazy"] = {
            "value": cold_speedup,
            "threshold": CH_COLD_P2P_ACCEPTANCE_SPEEDUP,
            "met": cold_speedup >= CH_COLD_P2P_ACCEPTANCE_SPEEDUP,
            "applicable": True,
        }
    if spatial_result is not None:
        payload["spatial_index"] = {
            **asdict(spatial_result),
            "speedup": spatial_result.speedup,
            "candidates_fraction": spatial_result.candidates_fraction,
        }
        acceptance["spatial_index_speedup"] = {
            "value": spatial_result.speedup,
            "threshold": SPATIAL_ACCEPTANCE_SPEEDUP,
            "met": spatial_result.speedup >= SPATIAL_ACCEPTANCE_SPEEDUP,
            "applicable": True,
        }
    if parallel_results:
        modes = {}
        for result in parallel_results:
            modes[result.mode] = {
                **asdict(result),
                "speedup": result.speedup,
                "checks_per_second": result.checks_per_second,
            }
        payload["parallel_dispatch"] = {"modes": modes}
        process = next(
            (
                r
                for r in parallel_results
                if r.mode == "process"
                and r.num_shards == PARALLEL_ACCEPTANCE_SHARDS
            ),
            None,
        )
        if process is not None:
            # The >=2x bar needs the cores to run four shards at once;
            # on smaller machines the measured number is recorded but
            # the bar is marked not applicable instead of failed.
            applicable = (
                process.effective_mode == "process"
                and process.available_cpus >= PARALLEL_ACCEPTANCE_MIN_CPUS
            )
            acceptance["parallel_dispatch_speedup_4_shards"] = {
                "value": process.speedup,
                "threshold": PARALLEL_ACCEPTANCE_SPEEDUP,
                "met": process.speedup >= PARALLEL_ACCEPTANCE_SPEEDUP,
                "applicable": applicable,
                "available_cpus": process.available_cpus,
            }
    if ch_cache is not None:
        payload["ch_cache"] = {
            **asdict(ch_cache),
            "speedup": ch_cache.speedup,
        }
        acceptance["ch_warm_construction_speedup"] = {
            "value": ch_cache.speedup,
            "threshold": CH_CACHE_ACCEPTANCE_SPEEDUP,
            "met": ch_cache.speedup >= CH_CACHE_ACCEPTANCE_SPEEDUP,
            # A warm load that did not actually come from disk would
            # make the ratio meaningless; record it as not applicable.
            "applicable": ch_cache.loaded_from_cache,
        }
    if csr_kernel is not None:
        payload["csr_kernel"] = {
            **asdict(csr_kernel),
            "speedup": csr_kernel.speedup,
        }
        acceptance["csr_many_to_one_speedup"] = {
            "value": csr_kernel.speedup,
            "threshold": CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
            "met": csr_kernel.speedup >= CSR_MANY_TO_ONE_ACCEPTANCE_SPEEDUP,
            # Without numpy both timings exercised the dict path; the
            # ratio says nothing about the csr kernel, so the bar is
            # honestly marked not applicable instead of failed.
            "applicable": csr_kernel.applicable,
        }
    if coarsen is not None:
        payload["coarsen"] = {
            **asdict(coarsen),
            "overlay_ready_seconds": coarsen.overlay_ready_seconds,
            "speedup": coarsen.speedup,
        }
        acceptance["coarsen_readiness_speedup"] = {
            "value": coarsen.speedup,
            "threshold": COARSEN_READINESS_ACCEPTANCE_SPEEDUP,
            "met": coarsen.speedup >= COARSEN_READINESS_ACCEPTANCE_SPEEDUP,
            # When the direct full-graph contraction was skipped for
            # time, the ratio says nothing; the bar is honestly marked
            # not applicable instead of failed (or fabricated).
            "applicable": coarsen.applicable,
        }
    payload["acceptance"] = acceptance
    destination = Path(path)
    destination.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return destination


def format_parallel_bench_lines(
    results: Sequence[ParallelDispatchBenchResult],
) -> str:
    """Render the sharded periodic-check timings as report lines."""
    lines = []
    for result in results:
        mode = result.mode
        if result.effective_mode != result.mode:
            mode = f"{result.mode}->{result.effective_mode}"
        lines.append(
            f"periodic check x{result.num_targets} targets, "
            f"{result.num_workers} workers "
            f"({result.num_unique_locations} distinct nodes) "
            f"on {result.num_nodes} nodes: "
            f"serial {result.serial_seconds:.3f}s, "
            f"{result.num_shards} {mode} shards "
            f"{result.parallel_seconds:.3f}s "
            f"({result.speedup:.2f}x, {result.available_cpus} cpus)"
        )
    return "\n".join(lines)


def format_dispatch_bench_table(
    results: Sequence[DispatchBenchResult],
    spatial: SpatialBenchResult | None = None,
    title: str = "Many-to-one dispatch benchmark",
) -> str:
    """Render the dispatch-mix timings as an aligned text table."""
    columns = [
        ("backend", lambda r: r.backend),
        ("sources", lambda r: f"{r.num_sources}"),
        ("rounds", lambda r: f"{r.num_rounds}"),
        ("setup (s)", lambda r: f"{r.precompute_seconds:.3f}"),
        ("per-source (s)", lambda r: f"{r.forward_seconds:.3f}"),
        ("batched (s)", lambda r: f"{r.batched_seconds:.3f}"),
        ("rev sssp", lambda r: f"{r.reverse_sssp_runs}"),
        ("speedup", lambda r: f"{r.speedup:.1f}x"),
    ]
    rows = [[header for header, _ in columns]]
    for result in results:
        rows.append([extract(result) for _, extract in columns])
    output = render_aligned_table(title, rows)
    if spatial is not None:
        output += (
            f"\n\nfind_worker_for on {spatial.num_nodes} nodes, "
            f"{spatial.num_workers} workers: scan {spatial.scan_seconds:.3f}s, "
            f"ring search {spatial.indexed_seconds:.3f}s "
            f"({spatial.speedup:.1f}x, examined "
            f"{100.0 * spatial.candidates_fraction:.0f}% of the fleet)"
        )
    return output


def format_oracle_bench_table(
    results: Sequence[OracleBenchResult], title: str = "Distance-oracle benchmark"
) -> str:
    """Render backend timings as an aligned text table."""
    baseline = results[0].query_seconds if results else 0.0
    columns = [
        ("backend", lambda r: r.backend),
        ("setup (s)", lambda r: f"{r.setup_seconds:.3f}"),
        ("queries (s)", lambda r: f"{r.query_seconds:.3f}"),
        (
            "us/query",
            lambda r: (
                f"{1e6 * r.query_seconds / r.num_queries:.1f}"
                if r.num_queries
                else "n/a"
            ),
        ),
        ("hit rate", lambda r: f"{r.hit_rate:.3f}"),
        ("sssp runs", lambda r: f"{r.sssp_runs}"),
        (
            "speedup",
            lambda r: (
                f"{baseline / r.query_seconds:.1f}x" if r.query_seconds > 0 else "inf"
            ),
        ),
    ]
    rows = [[header for header, _ in columns]]
    for result in results:
        rows.append([extract(result) for _, extract in columns])
    return render_aligned_table(title, rows)
