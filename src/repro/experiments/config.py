"""Experiment defaults mirroring Table III of the paper.

The paper's parameter grid (Table III, defaults in italics there):

=========================  ================================  =========
Parameter                  Paper values                      Default
=========================  ================================  =========
riders n (NYC)             50K, 75K, 100K, 125K              100K
riders n (CDC, XIA)        30K, 40K, 50K, 60K                50K
workers m                  3K, 4K, 5K, 6K                    5K
deadline scale tau         1.2, 1.4, 1.6, 1.8                1.6
vehicle capacity Kw        2, 3, 4, 5                        4
alpha, beta                1                                 1
=========================  ================================  =========

The reproduction keeps every dimensionless parameter (tau, Kw, alpha,
beta, eta, delta_t, grid size) at the paper's value and scales the
workload size down by ``SCALE_FACTOR`` so a full sweep finishes in
minutes on one core instead of hours on a server.  Sweep ratios (e.g.
n in {0.5, 0.75, 1.0, 1.25} x default) are preserved exactly.
"""

from __future__ import annotations

from ..config import SimulationConfig

#: Factor by which the paper's order count is divided.
SCALE_FACTOR = 100

#: Factor by which the paper's worker count is divided.  It is smaller
#: than the order scale factor because the reproduction's horizon is two
#: hours rather than a full day: keeping the per-hour load per worker
#: close to the paper's keeps the service-rate regime comparable.
WORKER_SCALE_FACTOR = 50

#: Paper defaults per dataset (before scaling): (orders, workers).
PAPER_DEFAULTS = {
    "NYC": (100_000, 5_000),
    "CDC": (50_000, 5_000),
    "XIA": (50_000, 5_000),
}

#: Scaled defaults actually used by the reproduction.
DATASET_DEFAULTS = {
    name: (orders // SCALE_FACTOR, workers // WORKER_SCALE_FACTOR)
    for name, (orders, workers) in PAPER_DEFAULTS.items()
}

#: The city-scale synthetic preset (102 400-node network, local-trip
#: demand) is not part of the paper's Table III grid; its workload
#: defaults match CDC's scaled shape so dispatch metrics are comparable
#: while the network is ~200x larger.
DATASET_DEFAULTS["LARGE"] = DATASET_DEFAULTS["CDC"]
DATASET_DEFAULTS["LARGE-SYNTHETIC"] = DATASET_DEFAULTS["CDC"]

#: The parameter grid of Table III expressed as sweep values.
PARAMETER_GRID = {
    "order_fractions": (0.50, 0.75, 1.00, 1.25),
    "worker_counts_paper": (3_000, 4_000, 5_000, 6_000),
    "deadline_scales": (1.2, 1.4, 1.6, 1.8),
    "capacities": (2, 3, 4, 5),
    "grid_sizes": (5, 10, 15, 20),
    "watch_windows": (0.4, 0.6, 0.8, 1.0),
    "time_slots": (5.0, 10.0, 20.0, 30.0),
    "loss_weights": (0.0, 0.25, 0.5, 0.75, 1.0),
}


def default_config(dataset: str = "CDC", **overrides) -> SimulationConfig:
    """Table III defaults (scaled) for one dataset, with optional overrides."""
    orders, workers = DATASET_DEFAULTS[dataset.upper()]
    config = SimulationConfig(
        num_orders=orders,
        num_workers=workers,
        deadline_scale=1.6,
        watch_window_scale=0.8,
        max_capacity=4,
        check_period=10.0,
        time_slot=10.0,
        grid_size=10,
        penalty_factor=10.0,
        horizon=2 * 3600.0,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def worker_counts_scaled() -> tuple[int, ...]:
    """The worker sweep of Figure 4 scaled by ``WORKER_SCALE_FACTOR``."""
    return tuple(
        m // WORKER_SCALE_FACTOR for m in PARAMETER_GRID["worker_counts_paper"]
    )
