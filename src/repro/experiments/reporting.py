"""Plain-text reporting of sweep and comparison results.

The paper presents its evaluation as line plots (Figures 3-6).  The
reproduction prints the same data as text tables: one table per metric,
one column per swept parameter value, one row per algorithm.  The
benchmark harness calls these formatters so the regenerated "figures"
appear directly in the benchmark output.
"""

from __future__ import annotations

from typing import Sequence

from ..simulation.metrics import SimulationMetrics
from .sweeps import SweepResult

#: metric attribute -> human-readable column header
METRIC_LABELS = {
    "total_extra_time": "Extra Time (s)",
    "unified_cost": "Unified Cost",
    "service_rate": "Service Rate",
    "running_time_per_order": "Running Time (s/order)",
}


def render_aligned_table(title: str, rows: Sequence[Sequence[str]]) -> str:
    """Render pre-formatted rows (header first) as an aligned text table.

    The single text-table renderer shared by every formatter in the
    experiments package (sweeps, comparisons, oracle stats, benchmark
    tables).
    """
    widths = [
        max(len(row[index]) for row in rows) for index in range(len(rows[0]))
    ]
    lines = [title, "-" * len(title)]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_value(metric: str, value: float) -> str:
    if metric == "service_rate":
        return f"{value:.3f}"
    if metric == "running_time_per_order":
        return f"{value:.2e}"
    return f"{value:.1f}"


def format_sweep_table(
    sweep: SweepResult,
    metric: str,
    title: str | None = None,
) -> str:
    """Render one metric of a sweep as an aligned text table."""
    if metric not in METRIC_LABELS:
        raise KeyError(
            f"unknown metric {metric!r}; expected one of {sorted(METRIC_LABELS)}"
        )
    values = sweep.values()
    algorithms = sweep.algorithms()
    header = title or (
        f"{METRIC_LABELS[metric]} vs {sweep.parameter} ({sweep.dataset})"
    )
    column_headers = ["algorithm"] + [f"{value:g}" for value in values]
    rows = [column_headers]
    for algorithm in algorithms:
        series = sweep.series(algorithm, metric)
        rows.append(
            [algorithm] + [_format_value(metric, value) for value in series]
        )
    return render_aligned_table(header, rows)


def format_full_sweep_report(sweep: SweepResult) -> str:
    """All four paper metrics of one sweep, stacked."""
    sections = [
        format_sweep_table(sweep, metric) for metric in METRIC_LABELS
    ]
    return "\n\n".join(sections)


def format_oracle_stats_table(
    metrics_list: Sequence[SimulationMetrics],
    title: str = "Distance-oracle cache statistics",
) -> str:
    """Render per-run oracle counters; empty string when none were recorded."""
    rows_source = [m for m in metrics_list if m.oracle_stats]
    if not rows_source:
        return ""

    def _get(m: SimulationMetrics, key: str, default: float = 0.0):
        stats = m.oracle_stats  # type: ignore[union-attr]
        if key in stats:
            return stats[key]
        # Backend extras are namespaced ("ch.bucket_scans") in the
        # versioned stats schema; accept the bare counter name here so
        # the table works for whichever backend produced the run.
        backend = stats.get("backend")
        if backend is not None:
            return stats.get(f"{backend}.{key}", default)
        return default

    columns = [
        ("algorithm", lambda m: m.algorithm),
        ("backend", lambda m: str(_get(m, "backend", "?"))),
        ("kernel", lambda m: str(_get(m, "kernel", "dict"))),
        ("queries", lambda m: f"{int(_get(m, 'queries'))}"),
        ("hit rate", lambda m: f"{float(_get(m, 'hit_rate')):.3f}"),
        ("sssp runs", lambda m: f"{int(_get(m, 'sssp_runs'))}"),
        ("rev sssp", lambda m: f"{int(_get(m, 'reverse_sssp_runs'))}"),
        ("p2p searches", lambda m: f"{int(_get(m, 'pp_searches'))}"),
        # CH-backend counters (zero on the other backends): shortcut
        # edges added during contraction and bucket entries scanned by
        # the many-to-one query path.
        ("shortcuts", lambda m: f"{int(_get(m, 'shortcuts_added'))}"),
        ("bucket scans", lambda m: f"{int(_get(m, 'bucket_scans'))}"),
    ]
    rows = [[header for header, _ in columns]]
    for metrics in rows_source:
        rows.append([extractor(metrics) for _, extractor in columns])
    return render_aligned_table(title, rows)


def format_comparison_table(
    metrics_list: Sequence[SimulationMetrics], title: str = "Algorithm comparison"
) -> str:
    """Render one run per algorithm as a single comparison table."""
    columns = [
        ("algorithm", lambda m: m.algorithm),
        ("extra time", lambda m: f"{m.total_extra_time:.1f}"),
        ("unified cost", lambda m: f"{m.unified_cost:.1f}"),
        ("service rate", lambda m: f"{m.service_rate:.3f}"),
        ("avg group", lambda m: f"{m.average_group_size:.2f}"),
        ("run time/order", lambda m: f"{m.running_time_per_order:.2e}"),
    ]
    rows = [[header for header, _ in columns]]
    for metrics in metrics_list:
        rows.append([extractor(metrics) for _, extractor in columns])
    return render_aligned_table(title, rows)
