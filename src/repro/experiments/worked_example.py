"""Reproduction of Example 1 (Section I, Figure 1, Table I).

Four orders arrive on the 6-node road network of Figure 1, served by
two idle workers.  The example contrasts four strategies:

* the non-sharing method (each order rides alone),
* the online-based method (greedy immediate insertion),
* the batch-based method (10-second batches),
* the pooling-then-grouping strategy (wait for the best partner),

and observes that letting orders wait slightly longer produces the best
grouping (o1 with o3, o2 with o4) and the smallest total travel time.
``run_worked_example`` rebuilds the scenario with the library's actual
dispatchers and reports each strategy's total worker travel time so the
qualitative ordering can be verified programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ExtraTimeWeights, SimulationConfig
from ..datasets.synthetic import Workload
from ..model.order import Order
from ..model.worker import Worker
from ..network.generators import example_network, example_node
from .runner import _run_on_workload


@dataclass(frozen=True)
class WorkedExampleResult:
    """Total worker travel times (seconds) of each strategy on Example 1."""

    non_sharing: float
    online: float
    batch: float
    pooling: float

    def as_dict(self) -> dict[str, float]:
        """Flat mapping convenient for reports."""
        return {
            "NonSharing": self.non_sharing,
            "WATTER-online": self.online,
            "GAS (batch)": self.batch,
            "WATTER-timeout (pooling)": self.pooling,
        }


def example_orders() -> list[Order]:
    """The four orders of Table I (times in seconds, one rider each).

    The deadline is set generously (the example has no deadline
    pressure) and the watch window allows the pooling strategy to wait
    for the cross-batch partner, as the example intends.
    """
    network = example_network()
    rows = [
        (5.0, "a", "c"),
        (8.0, "d", "f"),
        (10.0, "d", "c"),
        (12.0, "e", "f"),
    ]
    orders = []
    for release, pickup_label, dropoff_label in rows:
        pickup = example_node(pickup_label)
        dropoff = example_node(dropoff_label)
        shortest = network.travel_time(pickup, dropoff)
        orders.append(
            Order(
                pickup=pickup,
                dropoff=dropoff,
                release_time=release,
                shortest_time=shortest,
                deadline=release + 6.0 * shortest,
                wait_limit=2.0 * shortest,
                riders=1,
            )
        )
    return orders


def example_workload() -> Workload:
    """Orders of Table I plus the two idle workers of Example 1."""
    network = example_network()
    workers = [
        Worker(location=example_node("d"), capacity=2),
        Worker(location=example_node("a"), capacity=2),
    ]
    return Workload(
        orders=example_orders(), workers=workers, network=network, name="Example1"
    )


def example_config() -> SimulationConfig:
    """Simulation parameters matching the example's 10-second batches."""
    return SimulationConfig(
        num_orders=4,
        num_workers=2,
        deadline_scale=6.0,
        watch_window_scale=2.0,
        max_capacity=2,
        check_period=5.0,
        time_slot=5.0,
        grid_size=3,
        horizon=60.0,
        weights=ExtraTimeWeights(),
        max_group_size=2,
        seed=1,
    )


def run_worked_example() -> WorkedExampleResult:
    """Run the four strategies of Example 1 and collect worker travel times."""
    config = example_config()
    totals = {}
    for name in ("NonSharing", "WATTER-online", "GAS", "WATTER-timeout"):
        workload = example_workload()
        result = _run_on_workload(name, workload, config)
        totals[name] = result.metrics.worker_travel_time
    return WorkedExampleResult(
        non_sharing=totals["NonSharing"],
        online=totals["WATTER-online"],
        batch=totals["GAS"],
        pooling=totals["WATTER-timeout"],
    )
