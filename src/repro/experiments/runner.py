"""Single-experiment runner: build a dispatcher, replay a workload, collect metrics.

This is the glue the sweeps, the benchmarks and the examples all share.
``run_algorithm`` runs one named algorithm on one dataset under one
configuration and returns the paper's four metrics; ``run_comparison``
runs several algorithms on the *same* generated workload (with fresh
fleet clones per run, so the runs cannot interfere).

Building WATTER-expect requires a threshold provider.  The default is
the distribution-fitted provider of Section V: a bootstrap run of
WATTER-online on a separate training workload supplies historical extra
times, a GMM is fitted to them, and the convex objective of Equation 8
is optimised per order.  Passing ``use_rl=True`` additionally trains the
value network of Section VI on experience generated from the training
workload and uses ``theta = p - V(s)`` online.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

from ..config import LearningConfig, SimulationConfig
from ..core.state import StateEncoder
from ..core.strategies import ThresholdProvider
from ..core.threshold import ThresholdOptimizer, fit_extra_time_distribution
from ..core.watter import WatterDispatcher
from ..baselines import GASDispatcher, GDPDispatcher, NonSharingDispatcher
from ..datasets.synthetic import Workload
from ..datasets.workloads import build_workload
from ..exceptions import ConfigurationError
from ..network.grid import GridIndex
from ..network.oracle import configure_oracle
from ..routing.planner import RoutePlanner
from ..simulation.dispatcher import Dispatcher
from ..simulation.engine import SimulationResult, Simulator
from ..simulation.fleet import WorkerFleet
from ..simulation.hooks import SimulationHooks
from ..simulation.metrics import SimulationMetrics

ALGORITHMS = (
    "WATTER-expect",
    "WATTER-online",
    "WATTER-timeout",
    "GDP",
    "GAS",
    "NonSharing",
)


@dataclass(frozen=True)
class ExperimentRun:
    """One (algorithm, parameter value) cell of a sweep."""

    algorithm: str
    dataset: str
    parameter: str
    value: float
    metrics: SimulationMetrics


def _fresh_fleet(workload: Workload, config: SimulationConfig) -> WorkerFleet:
    """Clone the workload's workers into an independent fleet."""
    grid = GridIndex(workload.network, size=config.grid_size)
    return WorkerFleet(
        [worker.clone() for worker in workload.workers], workload.network, grid
    )


def active_nodes(workload: Workload) -> list[int]:
    """Nodes the dispatch hot path will query (see ``Workload.active_nodes``)."""
    return workload.active_nodes()


def prepare_network(workload: Workload, config: SimulationConfig):
    """Attach the configured distance-oracle backend to the workload's network.

    ``Simulator`` does this automatically; the helper exists for callers
    that want the oracle warm (or inspectable) before a run starts.
    """
    return configure_oracle(
        workload.network, config, nodes=workload.active_nodes(), reuse=True
    )


def build_expect_provider(
    dataset: str,
    config: SimulationConfig,
    use_rl: bool = False,
    learning_config: LearningConfig | None = None,
    training_fraction: float = 0.5,
) -> ThresholdProvider:
    """Build the threshold provider used by WATTER-expect.

    Parameters
    ----------
    dataset:
        Dataset preset the provider is calibrated for.
    config:
        The evaluation configuration; the training workload uses the
        same parameters with a different seed and a reduced order count.
    use_rl:
        When true, additionally train the value network of Section VI
        and return a :class:`ValueThresholdProvider`; otherwise return
        the GMM-based :class:`ThresholdOptimizer` of Section V.
    learning_config:
        Hyper-parameters of the value-network training (RL mode only).
    training_fraction:
        Size of the training workload relative to the evaluation one.
    """
    return _build_expect_provider(
        lambda training_config: build_workload(dataset, training_config),
        config,
        use_rl=use_rl,
        learning_config=learning_config,
        training_fraction=training_fraction,
    )


def _build_expect_provider(
    workload_for: Callable[[SimulationConfig], Workload],
    config: SimulationConfig,
    use_rl: bool = False,
    learning_config: LearningConfig | None = None,
    training_fraction: float = 0.5,
) -> ThresholdProvider:
    """Source-agnostic core of :func:`build_expect_provider`.

    ``workload_for`` maps the derived training configuration to a
    training workload; the legacy entry point binds it to the dataset
    presets, while ``repro.api.Session`` binds it to whatever source
    (grid network, CSV replay, ...) the scenario describes.
    """
    training_orders = max(int(config.num_orders * training_fraction), 50)
    training_config = config.with_overrides(
        num_orders=training_orders, seed=config.seed + 1000
    )
    training_workload = workload_for(training_config)
    # The bootstrap uses the timeout strategy because its dispatches are
    # dominated by *shared* groups, so the recorded extra times cover the
    # range the threshold must discriminate over (an online bootstrap would
    # record mostly near-zero extra times and collapse the fit).
    bootstrap = _run_on_workload("WATTER-timeout", training_workload, training_config)
    extra_times = [
        outcome.extra_time
        for outcome in bootstrap.collector.outcomes
        if outcome.served and outcome.extra_time > 0
    ]
    if len(extra_times) < 5:
        # Degenerate training run (tiny workload): fall back to the mean
        # slack so the strategy still has a usable reference point.
        extra_times = [order.penalty * 0.5 for order in training_workload.orders]
    mixture = fit_extra_time_distribution(extra_times, seed=config.seed)
    optimizer = ThresholdOptimizer(mixture)
    if not use_rl:
        return optimizer

    from ..learning.trainer import ValueFunctionTrainer, generate_experience

    learning = learning_config or LearningConfig()
    encoder = StateEncoder(
        GridIndex(training_workload.network, size=config.grid_size),
        time_slot=config.time_slot,
        horizon=config.horizon,
    )
    targets = optimizer.optimal_thresholds(training_workload.orders)
    transitions = generate_experience(
        training_workload, training_config, encoder, optimizer, targets
    )
    trainer = ValueFunctionTrainer(encoder, learning)
    trainer.add_experience(transitions)
    trainer.train()
    return trainer.build_provider()


def make_dispatcher(
    algorithm: str,
    workload: Workload,
    config: SimulationConfig,
    provider: ThresholdProvider | None = None,
) -> Dispatcher:
    """Instantiate a named algorithm over a fresh fleet for ``workload``."""
    fleet = _fresh_fleet(workload, config)
    planner = RoutePlanner(workload.network)
    name = algorithm.lower()
    if name == "watter-online":
        return WatterDispatcher.online(planner, fleet, config)
    if name == "watter-timeout":
        return WatterDispatcher.timeout(planner, fleet, config)
    if name == "watter-expect":
        if provider is None:
            raise ConfigurationError(
                "WATTER-expect needs a threshold provider; call "
                "build_expect_provider first"
            )
        dispatcher = WatterDispatcher.expect(planner, fleet, config, provider)
        bind = getattr(provider, "bind", None)
        if callable(bind):
            bind(dispatcher.pool, dispatcher.fleet)
        return dispatcher
    if name == "gdp":
        return GDPDispatcher(workload.network, fleet, config)
    if name == "gas":
        return GASDispatcher(planner, fleet, config)
    if name == "nonsharing":
        return NonSharingDispatcher(planner, fleet, config)
    raise ConfigurationError(
        f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
    )


def _run_on_workload(
    algorithm: str,
    workload: Workload,
    config: SimulationConfig,
    provider: ThresholdProvider | None = None,
    hooks: SimulationHooks | None = None,
) -> SimulationResult:
    """Run one algorithm over an already-generated workload (internal)."""
    dispatcher = make_dispatcher(algorithm, workload, config, provider)
    return Simulator(workload, dispatcher, config, hooks=hooks).run()


def run_on_workload(
    algorithm: str,
    workload: Workload,
    config: SimulationConfig,
    provider: ThresholdProvider | None = None,
):
    """Run one algorithm over an already-generated workload.

    .. deprecated::
        Describe the run with :class:`repro.api.ScenarioSpec` and
        execute it through :class:`repro.api.Session` (which also
        accepts a pre-built ``workload=`` for custom demand models).
        This shim keeps working and produces identical metrics.
    """
    warnings.warn(
        "run_on_workload is deprecated: describe the run with "
        "repro.api.ScenarioSpec and execute it with repro.api.Session.run "
        "(pass workload=... for custom workloads); results are identical",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_on_workload(algorithm, workload, config, provider)


def run_algorithm(
    algorithm: str,
    dataset: str,
    config: SimulationConfig,
    provider: ThresholdProvider | None = None,
) -> SimulationMetrics:
    """Generate the dataset's workload and run one algorithm over it.

    Thin adapter over the :mod:`repro.api` facade (kept as the
    long-standing convenience signature).
    """
    from ..api import ScenarioSpec, Session

    spec = ScenarioSpec.from_config(dataset, config, algorithm=algorithm)
    return Session().run(spec, provider=provider).metrics


def run_comparison(
    dataset: str,
    config: SimulationConfig,
    algorithms: Sequence[str] = ALGORITHMS,
    use_rl: bool = False,
) -> list[SimulationMetrics]:
    """Run several algorithms over the *same* workload and return their metrics.

    Thin adapter over :meth:`repro.api.Session.compare`; the workload,
    the threshold provider and the warmed oracle are shared across the
    compared algorithms exactly as before.
    """
    from ..api import ScenarioSpec, Session

    spec = ScenarioSpec.from_config(dataset, config, use_rl=use_rl)
    session = Session()
    return [
        run.metrics
        for run in session.compare(spec, algorithms=algorithms, use_rl=use_rl)
    ]
