"""Experiment harness reproducing the paper's evaluation section."""

from .config import default_config, DATASET_DEFAULTS, PARAMETER_GRID
from .runner import (
    ALGORITHMS,
    make_dispatcher,
    run_algorithm,
    run_comparison,
    build_expect_provider,
    ExperimentRun,
)
from .sweeps import (
    SweepResult,
    vary_num_orders,
    vary_num_workers,
    vary_deadline,
    vary_capacity,
)
from .ablations import (
    vary_grid_size,
    vary_watch_window,
    vary_time_slot,
    vary_loss_weight,
)
from .worked_example import run_worked_example, WorkedExampleResult
from .reporting import format_sweep_table, format_comparison_table

__all__ = [
    "default_config",
    "DATASET_DEFAULTS",
    "PARAMETER_GRID",
    "ALGORITHMS",
    "make_dispatcher",
    "run_algorithm",
    "run_comparison",
    "build_expect_provider",
    "ExperimentRun",
    "SweepResult",
    "vary_num_orders",
    "vary_num_workers",
    "vary_deadline",
    "vary_capacity",
    "vary_grid_size",
    "vary_watch_window",
    "vary_time_slot",
    "vary_loss_weight",
    "run_worked_example",
    "WorkedExampleResult",
    "format_sweep_table",
    "format_comparison_table",
]
