"""Event-driven ridesharing simulation: fleet, dispatchers, engine, metrics."""

from .fleet import WorkerFleet, Assignment
from .spatial import WorkerSpatialIndex
from .dispatcher import Dispatcher, ServedOrder, DispatchResult, served_orders_from_group
from .hooks import SimulationHooks
from .metrics import MetricsCollector, SimulationMetrics
from .engine import Simulator, SimulationResult
from .parallel import (
    DISPATCH_MODES,
    ParallelDispatchEngine,
    merge_shard_results,
    partition_shards,
    usable_cpu_count,
)

__all__ = [
    "WorkerFleet",
    "WorkerSpatialIndex",
    "Assignment",
    "Dispatcher",
    "ServedOrder",
    "DispatchResult",
    "served_orders_from_group",
    "MetricsCollector",
    "SimulationHooks",
    "SimulationMetrics",
    "Simulator",
    "SimulationResult",
    "DISPATCH_MODES",
    "ParallelDispatchEngine",
    "merge_shard_results",
    "partition_shards",
    "usable_cpu_count",
]
