"""Event-driven ridesharing simulation: fleet, dispatchers, engine, metrics."""

from .fleet import WorkerFleet, Assignment
from .spatial import WorkerSpatialIndex
from .dispatcher import Dispatcher, ServedOrder, DispatchResult, served_orders_from_group
from .metrics import MetricsCollector, SimulationMetrics
from .engine import Simulator, SimulationResult

__all__ = [
    "WorkerFleet",
    "WorkerSpatialIndex",
    "Assignment",
    "Dispatcher",
    "ServedOrder",
    "DispatchResult",
    "served_orders_from_group",
    "MetricsCollector",
    "SimulationMetrics",
    "Simulator",
    "SimulationResult",
]
