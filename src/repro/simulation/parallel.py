"""Sharded parallel execution of the dispatch hot path.

The periodic check of Algorithm 1 is, on the oracle side, a pile of
independent many-sources-to-one-target blocks: for every pooled order's
candidate group, "how far is each idle worker from this group's first
pickup?".  PR 2 and PR 3 made that shape a single batched
``travel_times_many`` call per target; this module crosses the seam the
ROADMAP pointed at and runs those blocks *across a worker pool*:

* the check's probe targets are partitioned into deterministic,
  contiguous shards (:func:`partition_shards`),
* each shard answers **all** of its targets with one aggregated
  ``travel_times_many`` call (the per-shard batching win),
* shard results are merged by a deterministic reducer
  (:func:`merge_shard_results`) that refuses overlapping keys, so the
  merged map — and therefore every assignment winner and tie-break
  downstream — is identical to what a serial run computes.

One honest caveat: on the ``lazy``, ``matrix`` and ``landmark``
backends a pair's travel time is the same float no matter how it is
asked for, so equality is bitwise.  The ``ch`` backend assembles
distances from shortcut parts and its own docstring warns the result
can differ in the last ulp between its query paths — prefetching can
steer a pair down a different path than the serial run's ring query
would, so ``ch`` equivalence holds up to that documented last-ulp
assembly slack (enough to flip only an exactly-tied winner; the
property tests pin it down on fixed seeds).

Two execution modes are offered:

``thread`` (the default)
    Shard tasks run on a ``ThreadPoolExecutor`` against the *shared*
    network oracle.  Backends that declare
    ``thread_safe_queries = True`` (the contraction-hierarchy backend)
    are called without an engine-level lock — though note the CH
    backend's own internal guard still serialises its critical
    sections today, so "thread-safe" means *correct under concurrent
    callers*, not *scales with threads*.  All other backends are
    serialised behind the engine's lock.  Either way this mode cannot
    beat serial on CPU-bound pure-Python backends (GIL or backend
    lock), so dispatchers consult :attr:`prefetch_worthwhile` and skip
    the check-time prefetch entirely — thread mode behaves as a
    zero-overhead passthrough.  It exists for safety, for API parity,
    and as the seam where finer-grained backend locking would start to
    pay off on free-threaded builds (direct
    :meth:`prefetch_many_to_one` calls still execute across the
    executor).

``process`` (opt-in)
    Shard tasks run in forked worker processes, each holding its own
    copy-on-write *oracle handle* over the same graph.  Results (and
    each shard's oracle-counter deltas) are shipped back and merged
    into an :class:`overlay <ParallelDispatchEngine>` the fleet's
    worker searches read from, and the counter deltas are folded into
    the run's ``oracle_stats``.  This is the mode that scales with
    cores; it requires the ``fork`` start method (Linux) and falls back
    to ``thread`` where fork is unavailable.

In both modes the decision loop itself stays the *unchanged serial
algorithm* — parallelism only precomputes travel times — which is how
parallel runs stay bit-identical to serial ones.

The prefetch deliberately trades total work for latency: it answers
the full idle-sources x probe-targets product, where the serial ring
search would prune candidates and stop early (the PR 2 spatial-index
win).  That extra work runs *off* the decision thread in process mode
— wall-clock drops when cores are available — but it is real work, so
``dispatch_workers > 1`` on a single core (or in thread mode on a
GIL-bound backend) costs more than it saves.  Sharding is a scale
feature, not a free default; ``dispatch_workers=1`` remains the right
setting on small machines.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor
from typing import Any, Iterable, Mapping, Sequence, TYPE_CHECKING

from ..exceptions import ConfigurationError
from ..resilience.degradation import DegradationLog
from ..resilience.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover
    from ..network.graph import RoadNetwork

#: Execution modes understood by the engine (and ``SimulationConfig``).
DISPATCH_MODES = ("thread", "process")

#: Below this many targets a prefetch runs inline — the cheapest
#: deterministic schedule when there is nothing to amortise a pool
#: round-trip over.
_MIN_TARGETS_TO_SHARD = 2

#: LRU bound on the process-mode overlay, counted in *targets* (each
#: entry holds up to one value per source plus a coverage set).  An
#: evicted target simply falls back to a serial network query, so the
#: bound trades recompute for memory, never correctness.
DEFAULT_OVERLAY_TARGETS = 4096

# ---------------------------------------------------------------------------
# deterministic partition / reduce primitives
# ---------------------------------------------------------------------------


def partition_shards(items: Sequence, num_shards: int) -> list[list]:
    """Split ``items`` into ``num_shards`` contiguous, near-even chunks.

    The partition depends only on ``(items, num_shards)`` — never on
    thread scheduling or machine load — so a given shard always sees
    the same work.  Chunk sizes differ by at most one (earlier shards
    get the remainder); with fewer items than shards the tail chunks
    are empty.
    """
    if num_shards < 1:
        raise ConfigurationError("num_shards must be at least 1")
    items = list(items)
    base, extra = divmod(len(items), num_shards)
    chunks: list[list] = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def merge_shard_results(
    shard_maps: Iterable[Mapping[tuple[int, int], float]],
) -> dict[tuple[int, int], float]:
    """Deterministically merge per-shard ``(source, target) -> seconds`` maps.

    Shards partition the *targets*, so their key sets must be disjoint;
    an overlap means the partition was wrong (duplicated work at best,
    a changed assignment winner at worst), so it raises — even when the
    duplicate values happen to agree.  Merging in shard order keeps the
    result independent of completion order.
    """
    merged: dict[tuple[int, int], float] = {}
    for shard_map in shard_maps:
        for key, value in shard_map.items():
            if key in merged:
                raise AssertionError(f"shard results overlap on {key}")
            merged[key] = value
    return merged


def merge_block_requests(
    blocks: Iterable[tuple[Sequence[int], Sequence[int]]],
) -> tuple[list[int], list[int]]:
    """Union several ``(sources, targets)`` blocks into one aggregate block.

    The cross-request oracle batcher (:mod:`repro.serve.batcher`)
    coalesces concurrent ``travel_times_many`` blocks hitting one
    oracle into a single aggregated call; this helper computes that
    call's shape.  The unions are deduplicated and sorted so the
    aggregate depends only on the *set* of queued blocks, never on
    arrival order — the same determinism contract
    :func:`partition_shards` gives the sharded periodic check.
    """
    sources: dict[int, None] = {}
    targets: dict[int, None] = {}
    for block_sources, block_targets in blocks:
        for source in block_sources:
            sources.setdefault(source)
        for target in block_targets:
            targets.setdefault(target)
    return sorted(sources), sorted(targets)


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# process-mode shard workers (fork-inherited state)
# ---------------------------------------------------------------------------

#: Network handle a forked shard worker answers queries with.  Each
#: worker's initializer binds it (the ``fork`` start method hands the
#: initargs over by memory inheritance, never by pickling), so workers
#: of a freshly restarted executor — they re-fork from the parent —
#: get the binding before their first task.
_SHARD_NETWORK: "RoadNetwork | None" = None


def _init_shard_worker(network: "RoadNetwork", handle: dict | None = None) -> None:
    """Pool-worker initializer: adopt the engine's network handle.

    With a shared-memory ``handle`` the worker also re-attaches its
    oracle's prepared arrays (CSR sweep arrays, matrix rows) to the
    parent's ``multiprocessing.shared_memory`` segments by name, so
    every shard reads *one* copy instead of relying on copy-on-write
    luck — and so the attachment survives pool restarts and would
    survive a non-fork start method.
    """
    global _SHARD_NETWORK
    _SHARD_NETWORK = network
    if handle is not None:
        oracle = getattr(network, "oracle", None)
        if oracle is not None:
            oracle.adopt_shared(handle)


def _shard_task(sources: list[int], targets: list[int]):
    """One shard's work: a single aggregated ``travel_times_many`` call.

    Runs inside a forked worker against its own oracle handle; returns
    the answered pairs plus the oracle-counter delta this task caused,
    so the parent can fold per-shard work into the run's stats.  The
    ``dispatch.shard`` fault point fires here (the injector is
    fork-inherited), which is how the chaos tests kill workers
    mid-check deterministically.
    """
    fault_point("dispatch.shard")
    network = _SHARD_NETWORK
    assert network is not None, "shard worker forked without a network"
    before = network.oracle_stats()
    result = network.travel_times_many(sources, targets)
    delta = (network.oracle_stats() - before).as_dict()
    return result, delta


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class ParallelDispatchEngine:
    """Runs the dispatch hot path's oracle blocks across worker shards.

    Parameters
    ----------
    network:
        The road network whose oracle answers the queries (and, in
        process mode, whose forked copies answer them in the children).
    num_shards:
        Number of shards the probe targets are partitioned into.  Also
        the worker-pool width; deliberately *not* capped by the CPU
        count so a run's partition — and therefore its determinism — is
        machine-independent.
    mode:
        ``"thread"`` (default) or ``"process"`` (see module docstring).
    degradations:
        Optional :class:`~repro.resilience.degradation.DegradationLog`
        the engine records its fallbacks into (process -> thread when
        fork is unavailable, process -> serial on repeated worker
        death, per-shard serial recomputation on a failed shard task).
    max_pool_restarts:
        How many times a process pool whose worker died may be
        restarted before the engine degrades to serial execution for
        the rest of the run.
    shared_memory:
        Whether process-mode shards attach to one
        ``multiprocessing.shared_memory`` copy of the oracle's
        prepared arrays (``DistanceOracle.share_memory`` /
        ``adopt_shared``).  A no-op for thread mode and for oracles
        with nothing to share (the dict kernel, lazy/landmark).
    """

    def __init__(
        self,
        network: "RoadNetwork",
        num_shards: int,
        mode: str = "thread",
        *,
        degradations: DegradationLog | None = None,
        max_pool_restarts: int = 1,
        shared_memory: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if mode not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch mode {mode!r}; expected one of {DISPATCH_MODES}"
            )
        if max_pool_restarts < 0:
            raise ConfigurationError("max_pool_restarts must be non-negative")
        self._network = network
        self.num_shards = num_shards
        self.requested_mode = mode
        #: What actually runs: ``process`` falls back to ``thread`` when
        #: the platform cannot fork, and a single shard starts no pool
        #: at all — reported as ``inline`` so stats never claim a pool
        #: that does not exist.  Repeated worker death degrades a live
        #: process pool to ``serial`` mid-run.
        self.effective_mode = mode if num_shards > 1 else "inline"
        # ``concurrent.futures.ProcessPoolExecutor`` when process shards
        # are live; abrupt worker death surfaces as BrokenExecutor on
        # the pending futures instead of hanging them, which is what
        # makes the retry/degrade chain below possible.
        self._pool: Any = None
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self._degradations = degradations
        self._max_pool_restarts = max_pool_restarts
        self.shared_memory = shared_memory
        # Handle of the oracle's shared prepared-array segments (None
        # until a process pool shares them) and the oracle that must be
        # released at close.  The handle is tiny — segment names plus
        # dtypes/shapes — and the same one serves restarted pools.
        self._shared_handle: dict | None = None
        self._shared_oracle: Any = None
        # Thread-mode shard tasks serialise behind this lock unless the
        # backend declares its queries thread-safe.
        self._oracle_lock = threading.Lock()
        # Process-mode overlay: per target, which sources have been
        # asked and what they answered (absence under coverage means
        # unreachable).  The serial decision loop reads travel times
        # from here instead of recomputing them.  LRU-bounded per
        # target so a long replay cannot grow it without limit; an
        # evicted target merely falls back to a serial network query.
        self._overlay_bound = DEFAULT_OVERLAY_TARGETS
        self._coverage: OrderedDict[int, set[int]] = OrderedDict()
        self._values: dict[int, dict[int, float]] = {}
        # Scheduling counters plus folded child oracle-counter deltas.
        self._prefetch_calls = 0
        self._prefetch_pairs = 0
        self._shard_tasks = 0
        self._overlay_hits = 0
        self._overlay_misses = 0
        self._shard_counters: dict[str, float] = {}
        # Resilience counters: broken-pool batches observed, pool
        # restarts performed, failed shard tasks, and shards the parent
        # answered serially after retries ran out.
        self._worker_deaths = 0
        self._pool_restarts = 0
        self._shard_failures = 0
        self._serial_fallbacks = 0
        if num_shards > 1:
            if mode == "process":
                self._start_process_pool()
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=num_shards,
                    thread_name_prefix="dispatch-shard",
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_process_pool(self) -> None:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            # No copy-on-write oracle handles without fork; degrade to
            # the always-safe thread mode instead of failing the run.
            self.effective_mode = "thread"
            self._record_degradation(
                "dispatch.mode",
                "process",
                "thread",
                "fork start method unavailable on this platform",
            )
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_shards,
                thread_name_prefix="dispatch-shard",
            )
            return
        context = multiprocessing.get_context("fork")
        from concurrent.futures import ProcessPoolExecutor

        if self.shared_memory and self._shared_handle is None:
            oracle = getattr(self._network, "oracle", None)
            if oracle is not None:
                try:
                    handle = oracle.share_memory()
                except (OSError, ValueError) as exc:
                    # Out of /dev/shm (or an exotic platform): forked
                    # copy-on-write pages still work, just per-child.
                    handle = None
                    self._record_degradation(
                        "dispatch.shared_memory",
                        "shared",
                        "private",
                        f"sharing oracle arrays failed "
                        f"({type(exc).__name__}: {exc})",
                    )
                if handle is not None:
                    self._shared_handle = handle
                    self._shared_oracle = oracle
        self._pool = ProcessPoolExecutor(
            max_workers=self.num_shards,
            mp_context=context,
            initializer=_init_shard_worker,
            initargs=(self._network, self._shared_handle),
        )

    def _restart_process_pool(self) -> None:
        """Replace a broken executor with a freshly forked one."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._pool_restarts += 1
        self._start_process_pool()

    def _degrade_to_serial(self, reason: str) -> None:
        """Give the pool up for the rest of the run; answers go serial.

        ``prefetch_worthwhile`` turns false (dispatchers stop
        prefetching), retained overlay entries keep serving — their
        values are the exact serial answers — and any in-flight
        prefetch finishes by computing its remaining shards in the
        parent.
        """
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self.effective_mode = "serial"
        self._record_degradation("dispatch.mode", "process", "serial", reason)

    def _record_degradation(
        self, site: str, from_value: str, to_value: str, reason: str
    ) -> None:
        if self._degradations is not None:
            self._degradations.record(site, from_value, to_value, reason)

    def close(self) -> None:
        """Shut the worker pool down; later calls run inline (idempotent).

        Shared oracle segments are released *after* the pool has fully
        drained — the parent copies the arrays back private and unlinks
        the segments, so nothing leaks into ``/dev/shm`` past the
        engine's lifetime.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._shared_oracle is not None:
            self._shared_oracle.release_shared()
            self._shared_oracle = None
            self._shared_handle = None

    def __enter__(self) -> "ParallelDispatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the sharded periodic-check primitive
    # ------------------------------------------------------------------
    @property
    def prefetch_worthwhile(self) -> bool:
        """Whether a check-time prefetch can beat just running serially.

        Only a live process pool moves work off the decision thread.
        In thread mode every backend available today serialises its
        queries (the engine's lock for unguarded backends, the CH
        oracle's own internal lock), so a prefetch would compute the
        full sources x targets product on the decision thread's clock
        while the serial ring search would have pruned most of it —
        strictly worse.  Dispatchers consult this before prefetching;
        revisit when a backend offers genuinely concurrent queries
        (e.g. finer-grained CH locking on free-threaded builds).
        """
        return self._pool is not None and not self._closed

    def prefetch_many_to_one(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Answer every ``source -> target`` block, one shard per target chunk.

        This is one periodic check's worth of oracle work: ``targets``
        are the pooled orders' probe nodes, ``sources`` the idle worker
        locations.  Targets are partitioned across shards and each
        shard answers all of its targets with a single aggregated
        ``travel_times_many`` call; the merged result is returned and
        (in process mode) retained in the overlay the fleet's worker
        searches read from.
        """
        source_list = sorted(dict.fromkeys(sources))
        target_list = sorted(dict.fromkeys(targets))
        self._prefetch_calls += 1
        self._prefetch_pairs += len(source_list) * len(target_list)
        if not source_list or not target_list:
            return {}
        if (
            self._closed
            or self.num_shards == 1
            or len(target_list) < _MIN_TARGETS_TO_SHARD
            or (self._pool is None and self._executor is None)
        ):
            # The last clause is the degraded-to-serial engine: no pool
            # left, answers computed inline (still exact, still merged
            # into the overlay path callers read from).
            merged = self._network.travel_times_many(source_list, target_list)
        else:
            chunks = [
                chunk
                for chunk in partition_shards(target_list, self.num_shards)
                if chunk
            ]
            if self._pool is not None:
                shard_maps = self._run_process_shards(source_list, chunks)
            else:
                shard_maps = self._run_thread_shards(source_list, chunks)
            merged = merge_shard_results(shard_maps)
        if self._pool is not None:
            self._retain(source_list, target_list, merged)
        return merged

    def _run_process_shards(
        self, sources: list[int], chunks: list[list[int]]
    ) -> list[dict[tuple[int, int], float]]:
        """Answer every chunk, surviving worker death and task failure.

        The retry/degrade chain, in order: a *failed task* (its worker
        lived, the task raised) is retried once on the pool; a *dead
        worker* breaks the executor for every pending future at once,
        so the pool is restarted (bounded by ``max_pool_restarts``) and
        the unanswered chunks resubmitted; past those budgets the
        remaining chunks are answered serially in the parent — the
        exact same call a serial run makes, so the merged result (and
        every downstream assignment) is unchanged.  Shards always
        return in chunk order: determinism is never traded for
        recovery.
        """
        results: list[dict[tuple[int, int], float] | None] = [None] * len(chunks)
        pending = list(range(len(chunks)))
        attempts = 0
        while pending and self._pool is not None and attempts <= 1 + self._max_pool_restarts:
            attempts += 1
            futures: dict[int, Future] = {}
            try:
                for index in pending:
                    futures[index] = self._pool.submit(
                        _shard_task, sources, chunks[index]
                    )
            except BrokenExecutor:
                # The pool broke between batches; pending stays as is
                # and the broken-pool handling below takes over.
                pass
            self._shard_tasks += len(futures)
            failed: list[int] = []
            broken = len(futures) < len(pending)
            for index in sorted(futures):
                try:
                    result, delta = futures[index].result()
                except BrokenExecutor:
                    broken = True
                    failed.append(index)
                except (OSError, RuntimeError) as exc:
                    # The task raised in a live worker (a transient
                    # oracle error, an injected fault): retry it.
                    self._shard_failures += 1
                    self._record_degradation(
                        "dispatch.shard",
                        "process",
                        "retry",
                        f"shard task failed ({type(exc).__name__}: {exc})",
                    )
                    failed.append(index)
                else:
                    results[index] = result
                    self._fold_counters(delta)
            # Chunks that never got submitted (the pool broke mid-batch)
            # are still pending too.
            failed.extend(index for index in pending if index not in futures)
            pending = sorted(set(failed))
            if not pending:
                return [result for result in results if result is not None]
            if broken:
                self._worker_deaths += 1
                if self._pool_restarts < self._max_pool_restarts:
                    self._restart_process_pool()
                else:
                    self._degrade_to_serial(
                        f"shard worker died and the restart budget "
                        f"({self._max_pool_restarts}) is spent"
                    )
        # Retries ran out (or the pool is gone): the parent answers the
        # remaining chunks itself — the exact serial computation.
        for index in pending:
            self._serial_fallbacks += 1
            results[index] = self._network.travel_times_many(
                sources, chunks[index]
            )
        return [result for result in results if result is not None]

    def _run_thread_shards(
        self, sources: list[int], chunks: list[list[int]]
    ) -> list[dict[tuple[int, int], float]]:
        oracle = self._network.oracle
        lock = (
            None
            if getattr(oracle, "thread_safe_queries", False)
            else self._oracle_lock
        )

        def task(chunk: list[int]) -> dict[tuple[int, int], float]:
            fault_point("dispatch.shard")
            if lock is None:
                return self._network.travel_times_many(sources, chunk)
            with lock:
                return self._network.travel_times_many(sources, chunk)

        assert self._executor is not None
        futures = [self._executor.submit(task, chunk) for chunk in chunks]
        self._shard_tasks += len(futures)
        # Collected in shard order, not completion order: determinism.
        shard_maps: list[dict[tuple[int, int], float]] = []
        for future, chunk in zip(futures, chunks):
            try:
                shard_maps.append(future.result())
            except (OSError, RuntimeError) as exc:
                # A failed thread shard is recomputed serially in place
                # — same values, same order, one recorded degradation.
                self._shard_failures += 1
                self._serial_fallbacks += 1
                self._record_degradation(
                    "dispatch.shard",
                    "thread",
                    "serial",
                    f"shard task failed ({type(exc).__name__}: {exc}); "
                    f"recomputed serially",
                )
                with self._oracle_lock:
                    shard_maps.append(
                        self._network.travel_times_many(sources, chunk)
                    )
        return shard_maps

    # ------------------------------------------------------------------
    # overlay-backed batched queries (the fleet's path)
    # ------------------------------------------------------------------
    def travel_times_many(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> dict[tuple[int, int], float]:
        """Batched travel times, served from the overlay when covered.

        Falls back to the network (the exact serial call, same shape)
        whenever any requested pair has not been prefetched, so answers
        are always complete and always the values a serial run uses.
        """
        source_list = list(dict.fromkeys(sources))
        target_list = list(dict.fromkeys(targets))
        if len(target_list) == 1 and self._values:
            target = target_list[0]
            covered = self._coverage.get(target)
            if covered is not None and all(s in covered for s in source_list):
                self._overlay_hits += 1
                self._coverage.move_to_end(target)
                values = self._values[target]
                return {
                    (source, target): values[source]
                    for source in source_list
                    if source in values
                }
        if self._pool is not None:
            # Only process mode has an overlay to miss; counting the
            # thread-mode delegations here would read as a broken
            # overlay in oracle_stats when none exists.
            self._overlay_misses += 1
        result = self._network.travel_times_many(source_list, target_list)
        if self._pool is not None:
            self._retain(source_list, target_list, result)
        return result

    def _retain(
        self,
        sources: list[int],
        targets: list[int],
        result: Mapping[tuple[int, int], float],
    ) -> None:
        for target in targets:
            covered = self._coverage.get(target)
            if covered is None:
                covered = self._coverage[target] = set()
            else:
                self._coverage.move_to_end(target)
            covered.update(sources)
            values = self._values.setdefault(target, {})
            for source in sources:
                value = result.get((source, target))
                if value is not None:
                    values[source] = value
        while len(self._coverage) > self._overlay_bound:
            evicted, _ = self._coverage.popitem(last=False)
            self._values.pop(evicted, None)

    def reset_overlay(self) -> None:
        """Drop retained prefetch results (e.g. when the graph changes)."""
        self._coverage.clear()
        self._values.clear()

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    #: Keys of an ``OracleStats.as_dict()`` delta that are monotone
    #: counters and therefore meaningful to sum across shard tasks
    #: (ratios, gauges and structural constants are not).  Backend
    #: extras arrive namespaced (``"ch.bucket_scans"``); matching is on
    #: the bare counter name, the stored key keeps the namespace.
    _FOLDABLE_COUNTERS = frozenset(
        {
            "queries",
            "batched_queries",
            "cache_hits",
            "cache_misses",
            "sssp_runs",
            "reverse_sssp_runs",
            "pp_searches",
            "evictions",
            "matrix_refreshes",
            "upward_settles",
            "bucket_scans",
        }
    )

    def _fold_counters(self, delta: Mapping[str, float | str]) -> None:
        for key, value in delta.items():
            if key.rsplit(".", 1)[-1] not in self._FOLDABLE_COUNTERS:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._shard_counters[key] = self._shard_counters.get(key, 0.0) + value

    def stats(self) -> dict[str, float | int | str]:
        """Scheduling counters plus folded per-shard oracle counters.

        The ``shard_*`` entries are the *children's* oracle work in
        process mode (the parent oracle never saw those queries); the
        simulator folds them into the run's ``oracle_stats`` so the
        reported counters cover all shards.
        """
        stats: dict[str, float | int | str] = {
            "dispatch_workers": self.num_shards,
            "dispatch_mode": self.effective_mode,
            "prefetch_calls": self._prefetch_calls,
            "prefetch_pairs": self._prefetch_pairs,
            "shard_tasks": self._shard_tasks,
            "overlay_hits": self._overlay_hits,
            "overlay_misses": self._overlay_misses,
            "worker_deaths": self._worker_deaths,
            "pool_restarts": self._pool_restarts,
            "shard_failures": self._shard_failures,
            "shard_serial_fallbacks": self._serial_fallbacks,
            "shared_memory_active": int(self._shared_handle is not None),
        }
        for key, value in sorted(self._shard_counters.items()):
            stats[f"shard_{key}"] = value
        return stats
