"""Dispatcher interface shared by WATTER and every baseline.

The simulation engine drives a dispatcher through three calls:

* ``submit(order, now)`` — a new order is released to the platform,
* ``tick(now)`` — a periodic check; the dispatcher may serve or reject
  orders and reports what happened,
* ``flush(now)`` — end of the horizon; whatever is still pending must be
  resolved (typically rejected).

Results are exchanged as :class:`ServedOrder` / rejected-order records
carrying the exact quantities the paper's metrics are computed from
(response time, detour time, group size, worker), so the metrics
collector never needs to reach back into dispatcher internals.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..model.group import Group
    from ..model.order import Order


@dataclass(frozen=True)
class ServedOrder:
    """Accounting record of one successfully dispatched order."""

    order: "Order"
    response_time: float
    detour_time: float
    dispatch_time: float
    worker_id: int
    group_size: int


@dataclass(frozen=True)
class DispatchResult:
    """What a dispatcher accomplished during one call."""

    served: tuple[ServedOrder, ...] = field(default_factory=tuple)
    rejected: tuple["Order", ...] = field(default_factory=tuple)

    @staticmethod
    def empty() -> "DispatchResult":
        """A result with nothing served and nothing rejected."""
        return DispatchResult()

    def merge(self, other: "DispatchResult") -> "DispatchResult":
        """Combine two results (used when a call has several phases)."""
        return DispatchResult(
            served=self.served + other.served,
            rejected=self.rejected + other.rejected,
        )

    def __bool__(self) -> bool:
        return bool(self.served or self.rejected)


class Dispatcher(abc.ABC):
    """Base class every dispatching algorithm implements."""

    name: str = "dispatcher"

    @abc.abstractmethod
    def submit(self, order: "Order", now: float) -> DispatchResult:
        """Receive a newly released order.

        Online algorithms may serve or reject it immediately; pooling
        algorithms typically just enqueue it and return an empty result.
        """

    @abc.abstractmethod
    def tick(self, now: float) -> DispatchResult:
        """Run one periodic check at time ``now``."""

    def flush(self, now: float) -> DispatchResult:
        """Resolve everything still pending at the end of the horizon."""
        return DispatchResult.empty()

    def describe(self) -> str:
        """Human-readable algorithm name used in experiment reports."""
        return self.name


def served_orders_from_group(
    group: "Group", dispatch_time: float, worker_id: int
) -> tuple[ServedOrder, ...]:
    """Convert a dispatched group into per-order accounting records."""
    records = []
    for order in group.orders:
        records.append(
            ServedOrder(
                order=order,
                response_time=group.response_time(order, dispatch_time),
                detour_time=group.detour_time(order),
                dispatch_time=dispatch_time,
                worker_id=worker_id,
                group_size=len(group),
            )
        )
    return tuple(records)
