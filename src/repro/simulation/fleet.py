"""Worker fleet management.

``WorkerFleet`` owns the vehicles of a simulation run and answers the
only questions the dispatchers ask of them:

* which workers are idle right now,
* which idle worker is the best (nearest feasible) one for a group, and
* book an assignment: mark the worker busy for the approach leg plus the
  group's route and account the driven travel time (the worker-cost part
  of the Unified Cost metric).

The grid-backed :class:`~repro.simulation.spatial.WorkerSpatialIndex`
restricts nearest-worker searches to expanding rings of cells around the
group's first pickup, mirroring the paper's use of a grid index "to
speed up workers and riders search" (Section VII-A); each ring is priced
with one many-to-one oracle batch (a single reverse-graph search on the
lazy backend).  The index is maintained incrementally as workers are
assigned and released, and the search stops as soon as the best feasible
worker found cannot be beaten by any farther ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

from ..exceptions import ConfigurationError
from ..model.worker import Worker
from ..network.grid import GridIndex
from .spatial import WorkerSpatialIndex

if TYPE_CHECKING:  # pragma: no cover
    from ..model.group import Group
    from ..network.graph import RoadNetwork
    from .parallel import ParallelDispatchEngine


@dataclass(frozen=True)
class Assignment:
    """A booked (group, worker) pair with its timing breakdown."""

    worker_id: int
    approach_time: float
    route_time: float
    start_time: float
    finish_time: float


class WorkerFleet:
    """The set of vehicles plus their availability bookkeeping.

    Parameters
    ----------
    workers:
        Vehicles participating in the simulation.
    network:
        Road network for approach-time queries.
    grid:
        Optional spatial index; built from the network when omitted.
    use_spatial_index:
        When true (default) nearest-worker searches expand grid rings
        around the pickup and stop early; when false every search scans
        the whole fleet (kept for benchmarking the pruning win).
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        network: "RoadNetwork",
        grid: GridIndex | None = None,
        use_spatial_index: bool = True,
    ) -> None:
        if not workers:
            raise ConfigurationError("a fleet needs at least one worker")
        self._workers = {worker.worker_id: worker for worker in workers}
        # Position in the given sequence; ties in approach time resolve
        # to the earliest worker, matching the historical scan order.
        self._order_index = {
            worker.worker_id: position for position, worker in enumerate(workers)
        }
        self._network = network
        self._grid = grid if grid is not None else GridIndex(network, size=10)
        self._spatial: WorkerSpatialIndex | None = None
        if use_spatial_index:
            self._spatial = WorkerSpatialIndex(network, self._grid)
            for worker in self._workers.values():
                self._spatial.insert(worker.worker_id, worker.location)
        self._total_travel_time = 0.0
        # Optional parallel dispatch engine; when attached, the worker
        # searches' many-to-one oracle blocks are served through it
        # (shard-prefetched results in process mode, warmed caches in
        # thread mode) instead of hitting the network directly.
        self._engine: "ParallelDispatchEngine | None" = None
        # Memo of the last nearest-worker search: (group, now, worker).
        # ``can_serve`` and the immediately following ``assign`` used to
        # run the same search twice per dispatch decision; any change to
        # the idle pool invalidates the memo.
        self._find_memo: tuple["Group", float, Worker | None] | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers.values())

    def worker(self, worker_id: int) -> Worker:
        """Look a worker up by id."""
        return self._workers[worker_id]

    @property
    def total_travel_time(self) -> float:
        """Total driven time (approach + route legs) booked so far."""
        return self._total_travel_time

    @property
    def spatial_index(self) -> WorkerSpatialIndex | None:
        """The worker spatial index (``None`` when scanning is forced)."""
        return self._spatial

    @property
    def dispatch_engine(self) -> "ParallelDispatchEngine | None":
        """The attached parallel dispatch engine, if any."""
        return self._engine

    def attach_dispatch_engine(
        self, engine: "ParallelDispatchEngine | None"
    ) -> None:
        """Route the worker searches' oracle batches through ``engine``.

        Pass ``None`` to detach.  The search logic itself is unchanged
        — same rings, same feasibility checks, same tie-breaks — only
        the travel-time values arrive through the engine, which serves
        them from shard-prefetched results when covered and falls back
        to the exact serial network call otherwise.
        """
        self._engine = engine

    def idle_workers(self, now: float) -> list[Worker]:
        """Workers available for a new assignment at ``now``."""
        self.release_finished(now)
        return [worker for worker in self._workers.values() if worker.is_idle]

    def idle_locations(self, now: float) -> list[int]:
        """Locations of idle workers (the supply vector of the MDP state)."""
        return [worker.location for worker in self.idle_workers(now)]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def release_finished(self, now: float) -> int:
        """Return workers whose routes have finished to the idle pool."""
        released = 0
        for worker in self._workers.values():
            if worker.release_if_done(now):
                released += 1
        if released:
            self._find_memo = None
        return released

    def find_worker_for(self, group: "Group", now: float) -> Worker | None:
        """Nearest idle worker that can feasibly serve ``group`` from ``now``.

        Feasibility accounts for the approach leg: the worker must reach
        the route's first stop and then complete each member's sub-route
        before that member's deadline.  Capacity must cover the group's
        total riders.

        The result is memoised per ``(group, now)`` until the idle pool
        changes, so a ``can_serve`` probe followed by the booking's own
        lookup costs one search, not two.
        """
        self.release_finished(now)
        memo = self._find_memo
        if memo is not None and memo[0] is group and memo[1] == now:
            return memo[2]
        if self._spatial is not None:
            worker = self._find_by_rings(group, now)
        else:
            worker = self._find_by_scan(group, now)
        self._find_memo = (group, now, worker)
        return worker

    def can_serve(self, group: "Group", now: float) -> bool:
        """Whether any idle worker could serve the group right now.

        Runs (and memoises) the full nearest-worker search, so the
        dispatcher's follow-up ``find_worker_for`` reuses the winner.
        """
        return self.find_worker_for(group, now) is not None

    def assign(self, worker: Worker, group: "Group", now: float) -> Assignment:
        """Book ``group`` onto ``worker`` starting at ``now``.

        The worker becomes busy for the approach leg plus the route and
        ends up idle at the route's final stop.
        """
        approach = self._network.travel_time(worker.location, group.route.start_node)
        route_time = group.route.total_travel_time
        finish = now + approach + route_time
        worker.assign(end_location=group.route.end_node, finish_time=finish)
        if self._spatial is not None:
            self._spatial.move(worker.worker_id, worker.location)
        self._find_memo = None
        self._total_travel_time += approach + route_time
        return Assignment(
            worker_id=worker.worker_id,
            approach_time=approach,
            route_time=route_time,
            start_time=now,
            finish_time=finish,
        )

    def add_travel_time(self, amount: float) -> None:
        """Account extra driven time booked outside :meth:`assign`.

        Baselines that manage their own route schedules (GDP) use this
        so the Unified Cost still reflects all driven time.
        """
        if amount < 0:
            raise ConfigurationError("cannot add negative travel time")
        self._total_travel_time += amount

    def earliest_available_time(self) -> float:
        """The earliest time at which some worker will be idle."""
        return min(
            (0.0 if worker.is_idle else worker.busy_until)
            for worker in self._workers.values()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find_by_rings(self, group: "Group", now: float) -> Worker | None:
        """Ring-expanding nearest-worker search over the spatial index."""
        riders = group.total_riders()
        start_node = group.route.start_node
        best_worker: Worker | None = None
        best_key = (float("inf"), float("inf"))
        assert self._spatial is not None
        for bound, worker_ids in self._spatial.rings(start_node):
            # Later rings cannot beat the incumbent once their travel
            # time lower bound exceeds its approach time.
            if best_worker is not None and bound > best_key[0]:
                break
            candidates = [
                worker
                for worker in (self._workers[wid] for wid in worker_ids)
                if worker.is_idle and worker.capacity >= riders
            ]
            if not candidates:
                continue
            # One many-to-one oracle batch per ring: every candidate's
            # approach leg against the single pickup node.
            approaches = self._query_many(
                (worker.location for worker in candidates), [start_node]
            )
            for worker in candidates:
                approach = approaches.get((worker.location, start_node))
                if approach is None:
                    continue
                key = (approach, self._order_index[worker.worker_id])
                if key >= best_key:
                    continue
                if not self._group_feasible_with_approach(group, now, approach):
                    continue
                best_worker = worker
                best_key = key
        return best_worker

    def _find_by_scan(self, group: "Group", now: float) -> Worker | None:
        """Full-fleet scan (the pre-index behaviour, kept for benchmarks)."""
        candidates = [
            worker
            for worker in self._workers.values()
            if worker.is_idle and worker.capacity >= group.total_riders()
        ]
        if not candidates:
            return None
        start_node = group.route.start_node
        # One batched oracle call for every candidate's approach leg;
        # workers parked at unreachable locations are simply skipped.
        approaches = self._query_many(
            (worker.location for worker in candidates), [start_node]
        )
        best_worker: Worker | None = None
        best_approach = float("inf")
        for worker in candidates:
            approach = approaches.get((worker.location, start_node))
            if approach is None or approach >= best_approach:
                continue
            if not self._group_feasible_with_approach(group, now, approach):
                continue
            best_worker = worker
            best_approach = approach
        return best_worker

    def _query_many(self, sources, targets) -> dict[tuple[int, int], float]:
        """The searches' oracle batches, through the engine when attached."""
        if self._engine is not None:
            return self._engine.travel_times_many(sources, targets)
        return self._network.travel_times_many(sources, targets)

    def _group_feasible_with_approach(
        self, group: "Group", now: float, approach: float
    ) -> bool:
        for order in group.orders:
            arrival = now + approach + group.route.sub_route_time(order.order_id)
            if arrival > order.deadline:
                return False
        return True


def fleet_from_workers(
    workers: Iterable[Worker], network: "RoadNetwork", grid_size: int = 10
) -> WorkerFleet:
    """Convenience constructor building the grid index at the given size."""
    return WorkerFleet(list(workers), network, GridIndex(network, size=grid_size))
