"""Worker fleet management.

``WorkerFleet`` owns the vehicles of a simulation run and answers the
only questions the dispatchers ask of them:

* which workers are idle right now,
* which idle worker is the best (nearest feasible) one for a group, and
* book an assignment: mark the worker busy for the approach leg plus the
  group's route and account the driven travel time (the worker-cost part
  of the Unified Cost metric).

The grid index restricts nearest-worker searches to expanding rings of
cells around the group's first pickup, mirroring the paper's use of a
grid index "to speed up workers and riders search" (Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, TYPE_CHECKING

from ..exceptions import ConfigurationError
from ..model.worker import Worker
from ..network.grid import GridIndex

if TYPE_CHECKING:  # pragma: no cover
    from ..model.group import Group
    from ..network.graph import RoadNetwork


@dataclass(frozen=True)
class Assignment:
    """A booked (group, worker) pair with its timing breakdown."""

    worker_id: int
    approach_time: float
    route_time: float
    start_time: float
    finish_time: float


class WorkerFleet:
    """The set of vehicles plus their availability bookkeeping.

    Parameters
    ----------
    workers:
        Vehicles participating in the simulation.
    network:
        Road network for approach-time queries.
    grid:
        Optional spatial index; built from the network when omitted.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        network: "RoadNetwork",
        grid: GridIndex | None = None,
    ) -> None:
        if not workers:
            raise ConfigurationError("a fleet needs at least one worker")
        self._workers = {worker.worker_id: worker for worker in workers}
        self._network = network
        self._grid = grid if grid is not None else GridIndex(network, size=10)
        self._total_travel_time = 0.0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers.values())

    def worker(self, worker_id: int) -> Worker:
        """Look a worker up by id."""
        return self._workers[worker_id]

    @property
    def total_travel_time(self) -> float:
        """Total driven time (approach + route legs) booked so far."""
        return self._total_travel_time

    def idle_workers(self, now: float) -> list[Worker]:
        """Workers available for a new assignment at ``now``."""
        self.release_finished(now)
        return [worker for worker in self._workers.values() if worker.is_idle]

    def idle_locations(self, now: float) -> list[int]:
        """Locations of idle workers (the supply vector of the MDP state)."""
        return [worker.location for worker in self.idle_workers(now)]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def release_finished(self, now: float) -> int:
        """Return workers whose routes have finished to the idle pool."""
        released = 0
        for worker in self._workers.values():
            if worker.release_if_done(now):
                released += 1
        return released

    def find_worker_for(self, group: "Group", now: float) -> Worker | None:
        """Nearest idle worker that can feasibly serve ``group`` from ``now``.

        Feasibility accounts for the approach leg: the worker must reach
        the route's first stop and then complete each member's sub-route
        before that member's deadline.  Capacity must cover the group's
        total riders.
        """
        candidates = [
            worker
            for worker in self.idle_workers(now)
            if worker.capacity >= group.total_riders()
        ]
        if not candidates:
            return None
        start_node = group.route.start_node
        # One batched oracle call for every candidate's approach leg;
        # workers parked at unreachable locations are simply skipped.
        approaches = self._network.travel_times_many(
            (worker.location for worker in candidates), [start_node]
        )
        best_worker: Worker | None = None
        best_approach = float("inf")
        for worker in candidates:
            approach = approaches.get((worker.location, start_node))
            if approach is None or approach >= best_approach:
                continue
            if not self._group_feasible_with_approach(group, now, approach):
                continue
            best_worker = worker
            best_approach = approach
        return best_worker

    def can_serve(self, group: "Group", now: float) -> bool:
        """Whether any idle worker could serve the group right now."""
        return self.find_worker_for(group, now) is not None

    def assign(self, worker: Worker, group: "Group", now: float) -> Assignment:
        """Book ``group`` onto ``worker`` starting at ``now``.

        The worker becomes busy for the approach leg plus the route and
        ends up idle at the route's final stop.
        """
        approach = self._network.travel_time(worker.location, group.route.start_node)
        route_time = group.route.total_travel_time
        finish = now + approach + route_time
        worker.assign(end_location=group.route.end_node, finish_time=finish)
        self._total_travel_time += approach + route_time
        return Assignment(
            worker_id=worker.worker_id,
            approach_time=approach,
            route_time=route_time,
            start_time=now,
            finish_time=finish,
        )

    def add_travel_time(self, amount: float) -> None:
        """Account extra driven time booked outside :meth:`assign`.

        Baselines that manage their own route schedules (GDP) use this
        so the Unified Cost still reflects all driven time.
        """
        if amount < 0:
            raise ConfigurationError("cannot add negative travel time")
        self._total_travel_time += amount

    def earliest_available_time(self) -> float:
        """The earliest time at which some worker will be idle."""
        return min(
            (0.0 if worker.is_idle else worker.busy_until)
            for worker in self._workers.values()
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group_feasible_with_approach(
        self, group: "Group", now: float, approach: float
    ) -> bool:
        for order in group.orders:
            arrival = now + approach + group.route.sub_route_time(order.order_id)
            if arrival > order.deadline:
                return False
        return True


def fleet_from_workers(
    workers: Iterable[Worker], network: "RoadNetwork", grid_size: int = 10
) -> WorkerFleet:
    """Convenience constructor building the grid index at the given size."""
    return WorkerFleet(list(workers), network, GridIndex(network, size=grid_size))
