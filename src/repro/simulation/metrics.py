"""Metric accounting matching Section VII-A ("Measurements").

Four metrics are reported for every algorithm:

* **Extra Time** — the METRS objective: the sum over served orders of
  ``alpha * detour + beta * response`` plus the penalty ``max t_r`` of
  every rejected order (Definition 7).
* **Unified Cost** — worker travel cost plus ``penalty_factor x
  cost(pickup, dropoff)`` for every rejected order (the measure of [9]
  the paper adopts; the balance parameter is 1).
* **Service Rate** — ``|O+| / |O|``.
* **Running Time** — average wall-clock algorithm time per order,
  measured by the engine and stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, TYPE_CHECKING

from ..config import ExtraTimeWeights
from ..model.order import OrderOutcome

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from .dispatcher import ServedOrder


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregated results of one simulation run."""

    algorithm: str
    dataset: str
    total_orders: int
    served_orders: int
    rejected_orders: int
    total_extra_time: float
    average_extra_time: float
    total_response_time: float
    total_detour_time: float
    unified_cost: float
    service_rate: float
    worker_travel_time: float
    running_time_total: float
    running_time_per_order: float
    average_group_size: float
    #: Distance-oracle counters accumulated during this run (backend
    #: name, query count, cache hit rate, forward and reverse-graph
    #: Dijkstra runs, reverse-cache sizes, ...); ``None`` when the
    #: dispatcher ran over a network without instrumentation.
    oracle_stats: Mapping[str, float | str] | None = None

    def summary_row(self) -> dict[str, float | str | int]:
        """Flat dictionary convenient for tabular reports."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "orders": self.total_orders,
            "served": self.served_orders,
            "extra_time": self.total_extra_time,
            "unified_cost": self.unified_cost,
            "service_rate": self.service_rate,
            "running_time": self.running_time_per_order,
        }


@dataclass
class MetricsCollector:
    """Accumulates per-order outcomes during a simulation run.

    Parameters
    ----------
    weights:
        Extra-time trade-off coefficients (alpha, beta).
    penalty_factor:
        Multiplier of ``cost(pickup, dropoff)`` charged to the Unified
        Cost for every rejected order (the paper uses 10).
    """

    weights: ExtraTimeWeights = field(default_factory=ExtraTimeWeights)
    penalty_factor: float = 10.0
    outcomes: list[OrderOutcome] = field(default_factory=list)
    _group_sizes: list[int] = field(default_factory=list)
    _rejected_trip_costs: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_served(self, served: "ServedOrder") -> None:
        """Register a served order."""
        extra = (
            self.weights.alpha * served.detour_time
            + self.weights.beta * served.response_time
        )
        self.outcomes.append(
            OrderOutcome(
                order_id=served.order.order_id,
                served=True,
                response_time=served.response_time,
                detour_time=served.detour_time,
                extra_time=extra,
                penalty=served.order.penalty,
                group_size=served.group_size,
                worker_id=served.worker_id,
                dispatch_time=served.dispatch_time,
            )
        )
        self._group_sizes.append(served.group_size)

    def record_rejected(self, order: "Order") -> None:
        """Register a rejected order (charged its penalty)."""
        self.outcomes.append(
            OrderOutcome(
                order_id=order.order_id,
                served=False,
                penalty=order.penalty,
            )
        )
        self._rejected_trip_costs.append(order.shortest_time)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def finalize(
        self,
        algorithm: str,
        dataset: str,
        worker_travel_time: float,
        running_time_total: float,
        oracle_stats: Mapping[str, float | str] | None = None,
    ) -> SimulationMetrics:
        """Build the aggregate metrics record for the finished run."""
        served = [outcome for outcome in self.outcomes if outcome.served]
        rejected = [outcome for outcome in self.outcomes if not outcome.served]
        total = len(self.outcomes)
        total_extra = sum(outcome.extra_time for outcome in served) + sum(
            outcome.penalty for outcome in rejected
        )
        unified_cost = worker_travel_time + self.penalty_factor * sum(
            self._rejected_trip_costs
        )
        service_rate = (len(served) / total) if total else 0.0
        average_extra = (total_extra / total) if total else 0.0
        average_group = (
            sum(self._group_sizes) / len(self._group_sizes) if self._group_sizes else 0.0
        )
        return SimulationMetrics(
            algorithm=algorithm,
            dataset=dataset,
            total_orders=total,
            served_orders=len(served),
            rejected_orders=len(rejected),
            total_extra_time=total_extra,
            average_extra_time=average_extra,
            total_response_time=sum(o.response_time for o in served),
            total_detour_time=sum(o.detour_time for o in served),
            unified_cost=unified_cost,
            service_rate=service_rate,
            worker_travel_time=worker_travel_time,
            running_time_total=running_time_total,
            running_time_per_order=(running_time_total / total) if total else 0.0,
            average_group_size=average_group,
            oracle_stats=oracle_stats,
        )

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def accounted_orders(self) -> int:
        """Number of orders with a recorded outcome."""
        return len(self.outcomes)

    def order_ids(self) -> set[int]:
        """Ids of all orders with a recorded outcome."""
        return {outcome.order_id for outcome in self.outcomes}
