"""Event-hook protocol for streaming simulation state to consumers.

Downstream code often wants to *watch* a run — collect per-order
traces, feed dashboards, drive custom accounting — without forking the
engine loop.  :class:`SimulationHooks` is the seam for that: subclass
it, override the events you care about, and pass the instance to
:class:`~repro.simulation.engine.Simulator` (or, at the facade level,
to ``repro.api.Session.run(spec, hooks=...)``).

Every method is a no-op by default, so subclasses only implement what
they need.  Hooks fire *outside* the engine's algorithm timer — a slow
hook inflates wall-clock but never the reported Running Time metric —
and they must not mutate the orders, workers or dispatcher state they
are shown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order
    from .dispatcher import ServedOrder


class SimulationHooks:
    """Observer interface for the engine's three structural events.

    The engine guarantees the ordering a consumer would expect from
    Algorithm 1: ``on_periodic_check`` fires for every asynchronous
    pool check (after the dispatcher's tick ran), ``on_order_arrival``
    fires for every order immediately before it is submitted, and
    ``on_assign`` fires once per served order as soon as its assignment
    is final (whether that happened during a submit or a check).
    """

    def on_order_arrival(self, order: "Order", now: float) -> None:
        """An order was released and is about to be submitted."""

    def on_periodic_check(self, now: float) -> None:
        """The asynchronous pool check at time ``now`` just ran."""

    def on_assign(self, served: "ServedOrder") -> None:
        """An order's assignment became final (it will be served)."""
