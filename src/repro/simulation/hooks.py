"""Event-hook protocol for streaming simulation state to consumers.

Downstream code often wants to *watch* a run — collect per-order
traces, feed dashboards, drive custom accounting — without forking the
engine loop.  :class:`SimulationHooks` is the seam for that: subclass
it, override the events you care about, and pass the instance to
:class:`~repro.simulation.engine.Simulator` (or, at the facade level,
to ``repro.api.Session.run(spec, hooks=...)``).

Every method is a no-op by default, so subclasses only implement what
they need.  Hooks fire *outside* the engine's algorithm timer — a slow
hook inflates wall-clock but never the reported Running Time metric —
and they must not mutate the orders, workers or dispatcher state they
are shown.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..durability.checkpoint import RunCheckpoint
    from ..model.order import Order
    from .dispatcher import ServedOrder


class SimulationHooks:
    """Observer interface for the engine's structural events.

    The engine guarantees the ordering a consumer would expect from
    Algorithm 1: ``on_periodic_check`` fires for every asynchronous
    pool check (after the dispatcher's tick ran), ``on_order_arrival``
    fires for every order immediately before it is submitted, and
    ``on_assign`` fires once per served order as soon as its assignment
    is final (whether that happened during a submit or a check).

    Two *run lifecycle* events bracket the engine events when a run is
    executed through the ``repro.api`` facade (``Session.run`` and
    everything built on it, including the ``repro.serve`` service):
    ``on_run_start`` fires once after the scenario's workload and
    oracle are prepared but before the first engine event, and
    ``on_run_end`` fires once after the run's result is assembled.
    Both receive a flat JSON-able mapping (spec echo, algorithm, graph
    hash; the end event adds wall-clock timings and the metric summary
    row), which is what lets file sinks stream a self-describing trace
    without knowing anything about the facade's types.  Code that
    drives :class:`~repro.simulation.engine.Simulator` directly never
    fires them.
    """

    def on_run_start(self, info: Mapping[str, Any]) -> None:
        """A facade-level run is about to start (prepared, not yet ticking)."""

    def on_order_arrival(self, order: "Order", now: float) -> None:
        """An order was released and is about to be submitted."""

    def on_periodic_check(self, now: float) -> None:
        """The asynchronous pool check at time ``now`` just ran."""

    def on_assign(self, served: "ServedOrder") -> None:
        """An order's assignment became final (it will be served)."""

    def on_run_end(self, info: Mapping[str, Any]) -> None:
        """A facade-level run finished and its result is assembled."""

    def checkpoint_interval(self) -> int | None:
        """Ticks between checkpoint offers, or ``None`` for none.

        A non-``None`` interval asks the engine to build a
        :class:`~repro.durability.checkpoint.RunCheckpoint` every that
        many periodic checks (and once more, forced, when a run is
        cancelled mid-flight) and hand it to :meth:`on_checkpoint`.
        Snapshot assembly is cheap — persistence cost lives in the
        observer — but it still only happens when someone asks.
        """
        return None

    def on_checkpoint(self, checkpoint: "RunCheckpoint") -> None:
        """The engine offers a resumable snapshot at a tick boundary.

        Observers that persist it (see
        :class:`~repro.durability.checkpoint.Checkpointer`) must treat
        the dispatcher and collector inside as live, borrowed state:
        serialize synchronously, never mutate, never retain.
        """


class CompositeHooks(SimulationHooks):
    """Fans every event out to several observers, in order.

    The serving layer uses this to feed one run's events to its result
    store and a trace sink (and any caller-supplied hooks) at once; it
    is equally handy anywhere two independent observers must watch one
    run.  ``None`` entries are skipped so call sites can splice in
    optional observers without filtering first.
    """

    def __init__(self, hooks: Iterable[SimulationHooks | None]) -> None:
        self._hooks: tuple[SimulationHooks, ...] = tuple(
            hook for hook in hooks if hook is not None
        )

    @property
    def children(self) -> tuple[SimulationHooks, ...]:
        """The composed observers (the facade uses this to find, e.g.,
        an attached :class:`~repro.durability.checkpoint.Checkpointer`
        and stamp it with run-identity metadata)."""
        return self._hooks

    def on_run_start(self, info: Mapping[str, Any]) -> None:
        for hook in self._hooks:
            hook.on_run_start(info)

    def on_order_arrival(self, order: "Order", now: float) -> None:
        for hook in self._hooks:
            hook.on_order_arrival(order, now)

    def on_periodic_check(self, now: float) -> None:
        for hook in self._hooks:
            hook.on_periodic_check(now)

    def on_assign(self, served: "ServedOrder") -> None:
        for hook in self._hooks:
            hook.on_assign(served)

    def on_run_end(self, info: Mapping[str, Any]) -> None:
        for hook in self._hooks:
            hook.on_run_end(info)

    def checkpoint_interval(self) -> int | None:
        intervals = [
            interval
            for interval in (hook.checkpoint_interval() for hook in self._hooks)
            if interval is not None
        ]
        return min(intervals) if intervals else None

    def on_checkpoint(self, checkpoint: "RunCheckpoint") -> None:
        for hook in self._hooks:
            hook.on_checkpoint(checkpoint)
