"""The simulation engine that drives any dispatcher over a workload.

The engine replays the workload's orders in release order, interleaving
periodic checks every ``check_period`` seconds (the asynchronous check
of Algorithm 1), feeds everything to the dispatcher, collects outcomes
into the metrics collector and measures the dispatcher's wall-clock
running time (the paper's fourth metric).

The engine is deliberately algorithm-agnostic: WATTER, GDP, GAS and the
non-sharing baseline all run under exactly the same loop, so measured
differences come from the dispatching logic alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..config import SimulationConfig
from ..datasets.synthetic import Workload
from ..network.oracle import configure_oracle
from .dispatcher import Dispatcher, DispatchResult
from .metrics import MetricsCollector, SimulationMetrics


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished run produced."""

    metrics: SimulationMetrics
    collector: MetricsCollector
    config: SimulationConfig

    @property
    def service_rate(self) -> float:
        """Convenience accessor mirroring the headline metric."""
        return self.metrics.service_rate


class Simulator:
    """Replays a workload against a dispatcher.

    Parameters
    ----------
    workload:
        Orders, workers and the road network of one simulated period.
    dispatcher:
        The algorithm under test.
    config:
        Simulation parameters (check period, metric weights, ...).
    """

    def __init__(
        self,
        workload: Workload,
        dispatcher: Dispatcher,
        config: SimulationConfig,
    ) -> None:
        self._workload = workload
        self._dispatcher = dispatcher
        self._config = config
        # The config names the distance-oracle backend; attach it here so
        # every entry point (run_simulation, direct Simulator use, the
        # experiment runner) honours it.  A matching oracle that is
        # already attached is reused, keeping caches warm across the
        # algorithms compared over one workload.
        configure_oracle(
            workload.network, config, nodes=workload.active_nodes(), reuse=True
        )
        self._collector = MetricsCollector(
            weights=config.weights, penalty_factor=config.penalty_factor
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Replay the whole workload and return the aggregated metrics."""
        algorithm_time = 0.0
        check_period = self._config.check_period
        next_check = check_period
        oracle_before = self._oracle_snapshot()
        for order in self._workload.orders:
            release = order.release_time
            # Run any periodic checks that fall before this order's release.
            while next_check <= release:
                algorithm_time += self._timed_tick(next_check)
                next_check += check_period
            started = time.perf_counter()
            result = self._dispatcher.submit(order, release)
            algorithm_time += time.perf_counter() - started
            self._record(result)
        # Drain the remaining checks up to the end of the horizon plus the
        # longest possible wait so pooled orders get their final decisions.
        end_time = self._end_of_activity()
        while next_check <= end_time:
            algorithm_time += self._timed_tick(next_check)
            next_check += check_period
        started = time.perf_counter()
        final = self._dispatcher.flush(end_time)
        algorithm_time += time.perf_counter() - started
        self._record(final)
        metrics = self._collector.finalize(
            algorithm=self._dispatcher.describe(),
            dataset=self._workload.name,
            worker_travel_time=self._worker_travel_time(),
            running_time_total=algorithm_time,
            oracle_stats=self._oracle_delta(oracle_before),
        )
        return SimulationResult(
            metrics=metrics, collector=self._collector, config=self._config
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _timed_tick(self, now: float) -> float:
        started = time.perf_counter()
        result = self._dispatcher.tick(now)
        elapsed = time.perf_counter() - started
        self._record(result)
        return elapsed

    def _record(self, result: DispatchResult) -> None:
        for served in result.served:
            self._collector.record_served(served)
        for order in result.rejected:
            self._collector.record_rejected(order)

    def _end_of_activity(self) -> float:
        if not self._workload.orders:
            return self._config.horizon
        last_release = self._workload.orders[-1].release_time
        longest_wait = max(
            (order.max_response_time for order in self._workload.orders), default=0.0
        )
        return max(self._config.horizon, last_release + longest_wait + self._config.check_period)

    def _worker_travel_time(self) -> float:
        fleet = getattr(self._dispatcher, "fleet", None)
        if fleet is None:
            return 0.0
        return fleet.total_travel_time

    def _oracle_snapshot(self):
        stats_fn = getattr(self._workload.network, "oracle_stats", None)
        return stats_fn() if callable(stats_fn) else None

    def _oracle_delta(self, before):
        """Per-run oracle counters (caches persist across runs on one network)."""
        after = self._oracle_snapshot()
        if before is None or after is None:
            return None
        return (after - before).as_dict()


def run_simulation(
    workload: Workload, dispatcher: Dispatcher, config: SimulationConfig
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(workload, dispatcher, config).run()
