"""The simulation engine that drives any dispatcher over a workload.

The engine replays the workload's orders in release order, interleaving
periodic checks every ``check_period`` seconds (the asynchronous check
of Algorithm 1), feeds everything to the dispatcher, collects outcomes
into the metrics collector and measures the dispatcher's wall-clock
running time (the paper's fourth metric).

The engine is deliberately algorithm-agnostic: WATTER, GDP, GAS and the
non-sharing baseline all run under exactly the same loop, so measured
differences come from the dispatching logic alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..config import SimulationConfig
from ..datasets.synthetic import Workload
from ..durability.checkpoint import LoadedCheckpoint, RunCheckpoint, RunCursor
from ..network.oracle import configure_oracle
from ..resilience.cancellation import CancellationToken, RunCancelled
from ..resilience.degradation import DegradationLog
from .dispatcher import Dispatcher, DispatchResult
from .hooks import SimulationHooks
from .metrics import MetricsCollector, SimulationMetrics
from .parallel import ParallelDispatchEngine


@dataclass(frozen=True)
class SimulationResult:
    """Everything a finished run produced."""

    metrics: SimulationMetrics
    collector: MetricsCollector
    config: SimulationConfig

    @property
    def service_rate(self) -> float:
        """Convenience accessor mirroring the headline metric."""
        return self.metrics.service_rate


class Simulator:
    """Replays a workload against a dispatcher.

    Parameters
    ----------
    workload:
        Orders, workers and the road network of one simulated period.
    dispatcher:
        The algorithm under test.
    config:
        Simulation parameters (check period, metric weights, ...).
    hooks:
        Optional :class:`SimulationHooks` observer notified of order
        arrivals, periodic checks and final assignments.  Hook calls
        run outside the algorithm timer, so a slow observer never
        distorts the Running Time metric.
    cancellation:
        Optional :class:`~repro.resilience.cancellation.
        CancellationToken` checked cooperatively at every tick boundary
        and before every order submission; a cancelled token (explicit
        or deadline expiry) raises
        :class:`~repro.resilience.cancellation.RunCancelled`, which
        unwinds through ``run()``'s ``finally`` — the dispatch engine
        is torn down, nothing leaks.
    degradations:
        Optional :class:`~repro.resilience.degradation.DegradationLog`
        handed to the oracle attach and the parallel dispatch engine so
        their fallbacks are recorded against this run.
    resume:
        Optional :class:`~repro.durability.checkpoint.LoadedCheckpoint`
        to continue from.  The caller passes the checkpoint's restored
        dispatcher as ``dispatcher``; the engine adopts the restored
        metrics collector and re-enters the replay loop at the
        checkpoint's cursor.  The loop is deterministic after provider
        bootstrap, so the finished run's metrics match an uninterrupted
        run exactly (wall-clock ``running_time`` and per-run oracle
        deltas aside).
    """

    def __init__(
        self,
        workload: Workload,
        dispatcher: Dispatcher,
        config: SimulationConfig,
        hooks: SimulationHooks | None = None,
        *,
        cancellation: CancellationToken | None = None,
        degradations: DegradationLog | None = None,
        resume: LoadedCheckpoint | None = None,
    ) -> None:
        self._workload = workload
        self._dispatcher = dispatcher
        self._config = config
        self._hooks = hooks
        self._cancellation = cancellation
        self._degradations = degradations
        self._resume = resume
        # The config names the distance-oracle backend; attach it here so
        # every entry point (run_simulation, direct Simulator use, the
        # experiment runner) honours it.  A matching oracle that is
        # already attached is reused, keeping caches warm across the
        # algorithms compared over one workload.
        configure_oracle(
            workload.network,
            config,
            nodes=workload.active_nodes(),
            reuse=True,
            degradations=degradations,
        )
        self._collector = (
            resume.collector
            if resume is not None
            else MetricsCollector(
                weights=config.weights, penalty_factor=config.penalty_factor
            )
        )
        self._engine: ParallelDispatchEngine | None = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Replay the whole workload and return the aggregated metrics."""
        self._attach_engine()
        try:
            return self._run()
        finally:
            self._detach_engine()

    def _attach_engine(self) -> None:
        """Stand the sharded dispatch engine up for this run, if asked.

        With ``dispatch_workers > 1`` and a dispatcher that knows how
        to prefetch its periodic checks (and whose fleet can read the
        results), the engine is created *here* — not in the
        constructor — so a never-run ``Simulator`` forks no worker
        pool, and dispatchers without a prefetch hook (the baselines)
        never pay for an idle one.  The engine only precomputes travel
        times; the dispatch decisions are made by the same serial code
        either way, so results match serial runs exactly.
        """
        if self._engine is not None or self._config.dispatch_workers <= 1:
            return
        dispatcher = self._dispatcher
        attach_dispatcher = getattr(dispatcher, "attach_dispatch_engine", None)
        fleet = getattr(dispatcher, "fleet", None)
        attach_fleet = getattr(fleet, "attach_dispatch_engine", None)
        if not (callable(attach_dispatcher) and callable(attach_fleet)):
            return
        self._engine = ParallelDispatchEngine(
            self._workload.network,
            num_shards=self._config.dispatch_workers,
            mode=self._config.dispatch_mode,
            degradations=self._degradations,
            shared_memory=self._config.oracle_shared_memory,
        )
        attach_fleet(self._engine)
        attach_dispatcher(self._engine)

    def _detach_engine(self) -> None:
        """Tear the run's engine down and detach it everywhere.

        Resetting ``self._engine`` (not just closing it) matters: a
        second ``run()`` then builds a fresh engine instead of silently
        degrading to inline serial execution while still reporting
        sharded counters.
        """
        if self._engine is None:
            return
        self._engine.close()
        dispatcher = self._dispatcher
        fleet = getattr(dispatcher, "fleet", None)
        detach_fleet = getattr(fleet, "attach_dispatch_engine", None)
        if callable(detach_fleet):
            detach_fleet(None)
        detach_dispatcher = getattr(dispatcher, "attach_dispatch_engine", None)
        if callable(detach_dispatcher):
            detach_dispatcher(None)
        self._engine = None

    def _run(self) -> SimulationResult:
        if self._cancellation is not None:
            # The deadline clock starts when the run starts executing —
            # queue time never eats a run's budget (idempotent: the
            # serving layer may have started it already).
            self._cancellation.start()
        check_period = self._config.check_period
        orders = self._workload.orders
        # The cursor is the loop position; a checkpoint freezes it at a
        # tick boundary, a resume re-enters the loop at it.  The loop
        # itself is deterministic in the cursor + dispatcher state, so
        # both halves of an interrupted run replay the same decisions
        # an uninterrupted run makes.
        cursor = (
            self._resume.cursor
            if self._resume is not None
            else RunCursor(
                order_index=0, next_check=check_period, ticks=0, algorithm_time=0.0
            )
        )
        order_index = cursor.order_index
        next_check = cursor.next_check
        ticks = cursor.ticks
        algorithm_time = cursor.algorithm_time
        interval = (
            self._hooks.checkpoint_interval() if self._hooks is not None else None
        )
        oracle_before = self._oracle_snapshot()

        def offer_checkpoint(forced: bool = False) -> None:
            if interval is None or self._hooks is None:
                return
            if not forced and ticks % interval != 0:
                return
            self._hooks.on_checkpoint(
                RunCheckpoint(
                    cursor=RunCursor(
                        order_index=order_index,
                        next_check=next_check,
                        ticks=ticks,
                        algorithm_time=algorithm_time,
                    ),
                    dispatcher=self._dispatcher,
                    collector=self._collector,
                    network=self._workload.network,
                    forced=forced,
                )
            )

        try:
            while order_index < len(orders):
                order = orders[order_index]
                release = order.release_time
                # Run any periodic checks falling before this release.
                while next_check <= release:
                    self._check_cancelled()
                    algorithm_time += self._timed_tick(next_check)
                    next_check += check_period
                    ticks += 1
                    offer_checkpoint()
                self._check_cancelled()
                if self._hooks is not None:
                    self._hooks.on_order_arrival(order, release)
                started = time.perf_counter()
                result = self._dispatcher.submit(order, release)
                algorithm_time += time.perf_counter() - started
                self._record(result)
                order_index += 1
            # Drain the remaining checks up to the end of the horizon plus
            # the longest possible wait so pooled orders get their final
            # decisions.  (Recomputed from the workload, so a resumed run
            # drains to the same instant.)
            end_time = self._end_of_activity()
            while next_check <= end_time:
                self._check_cancelled()
                algorithm_time += self._timed_tick(next_check)
                next_check += check_period
                ticks += 1
                offer_checkpoint()
        except RunCancelled:
            # Leave one final resumable snapshot behind — this is what
            # turns a drain-deadline cancellation into an *interruption*
            # a restarted process can continue from.
            offer_checkpoint(forced=True)
            raise
        started = time.perf_counter()
        final = self._dispatcher.flush(end_time)
        algorithm_time += time.perf_counter() - started
        self._record(final)
        metrics = self._collector.finalize(
            algorithm=self._dispatcher.describe(),
            dataset=self._workload.name,
            worker_travel_time=self._worker_travel_time(),
            running_time_total=algorithm_time,
            oracle_stats=self._oracle_delta(oracle_before),
        )
        return SimulationResult(
            metrics=metrics, collector=self._collector, config=self._config
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_cancelled(self) -> None:
        """The cooperative cancellation checkpoint (tick boundaries)."""
        if self._cancellation is not None:
            self._cancellation.check()

    def _timed_tick(self, now: float) -> float:
        started = time.perf_counter()
        result = self._dispatcher.tick(now)
        elapsed = time.perf_counter() - started
        if self._hooks is not None:
            self._hooks.on_periodic_check(now)
        self._record(result)
        return elapsed

    def _record(self, result: DispatchResult) -> None:
        for served in result.served:
            self._collector.record_served(served)
            if self._hooks is not None:
                self._hooks.on_assign(served)
        for order in result.rejected:
            self._collector.record_rejected(order)

    def _end_of_activity(self) -> float:
        if not self._workload.orders:
            return self._config.horizon
        last_release = self._workload.orders[-1].release_time
        longest_wait = max(
            (order.max_response_time for order in self._workload.orders), default=0.0
        )
        return max(self._config.horizon, last_release + longest_wait + self._config.check_period)

    def _worker_travel_time(self) -> float:
        fleet = getattr(self._dispatcher, "fleet", None)
        if fleet is None:
            return 0.0
        return fleet.total_travel_time

    def _oracle_snapshot(self):
        stats_fn = getattr(self._workload.network, "oracle_stats", None)
        return stats_fn() if callable(stats_fn) else None

    def _oracle_delta(self, before):
        """Per-run oracle counters (caches persist across runs on one network).

        With a parallel dispatch engine attached, its scheduling
        counters and the per-shard oracle work (queries answered by
        forked shard handles, which the main oracle never saw) are
        folded in alongside the uniform counters.
        """
        after = self._oracle_snapshot()
        if before is None or after is None:
            return None
        stats = (after - before).as_dict()
        if self._engine is not None:
            stats.update(self._engine.stats())
        return stats


def run_simulation(
    workload: Workload,
    dispatcher: Dispatcher,
    config: SimulationConfig,
    hooks: SimulationHooks | None = None,
    *,
    cancellation: CancellationToken | None = None,
    degradations: DegradationLog | None = None,
    resume: LoadedCheckpoint | None = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    return Simulator(
        workload,
        dispatcher,
        config,
        hooks=hooks,
        cancellation=cancellation,
        degradations=degradations,
        resume=resume,
    ).run()
