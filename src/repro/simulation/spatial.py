"""Spatial index over worker locations for candidate pruning.

``WorkerFleet.find_worker_for`` asks "which idle worker is nearest (in
travel time) to this pickup node?".  Scanning the whole fleet answers
that in O(fleet) oracle probes; on city-scale fleets only a handful of
workers are plausibly closest.  :class:`WorkerSpatialIndex` buckets
workers by the grid cell of their current node (the paper's Section
VII-A grid index, maintained *incrementally* as workers are assigned
and released) and serves candidates in Chebyshev rings of increasing
distance around a query node.

Each ring comes with a *lower bound* on the travel time of any worker
in it: a worker in a cell at Chebyshev ring ``r`` is at least
``(r - 1) * min_cell_extent`` Euclidean units away, and no road path
can cover Euclidean distance faster than the network's fastest edge, so
``travel_time >= euclidean / max_speed``.  Once the best feasible
worker found so far beats the next ring's bound, the search stops —
turning the O(fleet) scan into an O(nearby) one without changing the
selected worker.

Graphs with teleport-like edges (zero travel time over positive
distance) degrade gracefully: the bound collapses to zero and the
search visits every ring, which is exactly the previous full scan.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Iterator, TYPE_CHECKING

from ..network.grid import GridIndex

if TYPE_CHECKING:  # pragma: no cover
    from ..network.graph import RoadNetwork


class WorkerSpatialIndex:
    """Node-bucket index of worker locations over a grid partition.

    Parameters
    ----------
    network:
        Road network the workers move on (provides coordinates and the
        fastest-edge speed for the ring lower bounds).
    grid:
        Grid partition of the network's bounding box.
    """

    def __init__(self, network: "RoadNetwork", grid: GridIndex) -> None:
        self._network = network
        self._grid = grid
        self._cell_workers: dict[int, set[int]] = defaultdict(set)
        self._worker_cell: dict[int, int] = {}
        min_x, min_y, max_x, max_y = network.bounding_box()
        self._cell_extent = min(
            ((max_x - min_x) or 1.0) / grid.size,
            ((max_y - min_y) or 1.0) / grid.size,
        )
        self._max_speed = self._fastest_edge_speed(network)
        # The grid geometry, cell extents and edge-speed bound above are
        # all pre-materialised here — queries never lazily build state —
        # so concurrent readers only share immutable data plus the two
        # benchmark counters below, which this lock guards.  Maintenance
        # (insert / move / remove) is *not* concurrency-safe and must
        # stay on the owning thread, which is how the fleet drives it.
        self._counter_lock = threading.Lock()
        #: Number of ring-expanding searches served (for benchmarks).
        self.searches = 0
        #: Workers yielded to callers across all searches; compare with
        #: ``searches * len(fleet)`` to see the pruning win.
        self.candidates_yielded = 0

    @staticmethod
    def _fastest_edge_speed(network: "RoadNetwork") -> float:
        """Fastest Euclidean speed of any edge (units per second)."""
        graph = network.graph
        coords = {
            node: (float(data["x"]), float(data["y"]))
            for node, data in graph.nodes(data=True)
        }
        fastest = 0.0
        for u, v, data in graph.edges(data=True):
            travel_time = float(data["travel_time"])
            ux, uy = coords[u]
            vx, vy = coords[v]
            length = ((vx - ux) ** 2 + (vy - uy) ** 2) ** 0.5
            if length <= 0.0:
                continue
            if travel_time <= 0.0:
                return float("inf")
            speed = length / travel_time
            if speed > fastest:
                fastest = speed
        return fastest

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._worker_cell)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._worker_cell

    def insert(self, worker_id: int, node: int) -> None:
        """Index (or re-index) a worker at ``node``."""
        cell = self._grid.cell_of(node)
        previous = self._worker_cell.get(worker_id)
        if previous == cell:
            return
        if previous is not None:
            self._cell_workers[previous].discard(worker_id)
        self._worker_cell[worker_id] = cell
        self._cell_workers[cell].add(worker_id)

    # ``move`` is the intent-revealing alias used on assignment updates.
    move = insert

    def remove(self, worker_id: int) -> None:
        """Drop a worker from the index (no-op when absent)."""
        cell = self._worker_cell.pop(worker_id, None)
        if cell is not None:
            self._cell_workers[cell].discard(worker_id)

    def workers_in_cell(self, cell: int) -> frozenset[int]:
        """Worker ids currently bucketed in ``cell`` (for tests)."""
        return frozenset(self._cell_workers.get(cell, ()))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rings(self, node: int) -> Iterator[tuple[float, list[int]]]:
        """Yield ``(travel_time_lower_bound, worker_ids)`` per ring.

        Rings are visited nearest first and the bounds are
        non-decreasing, so a caller tracking the best travel time found
        so far can stop as soon as the bound of the next non-empty ring
        can no longer beat it.  Every indexed worker is yielded exactly
        once; empty rings are skipped.

        Safe for concurrent read-only use: the geometry is immutable,
        each search works off a snapshot of the bucket contents, and
        the benchmark counters are updated under a lock.
        """
        with self._counter_lock:
            self.searches += 1
        grid = self._grid
        center = grid.cell_of(node)
        row, col = grid.cell_coordinates(center)
        size = grid.size
        max_radius = max(row, col, size - 1 - row, size - 1 - col)
        remaining = len(self._worker_cell)
        for radius in range(max_radius + 1):
            if remaining <= 0:
                return
            ids: list[int] = []
            for cell in grid.ring(center, radius):
                bucket = self._cell_workers.get(cell)
                if bucket:
                    ids.extend(bucket)
            if not ids:
                continue
            ids.sort()  # deterministic order within a ring
            remaining -= len(ids)
            with self._counter_lock:
                self.candidates_yielded += len(ids)
            yield self.ring_lower_bound(radius), ids

    def ring_lower_bound(self, radius: int) -> float:
        """Lower bound (seconds) on travel time from a query node to any
        worker whose cell is at Chebyshev ring ``radius``."""
        if radius <= 1 or self._max_speed <= 0.0:
            return 0.0
        distance = (radius - 1) * self._cell_extent
        if self._max_speed == float("inf"):
            return 0.0
        return distance / self._max_speed

