"""Workload substrate: synthetic city demand models and I/O."""

from .synthetic import CityModel, DemandHotspot, Workload
from .workloads import (
    build_workload,
    nyc_like_city,
    cdc_like_city,
    xia_like_city,
    large_synthetic_city,
    city_by_name,
    DATASET_NAMES,
    LARGE_DATASET_NAMES,
)
from .io import orders_to_csv, orders_from_csv, workers_to_csv, workers_from_csv

__all__ = [
    "CityModel",
    "DemandHotspot",
    "Workload",
    "build_workload",
    "nyc_like_city",
    "cdc_like_city",
    "xia_like_city",
    "large_synthetic_city",
    "city_by_name",
    "DATASET_NAMES",
    "LARGE_DATASET_NAMES",
    "orders_to_csv",
    "orders_from_csv",
    "workers_to_csv",
    "workers_from_csv",
]
