"""Dataset presets mimicking the paper's three cities.

The paper evaluates on NYC (yellow taxi), Chengdu (CDC) and Xi'an (XIA)
order logs.  Their properties that matter to the algorithms — and that
the presets below reproduce — are:

* **NYC**: demand concentrated in the elongated Manhattan grid, which
  makes shareable pairs abundant; the paper notes most orders fall in
  that area, so WATTER-online already does well there (Section VII-B).
* **CDC / XIA**: pickups and dropoffs are more dispersed across the
  city, so the benefit of waiting for a better group (WATTER-expect) is
  larger and WATTER-online's improvement is limited.

Each preset bundles a synthetic road network with hotspot layouts and
peak periods.  ``build_workload`` is the single entry point used by the
experiment harness and the examples.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..exceptions import DatasetError
from ..network.generators import grid_city, large_city, manhattan_like_city
from .synthetic import CityModel, DemandHotspot, PeakPeriod, Workload

#: The paper's three city presets (kept separate from the city-scale
#: stress preset below so sweeps over "the paper's datasets" stay fast).
DATASET_NAMES = ("NYC", "CDC", "XIA")

#: City-scale synthetic preset names (all aliases of one model).
LARGE_DATASET_NAMES = ("LARGE", "LARGE-SYNTHETIC")


def nyc_like_city(seed: int = 0) -> CityModel:
    """Manhattan-like, demand concentrated along the central avenue axis."""
    network = manhattan_like_city(rows=40, cols=8, seed=seed)
    # Hotspots along the central avenue: midtown-like cluster dominates.
    pickup_hotspots = [
        DemandHotspot(x=3.5, y=20.0, spread=4.0, weight=3.0),
        DemandHotspot(x=3.5, y=30.0, spread=3.0, weight=2.0),
        DemandHotspot(x=3.5, y=8.0, spread=3.0, weight=1.5),
    ]
    dropoff_hotspots = [
        DemandHotspot(x=3.5, y=25.0, spread=5.0, weight=3.0),
        DemandHotspot(x=3.5, y=12.0, spread=4.0, weight=2.0),
    ]
    peaks = [
        PeakPeriod(start=1800.0, end=5400.0, intensity=2.5),
        PeakPeriod(start=9000.0, end=12600.0, intensity=2.0),
    ]
    return CityModel(
        name="NYC",
        network=network,
        pickup_hotspots=pickup_hotspots,
        dropoff_hotspots=dropoff_hotspots,
        uniform_fraction=0.10,
        peak_periods=peaks,
        min_trip_time=240.0,
    )


def cdc_like_city(seed: int = 1) -> CityModel:
    """Chengdu-like: square grid, moderately dispersed demand."""
    network = grid_city(rows=22, cols=22, edge_travel_time=70.0, seed=seed)
    pickup_hotspots = [
        DemandHotspot(x=10.0, y=10.0, spread=5.0, weight=2.0),
        DemandHotspot(x=4.0, y=16.0, spread=4.0, weight=1.0),
        DemandHotspot(x=17.0, y=5.0, spread=4.0, weight=1.0),
    ]
    dropoff_hotspots = [
        DemandHotspot(x=11.0, y=11.0, spread=6.0, weight=1.5),
        DemandHotspot(x=16.0, y=16.0, spread=5.0, weight=1.0),
        DemandHotspot(x=5.0, y=5.0, spread=5.0, weight=1.0),
    ]
    peaks = [PeakPeriod(start=3600.0, end=7200.0, intensity=1.8)]
    return CityModel(
        name="CDC",
        network=network,
        pickup_hotspots=pickup_hotspots,
        dropoff_hotspots=dropoff_hotspots,
        uniform_fraction=0.30,
        peak_periods=peaks,
        min_trip_time=240.0,
    )


def xia_like_city(seed: int = 2) -> CityModel:
    """Xi'an-like: smaller grid, the most dispersed demand of the three."""
    network = grid_city(rows=18, cols=18, edge_travel_time=80.0, seed=seed)
    pickup_hotspots = [
        DemandHotspot(x=8.0, y=8.0, spread=6.0, weight=1.5),
        DemandHotspot(x=13.0, y=4.0, spread=5.0, weight=1.0),
        DemandHotspot(x=4.0, y=13.0, spread=5.0, weight=1.0),
    ]
    dropoff_hotspots = [
        DemandHotspot(x=9.0, y=9.0, spread=7.0, weight=1.0),
        DemandHotspot(x=14.0, y=14.0, spread=6.0, weight=1.0),
        DemandHotspot(x=3.0, y=3.0, spread=6.0, weight=1.0),
    ]
    peaks = [PeakPeriod(start=3600.0, end=6300.0, intensity=1.6)]
    return CityModel(
        name="XIA",
        network=network,
        pickup_hotspots=pickup_hotspots,
        dropoff_hotspots=dropoff_hotspots,
        uniform_fraction=0.40,
        peak_periods=peaks,
        min_trip_time=240.0,
    )


def large_synthetic_city(seed: int = 3) -> CityModel:
    """A 102 400-node city for the coarsening / overlay stress path.

    The network is :func:`~repro.network.generators.large_city`'s
    320x320 arterial lattice (built in O(V+E)); demand uses the
    *local-trip* model — dropoffs are Gaussian displacements of their
    pickups and trip times come from early-terminating point-to-point
    Dijkstras — so generating a workload touches only the sampled
    neighbourhoods, never a full per-source distance map of the 10^5
    nodes.  Selected as dataset ``"LARGE"`` (alias
    ``"LARGE-SYNTHETIC"``) from :class:`~repro.api.ScenarioSpec` or
    ``--dataset LARGE``; pair it with ``--oracle overlay`` for
    city-scale dispatch.
    """
    network = large_city(rows=320, cols=320, seed=seed)
    pickup_hotspots = [
        DemandHotspot(x=160.0, y=160.0, spread=40.0, weight=2.0),
        DemandHotspot(x=80.0, y=240.0, spread=30.0, weight=1.0),
        DemandHotspot(x=240.0, y=80.0, spread=30.0, weight=1.0),
    ]
    # Unused while local_trip_spread is set, but a CityModel requires a
    # dropoff side — keep it meaningful in case a caller clears the
    # local-trip mode on a copy.
    dropoff_hotspots = [
        DemandHotspot(x=160.0, y=160.0, spread=50.0, weight=1.0),
    ]
    peaks = [PeakPeriod(start=3600.0, end=7200.0, intensity=1.8)]
    return CityModel(
        name="LARGE",
        network=network,
        pickup_hotspots=pickup_hotspots,
        dropoff_hotspots=dropoff_hotspots,
        uniform_fraction=0.20,
        peak_periods=peaks,
        min_trip_time=240.0,
        local_trip_spread=12.0,
    )


_CITY_FACTORIES = {
    "NYC": nyc_like_city,
    "CDC": cdc_like_city,
    "XIA": xia_like_city,
    "LARGE": large_synthetic_city,
    "LARGE-SYNTHETIC": large_synthetic_city,
}


def city_by_name(name: str, seed: int = 0) -> CityModel:
    """Return the preset city model for a dataset name (case-insensitive)."""
    key = name.upper()
    try:
        factory = _CITY_FACTORIES[key]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of "
            f"{DATASET_NAMES + LARGE_DATASET_NAMES}"
        ) from exc
    return factory(seed=seed)


def build_workload(dataset: str, config: SimulationConfig) -> Workload:
    """Generate a workload for one of the paper's dataset presets.

    Parameters
    ----------
    dataset:
        ``"NYC"``, ``"CDC"`` or ``"XIA"``.
    config:
        Simulation parameters (order count, worker count, deadline
        scale, ...).  The config seed controls all sampling.
    """
    city = city_by_name(dataset, seed=config.seed)
    return city.generate(config)
