"""Synthetic workload generation.

The paper's experiments replay real order logs (NYC yellow taxi, Didi
GAIA Chengdu/Xi'an).  Those logs are not redistributable, so this module
provides a *demand model* that generates statistically similar
workloads:

* demand is a mixture of spatial **hotspots** (popular pickup / dropoff
  areas) plus a uniform background, reproducing the spatial clustering
  that makes pooling worthwhile,
* arrivals follow an inhomogeneous Poisson process with configurable
  **peak periods**, reproducing rush-hour surges,
* worker start locations are sampled from the pickup distribution, the
  same choice the paper makes (Section VII-A), and vehicle capacities
  are uniform on ``[2, Kw]``.

The generator produces plain :class:`~repro.model.order.Order` /
:class:`~repro.model.worker.Worker` objects, so everything downstream is
agnostic to whether the workload came from this model or from a real
CSV imported via :mod:`repro.datasets.io`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from ..config import SimulationConfig
from ..exceptions import DatasetError
from ..model.order import Order
from ..model.worker import Worker
from ..network.graph import RoadNetwork


@dataclass(frozen=True)
class DemandHotspot:
    """A popular area of the city.

    Attributes
    ----------
    x, y:
        Centre of the hotspot in network coordinates.
    spread:
        Standard deviation (coordinate units) of the Gaussian around the
        centre from which nodes are drawn.
    weight:
        Relative probability mass of the hotspot.
    """

    x: float
    y: float
    spread: float
    weight: float = 1.0


@dataclass(frozen=True)
class PeakPeriod:
    """A demand surge: arrival rate is multiplied by ``intensity`` inside it."""

    start: float
    end: float
    intensity: float = 2.0


@dataclass
class Workload:
    """A generated day of demand: orders sorted by release time plus workers."""

    orders: list[Order]
    workers: list[Worker]
    network: RoadNetwork
    name: str = "synthetic"

    def __post_init__(self) -> None:
        self.orders.sort(key=lambda order: order.release_time)

    def __len__(self) -> int:
        return len(self.orders)

    def active_nodes(self) -> list[int]:
        """Nodes the dispatch hot path will query: pickups, dropoffs, workers.

        Precomputing distance-oracle backends use this as their initial
        row/table set so the whole simulation runs on warm state.
        """
        nodes: dict[int, None] = {}
        for order in self.orders:
            nodes.setdefault(order.pickup)
            nodes.setdefault(order.dropoff)
        for worker in self.workers:
            nodes.setdefault(worker.location)
        return list(nodes)


@dataclass
class CityModel:
    """A city's road network plus its demand characteristics.

    The three dataset presets in :mod:`repro.datasets.workloads`
    instantiate this class with different networks, hotspot layouts and
    dispersion levels to mimic NYC / Chengdu / Xi'an.
    """

    name: str
    network: RoadNetwork
    pickup_hotspots: Sequence[DemandHotspot]
    dropoff_hotspots: Sequence[DemandHotspot]
    uniform_fraction: float = 0.2
    peak_periods: Sequence[PeakPeriod] = field(default_factory=tuple)
    min_trip_time: float = 180.0
    #: When set, dropoffs are sampled as a Gaussian displacement of this
    #: spread (coordinate units) around the pickup instead of from the
    #: dropoff hotspots, and trip times come from an early-terminating
    #: Dijkstra instead of the attached oracle.  This keeps workload
    #: generation on a 10^5-node city linear in the explored
    #: neighbourhood — no full single-source distance map per order.
    local_trip_spread: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.uniform_fraction <= 1.0:
            raise DatasetError("uniform_fraction must lie in [0, 1]")
        if not self.pickup_hotspots or not self.dropoff_hotspots:
            raise DatasetError("a city model needs at least one hotspot per side")
        if self.local_trip_spread is not None and self.local_trip_spread <= 0:
            raise DatasetError("local_trip_spread must be positive when set")

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_pickup(self, rng: random.Random) -> int:
        """Draw a pickup node from the demand distribution."""
        return self._sample_node(self.pickup_hotspots, rng)

    def sample_dropoff(self, rng: random.Random) -> int:
        """Draw a dropoff node from the demand distribution."""
        return self._sample_node(self.dropoff_hotspots, rng)

    def arrival_rate_multiplier(self, time: float) -> float:
        """Demand intensity at ``time`` relative to the base rate."""
        multiplier = 1.0
        for peak in self.peak_periods:
            if peak.start <= time < peak.end:
                multiplier = max(multiplier, peak.intensity)
        return multiplier

    def generate(self, config: SimulationConfig) -> Workload:
        """Generate a full workload for the given simulation configuration."""
        rng = random.Random(config.seed)
        orders = self._generate_orders(config, rng)
        workers = self._generate_workers(config, rng, orders)
        return Workload(orders=orders, workers=workers, network=self.network, name=self.name)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _generate_orders(
        self, config: SimulationConfig, rng: random.Random
    ) -> list[Order]:
        release_times = self._arrival_times(config, rng)
        orders: list[Order] = []
        for release in release_times:
            order = self._sample_order(release, config, rng)
            if order is not None:
                orders.append(order)
        if not orders:
            raise DatasetError(
                "workload generation produced no feasible orders; "
                "check the network connectivity and min_trip_time"
            )
        return orders

    def _arrival_times(
        self, config: SimulationConfig, rng: random.Random
    ) -> list[float]:
        """Thinning-free arrival sampling: draw times from the intensity profile.

        The profile is discretised into one-minute bins whose weights are
        the intensity multipliers; ``num_orders`` timestamps are then
        drawn from that categorical distribution and jittered inside the
        bin.  This gives exactly the requested order count (the sweeps
        vary ``n`` directly) while preserving the peak structure.
        """
        bin_width = 60.0
        num_bins = max(int(math.ceil(config.horizon / bin_width)), 1)
        weights = [
            self.arrival_rate_multiplier(index * bin_width) for index in range(num_bins)
        ]
        total = sum(weights)
        times = []
        for _ in range(config.num_orders):
            pick = rng.uniform(0.0, total)
            acc = 0.0
            chosen = num_bins - 1
            for index, weight in enumerate(weights):
                acc += weight
                if pick <= acc:
                    chosen = index
                    break
            times.append(
                min(chosen * bin_width + rng.uniform(0.0, bin_width), config.horizon)
            )
        times.sort()
        return times

    def _sample_order(
        self, release: float, config: SimulationConfig, rng: random.Random
    ) -> Order | None:
        for _ in range(20):  # retry until the trip is long enough and reachable
            pickup = self.sample_pickup(rng)
            if self.local_trip_spread is not None:
                dropoff = self._sample_local_dropoff(pickup, rng)
            else:
                dropoff = self.sample_dropoff(rng)
            if pickup == dropoff:
                continue
            shortest = self._trip_time(pickup, dropoff)
            if shortest is None or shortest < self.min_trip_time:
                continue
            deadline = release + config.deadline_scale * shortest
            wait_limit = config.watch_window_scale * shortest
            return Order(
                pickup=pickup,
                dropoff=dropoff,
                release_time=release,
                shortest_time=shortest,
                deadline=deadline,
                wait_limit=wait_limit,
                riders=1,
            )
        return None

    def _trip_time(self, pickup: int, dropoff: int) -> float | None:
        """Shortest travel time, or ``None`` when the pair is unreachable.

        Local-trip cities answer with a point-to-point Dijkstra that
        stops at the dropoff (the explored region is proportional to the
        trip, not the city); hotspot cities keep going through the
        network's oracle so its per-source cache warms for the run.
        """
        if self.local_trip_spread is not None:
            try:
                return nx.dijkstra_path_length(
                    self.network.graph, pickup, dropoff, weight="travel_time"
                )
            except nx.NetworkXNoPath:
                return None
        if not self.network.is_reachable(pickup, dropoff):
            return None
        return self.network.travel_time(pickup, dropoff)

    def _sample_local_dropoff(self, pickup: int, rng: random.Random) -> int:
        """A dropoff displaced from the pickup by a Gaussian step."""
        x, y = self.network.coordinates(pickup)
        return self.network.nearest_node(
            rng.gauss(x, self.local_trip_spread),
            rng.gauss(y, self.local_trip_spread),
        )

    def _generate_workers(
        self, config: SimulationConfig, rng: random.Random, orders: Sequence[Order]
    ) -> list[Worker]:
        pickup_nodes = [order.pickup for order in orders]
        workers = []
        for _ in range(config.num_workers):
            location = rng.choice(pickup_nodes) if pickup_nodes else self._any_node(rng)
            capacity = rng.randint(2, config.max_capacity)
            workers.append(Worker(location=location, capacity=capacity))
        return workers

    def _any_node(self, rng: random.Random) -> int:
        nodes = self.network.nodes_sorted()
        return nodes[rng.randrange(len(nodes))]

    def _sample_node(
        self, hotspots: Sequence[DemandHotspot], rng: random.Random
    ) -> int:
        if rng.random() < self.uniform_fraction:
            return self._any_node(rng)
        weights = [spot.weight for spot in hotspots]
        total = sum(weights)
        pick = rng.uniform(0.0, total)
        acc = 0.0
        chosen = hotspots[-1]
        for spot, weight in zip(hotspots, weights):
            acc += weight
            if pick <= acc:
                chosen = spot
                break
        x = rng.gauss(chosen.x, chosen.spread)
        y = rng.gauss(chosen.y, chosen.spread)
        return self.network.nearest_node(x, y)
