"""CSV import / export of workloads.

The paper's real order logs come as CSV files with pickup / dropoff
coordinates and release timestamps.  These helpers let a user of the
library round-trip workloads in a similarly simple format so a real
dataset (if available) can be mapped onto a road network and fed to the
same simulators the synthetic workloads use.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..config import SimulationConfig
from ..exceptions import DatasetError
from ..model.order import Order
from ..model.worker import Worker
from ..network.graph import RoadNetwork

_ORDER_FIELDS = (
    "order_id",
    "pickup",
    "dropoff",
    "release_time",
    "shortest_time",
    "deadline",
    "wait_limit",
    "riders",
)

_WORKER_FIELDS = ("worker_id", "location", "capacity")


def orders_to_csv(orders: Iterable[Order], path: str | Path) -> None:
    """Write orders to a CSV file with one row per order."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_ORDER_FIELDS)
        for order in orders:
            writer.writerow(
                [
                    order.order_id,
                    order.pickup,
                    order.dropoff,
                    order.release_time,
                    order.shortest_time,
                    order.deadline,
                    order.wait_limit,
                    order.riders,
                ]
            )


def orders_from_csv(path: str | Path) -> list[Order]:
    """Read orders previously written by :func:`orders_to_csv`."""
    orders = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_ORDER_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise DatasetError(f"order CSV is missing columns: {sorted(missing)}")
        for row in reader:
            orders.append(
                Order(
                    order_id=int(row["order_id"]),
                    pickup=int(row["pickup"]),
                    dropoff=int(row["dropoff"]),
                    release_time=float(row["release_time"]),
                    shortest_time=float(row["shortest_time"]),
                    deadline=float(row["deadline"]),
                    wait_limit=float(row["wait_limit"]),
                    riders=int(row["riders"]),
                )
            )
    orders.sort(key=lambda order: order.release_time)
    return orders


def workers_to_csv(workers: Iterable[Worker], path: str | Path) -> None:
    """Write workers to a CSV file with one row per worker."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_WORKER_FIELDS)
        for worker in workers:
            writer.writerow([worker.worker_id, worker.location, worker.capacity])


def workers_from_csv(path: str | Path) -> list[Worker]:
    """Read workers previously written by :func:`workers_to_csv`."""
    workers = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_WORKER_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise DatasetError(f"worker CSV is missing columns: {sorted(missing)}")
        for row in reader:
            workers.append(
                Worker(
                    worker_id=int(row["worker_id"]),
                    location=int(row["location"]),
                    capacity=int(row["capacity"]),
                )
            )
    return workers


def raw_trips_to_orders(
    rows: Iterable[dict],
    network: RoadNetwork,
    config: SimulationConfig,
) -> list[Order]:
    """Convert raw trip records (coordinates + timestamp) into orders.

    Each row needs ``pickup_x``, ``pickup_y``, ``dropoff_x``,
    ``dropoff_y`` and ``release_time`` keys.  Coordinates are snapped to
    the nearest network node; deadlines and wait limits follow the
    paper's setup (``tau * cost`` and ``eta * cost``).  Rows whose snap
    produces an identical pickup/dropoff node or an unreachable pair are
    skipped.
    """
    orders = []
    for row in rows:
        pickup = network.nearest_node(float(row["pickup_x"]), float(row["pickup_y"]))
        dropoff = network.nearest_node(float(row["dropoff_x"]), float(row["dropoff_y"]))
        if pickup == dropoff or not network.is_reachable(pickup, dropoff):
            continue
        release = float(row["release_time"])
        shortest = network.travel_time(pickup, dropoff)
        orders.append(
            Order(
                pickup=pickup,
                dropoff=dropoff,
                release_time=release,
                shortest_time=shortest,
                deadline=release + config.deadline_scale * shortest,
                wait_limit=config.watch_window_scale * shortest,
                riders=int(row.get("riders", 1)),
            )
        )
    orders.sort(key=lambda order: order.release_time)
    return orders
