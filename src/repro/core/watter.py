"""The WATTER dispatcher: pool + grouping strategy + worker assignment.

``WatterDispatcher`` wires the pieces of the framework together exactly
as Figure 2 describes:

* arriving orders are inserted into the order pool (the temporal
  shareability graph),
* on every periodic check the pool evaluates each order's current best
  group and asks the configured strategy (online / timeout / expect)
  whether to dispatch,
* a group is only released when the fleet has an idle worker that can
  feasibly serve it; the nearest such worker is booked,
* orders that exceed their wait limit without any usable group are
  rejected.

The three paper variants differ only in the strategy object passed in,
so the class exposes factory helpers ``online`` / ``timeout`` /
``expect`` mirroring WATTER-online, WATTER-timeout and WATTER-expect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import SimulationConfig
from ..model.order import Order, OrderStatus
from ..routing.planner import RoutePlanner
from ..simulation.dispatcher import (
    Dispatcher,
    DispatchResult,
    served_orders_from_group,
)
from ..simulation.fleet import WorkerFleet
from .pool import OrderPool
from .strategies import (
    DispatchStrategy,
    OnlineStrategy,
    ThresholdProvider,
    ThresholdStrategy,
    TimeoutStrategy,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..model.group import Group
    from ..simulation.parallel import ParallelDispatchEngine


class WatterDispatcher(Dispatcher):
    """The full WATTER framework driving a worker fleet.

    Parameters
    ----------
    planner:
        Route planner shared by the pool and the assignment step.
    fleet:
        The worker fleet assignments are booked against.
    strategy:
        Hold-or-dispatch rule (see :mod:`repro.core.strategies`).
    config:
        Simulation parameters (capacity, group size, weights).
    """

    name = "WATTER"

    def __init__(
        self,
        planner: RoutePlanner,
        fleet: WorkerFleet,
        strategy: DispatchStrategy,
        config: SimulationConfig,
    ) -> None:
        self._planner = planner
        self._fleet = fleet
        self._strategy = strategy
        self._config = config
        self._pool = OrderPool(
            planner,
            strategy,
            capacity=config.max_capacity,
            max_group_size=config.max_group_size,
            weights=config.weights,
            check_period=config.check_period,
        )
        self._orders: dict[int, Order] = {}
        self._engine: "ParallelDispatchEngine | None" = None
        self.name = strategy.name

    # ------------------------------------------------------------------
    # factory helpers for the paper's three variants
    # ------------------------------------------------------------------
    @classmethod
    def online(
        cls, planner: RoutePlanner, fleet: WorkerFleet, config: SimulationConfig
    ) -> "WatterDispatcher":
        """WATTER-online: dispatch each order as early as possible."""
        return cls(planner, fleet, OnlineStrategy(), config)

    @classmethod
    def timeout(
        cls, planner: RoutePlanner, fleet: WorkerFleet, config: SimulationConfig
    ) -> "WatterDispatcher":
        """WATTER-timeout: dispatch each order as late as possible."""
        return cls(planner, fleet, TimeoutStrategy(config.check_period), config)

    @classmethod
    def expect(
        cls,
        planner: RoutePlanner,
        fleet: WorkerFleet,
        config: SimulationConfig,
        provider: ThresholdProvider,
    ) -> "WatterDispatcher":
        """WATTER-expect: the threshold-based strategy of Algorithm 2."""
        strategy = ThresholdStrategy(provider, check_period=config.check_period)
        return cls(planner, fleet, strategy, config)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def pool(self) -> OrderPool:
        """The order pool (exposed for state featurisation and tests)."""
        return self._pool

    @property
    def fleet(self) -> WorkerFleet:
        """The worker fleet (exposed for metrics and state featurisation)."""
        return self._fleet

    @property
    def strategy(self) -> DispatchStrategy:
        """The hold-or-dispatch strategy in use."""
        return self._strategy

    def attach_dispatch_engine(
        self, engine: "ParallelDispatchEngine | None"
    ) -> None:
        """Enable the sharded prefetch that precedes each periodic check.

        With an engine attached, :meth:`tick` first answers every
        many-to-one oracle block the check is about to need — each
        pooled order's probe target against the idle workers — across
        the engine's shards, then runs the unchanged serial decision
        loop over the precomputed travel times.  The fleet should be
        attached to the same engine so its searches read the results.
        The order pool's shareability graph is attached too, so
        arrival-time insertion probes read the overlay as well.
        """
        self._engine = engine
        self._pool.attach_dispatch_engine(engine)

    # ------------------------------------------------------------------
    # Dispatcher interface
    # ------------------------------------------------------------------
    def submit(self, order: Order, now: float) -> DispatchResult:
        """Insert a newly released order into the pool."""
        self._orders[order.order_id] = order
        self._pool.insert(order, now)
        return DispatchResult.empty()

    def tick(self, now: float) -> DispatchResult:
        """Run the periodic pool check and book dispatched groups.

        ``can_serve`` runs (and memoises) the full nearest-worker
        search, so the booking in :meth:`_assign_group` reuses the found
        worker instead of searching the fleet a second time.
        """
        self._fleet.release_finished(now)
        if self._engine is not None:
            self._prefetch_check(now)
        decisions = self._pool.check(now, can_assign=self._fleet.can_serve)
        served = []
        rejected = []
        for decision in decisions:
            if decision.dispatch and decision.group is not None:
                records = self._assign_group(decision.group, now)
                if records is None:
                    # The worker disappeared between the feasibility probe
                    # and the booking (can only happen if can_serve raced);
                    # put the members back into the pool.
                    for order in decision.group.orders:
                        self._pool.insert(order, now)
                    continue
                served.extend(records)
            elif decision.reject:
                order = self._orders[decision.order_id]
                order.status = OrderStatus.REJECTED
                rejected.append(order)
        return DispatchResult(served=tuple(served), rejected=tuple(rejected))

    def flush(self, now: float) -> DispatchResult:
        """Reject everything still waiting at the end of the horizon."""
        decisions = self._pool.flush(now)
        rejected = []
        for decision in decisions:
            order = self._orders[decision.order_id]
            order.status = OrderStatus.REJECTED
            rejected.append(order)
        return DispatchResult(rejected=tuple(rejected))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prefetch_check(self, now: float) -> None:
        """Shard this check's worker-approach blocks across the engine.

        The check will probe, per dispatchable group, every idle
        worker's approach leg to the group's first stop; those blocks
        are independent, so they are answered up front across shards.
        The serial loop that follows reads the same values (engine
        overlay in process mode, warmed oracle caches in thread mode)
        and therefore makes the same decisions a serial run makes.
        """
        assert self._engine is not None
        if not self._engine.prefetch_worthwhile:
            # No process pool: prefetching would do the full product's
            # work on this thread where the ring search prunes most of
            # it.  The engine still serves the fleet's queries (as a
            # transparent passthrough), so skipping costs nothing.
            return
        targets = self._pool.probe_targets(now)
        if not targets:
            return
        sources = sorted(
            {worker.location for worker in self._fleet.idle_workers(now)}
        )
        if not sources:
            return
        self._engine.prefetch_many_to_one(sources, targets)

    def _assign_group(self, group: "Group", now: float):
        # Answered from the fleet's (group, now) memo when the idle pool
        # has not changed since the can_serve probe in the pool check.
        worker = self._fleet.find_worker_for(group, now)
        if worker is None:
            return None
        self._fleet.assign(worker, group, now)
        for order in group.orders:
            order.status = OrderStatus.DISPATCHED
        return served_orders_from_group(group, now, worker.worker_id)
