"""The order pooling management algorithm (Algorithm 1).

``OrderPool`` owns the temporal shareability graph and drives its
lifecycle: new orders are inserted as they arrive; expired edges and
groups are pruned; on every periodic check each pooled order's best
group is fetched (O(1), the graph maintains it) and handed to the
dispatch strategy which decides to dispatch or hold; orders whose watch
window elapsed without any feasible group are rejected.

The pool does not know about workers — it emits :class:`PoolDecision`
records and the simulator (or the WATTER dispatcher) performs the
worker assignment, which is how the paper separates Algorithm 1 from
the assignment step (line 11: "assign the g to a worker to serve").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, TYPE_CHECKING

from ..exceptions import MissingOrderError
from ..model.group import Group
from ..model.order import Order
from .shareability import TemporalShareabilityGraph
from .strategies import DispatchStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.planner import RoutePlanner


#: Fraction of an order's direct travel time reserved as slack for the
#: assigned worker's approach leg when deciding how long an unpaired order
#: may keep waiting for a partner.
_APPROACH_RESERVE = 0.3


@dataclass(frozen=True)
class PoolDecision:
    """Outcome of one periodic check for one order.

    Exactly one of the three flags is set:

    * ``dispatch`` — the order's best group should be assigned to a
      worker now (the group is attached),
    * ``reject`` — the order exceeded its wait limit without a usable
      group and leaves the pool unserved,
    * ``hold`` — the order stays in the pool.
    """

    order_id: int
    dispatch: bool = False
    reject: bool = False
    hold: bool = False
    group: Group | None = None


@dataclass
class PoolStatistics:
    """Counters describing the pool's activity, reported by experiments."""

    inserted: int = 0
    dispatched: int = 0
    rejected: int = 0
    expired_edges: int = 0
    checks: int = 0
    held: int = 0
    group_size_histogram: dict[int, int] = field(default_factory=dict)

    def record_group(self, size: int) -> None:
        """Register a dispatched group of the given size."""
        self.group_size_histogram[size] = self.group_size_histogram.get(size, 0) + 1


class OrderPool:
    """Algorithm 1: maintain waiting orders and decide when to release them.

    Parameters
    ----------
    planner:
        Route planner shared with the shareability graph.
    strategy:
        The hold-or-dispatch decision rule (Algorithm 2 or a variant).
    capacity:
        Fleet maximum capacity used for shareability tests.
    max_group_size:
        Largest clique size considered when building groups.
    weights:
        Extra-time trade-off coefficients.
    """

    def __init__(
        self,
        planner: "RoutePlanner",
        strategy: DispatchStrategy,
        capacity: int = 4,
        max_group_size: int = 4,
        weights=None,
        check_period: float = 10.0,
    ) -> None:
        self._graph = TemporalShareabilityGraph(
            planner, capacity=capacity, max_group_size=max_group_size, weights=weights
        )
        self._strategy = strategy
        self._check_period = check_period
        self._stats = PoolStatistics()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TemporalShareabilityGraph:
        """The underlying temporal shareability graph."""
        return self._graph

    @property
    def strategy(self) -> DispatchStrategy:
        """The dispatch strategy consulted on every check."""
        return self._strategy

    def attach_dispatch_engine(self, engine) -> None:
        """Forward the sharded dispatch engine to the shareability graph."""
        self._graph.attach_dispatch_engine(engine)

    @property
    def statistics(self) -> PoolStatistics:
        """Activity counters accumulated so far."""
        return self._stats

    def __len__(self) -> int:
        return len(self._graph)

    def __contains__(self, order_id: int) -> bool:
        return order_id in self._graph

    def pending_orders(self) -> Iterator[Order]:
        """Iterate over the orders currently waiting in the pool."""
        return self._graph.orders()

    def best_group(self, order_id: int) -> Group | None:
        """The order's current best group (``Gb[i]``)."""
        return self._graph.best_group(order_id)

    def probe_targets(self, now: float) -> list[int]:
        """Route-start nodes the next :meth:`check` will probe workers for.

        The shardable face of the periodic check: every pooled order
        whose best group the strategy wants dispatched will ask "is
        there a worker near this group's first stop?", and every
        unpaired order due to dispatch alone will ask the same of its
        pickup.  Collecting those nodes up front (deduplicated, in pool
        order) lets a parallel dispatch engine answer all of the
        check's many-to-one oracle blocks across shards before the
        serial decision loop runs.  The strategy filter mirrors the
        ``wants_dispatch`` gate of :meth:`check` — ``should_dispatch``
        is a pure predicate, so consulting it here costs nothing the
        check would not pay anyway — keeping held groups out of the
        prefetch.  Expired edges are pruned first so the targets match
        what ``check`` will actually examine; the extra
        ``prune_expired`` is idempotent.
        """
        self.prune_expired(now)
        targets: list[int] = []
        seen: set[int] = set()
        for order in self._graph.orders():
            group = self._graph.best_group(order.order_id)
            if group is not None:
                if not self._strategy.should_dispatch(group, now):
                    continue
                node = group.route.start_node
            elif self._dispatch_alone_now(order, now):
                node = order.pickup
            else:
                continue
            if node not in seen:
                seen.add(node)
                targets.append(node)
        return targets

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def insert(self, order: Order, now: float) -> None:
        """Lines 2-4: insert a newly released order into the pool."""
        self._graph.insert_order(order, now)
        self._stats.inserted += 1

    def prune_expired(self, now: float) -> int:
        """Lines 5-6: drop edges (and thereby groups) that expired by ``now``."""
        expired = self._graph.expire_edges(now)
        self._stats.expired_edges += len(expired)
        return len(expired)

    def check(self, now: float, can_assign=None) -> list[PoolDecision]:
        """Lines 7-16: the asynchronous periodic check over all pooled orders.

        Returns one decision per order that leaves the pool (dispatch or
        reject) plus hold decisions for the rest.  Orders dispatched as
        part of another order's group are not re-examined.

        Parameters
        ----------
        now:
            Current system timestamp.
        can_assign:
            Optional callable ``(group, now) -> bool``.  When provided, a
            group the strategy wants to dispatch is only released if the
            callable confirms a suitable worker exists (Algorithm 1
            line 11); otherwise the member orders keep waiting.
        """
        self._stats.checks += 1
        self.prune_expired(now)
        decisions: list[PoolDecision] = []
        processed: set[int] = set()
        for order in list(self._graph.orders()):
            order_id = order.order_id
            if order_id in processed or order_id not in self._graph:
                continue
            group = self._graph.best_group(order_id)
            wants_dispatch = group is not None and self._strategy.should_dispatch(
                group, now
            )
            if wants_dispatch and can_assign is not None:
                wants_dispatch = bool(can_assign(group, now))
            if (
                not wants_dispatch
                and group is None
                and self._dispatch_alone_now(order, now)
            ):
                # The order has no shareable partner and either its watch
                # window elapsed or waiting one more check would make even a
                # solo ride miss its deadline: dispatch it alone if a worker
                # can still serve it ("served when there are suitable
                # workers"), otherwise it keeps waiting until its deadline
                # makes rejection final.
                singleton = self._graph.singleton_group(order_id, now)
                if singleton is not None and (
                    can_assign is None or can_assign(singleton, now)
                ):
                    group = singleton
                    wants_dispatch = True
            if wants_dispatch and group is not None:
                member_ids = list(group.order_ids())
                self._graph.remove_orders(member_ids, now)
                processed.update(member_ids)
                self._stats.dispatched += len(member_ids)
                self._stats.record_group(len(member_ids))
                decisions.append(
                    PoolDecision(order_id=order_id, dispatch=True, group=group)
                )
            elif order.is_expired(now):
                # Even dispatching alone right now would miss the deadline.
                self._graph.remove_order(order_id, now)
                processed.add(order_id)
                self._stats.rejected += 1
                decisions.append(PoolDecision(order_id=order_id, reject=True))
            else:
                self._stats.held += 1
                decisions.append(PoolDecision(order_id=order_id, hold=True))
        return decisions

    def _dispatch_alone_now(self, order: Order, now: float) -> bool:
        """Whether an unpaired order should be dispatched alone at ``now``.

        Waiting longer stops being useful once the order's watch window
        elapsed, or its remaining slack is down to the safety margin
        that must be kept for the assigned worker's approach leg
        (waiting further would turn a servable order into a rejection).
        """
        safety_margin = (
            self._check_period + _APPROACH_RESERVE * order.shortest_time
        )
        return (
            self._strategy.dispatches_unpaired_immediately
            or now >= order.timeout_time
            or order.slack_at(now) < safety_margin
        )

    def remove(self, order_id: int, now: float) -> Order:
        """Force-remove an order (used when an assignment fails downstream)."""
        if order_id not in self._graph:
            raise MissingOrderError(order_id)
        return self._graph.remove_order(order_id, now)

    def flush(self, now: float) -> list[PoolDecision]:
        """Reject every remaining order (end-of-horizon cleanup)."""
        decisions = []
        for order in list(self._graph.orders()):
            self._graph.remove_order(order.order_id, now)
            self._stats.rejected += 1
            decisions.append(PoolDecision(order_id=order.order_id, reject=True))
        return decisions
