"""Distribution fitting and threshold optimisation (Section V, Algorithm 3).

The paper reduces the METRS objective to, per order,

    maximise  h(theta) = (p - theta) * F(theta)      over theta in [0, p]

where ``p`` is the order's rejection penalty and ``F`` is the CDF of the
extra-time distribution.  ``(p - theta)`` is decreasing, ``F`` is
increasing, so ``h`` is unimodal (single interior maximum) and a simple
gradient ascent / golden-section search finds the optimum in a handful
of iterations.

``ThresholdOptimizer`` implements Algorithm 3: fit a GMM to historical
extra times, evaluate its CDF, and return the optimal ``theta(i)`` for
each order's penalty.  It also doubles as a :class:`ThresholdProvider`
so it can plug straight into the threshold-based dispatch strategy.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TYPE_CHECKING

from ..compat import np, require_numpy
from ..exceptions import LearningError
from .gmm import GaussianMixture

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order


def fit_extra_time_distribution(
    extra_times: Sequence[float] | np.ndarray,
    n_components: int = 3,
    seed: int = 0,
) -> GaussianMixture:
    """Fit the GMM of Algorithm 3 (line 1) to historical extra times.

    Negative samples are clipped at zero (extra times are non-negative
    by definition) and the component count is reduced automatically when
    very few samples are available.
    """
    require_numpy("fit_extra_time_distribution (GMM threshold fitting)")
    samples = np.clip(np.asarray(list(extra_times), dtype=float), 0.0, None)
    if samples.size == 0:
        raise LearningError("cannot fit a distribution to zero extra-time samples")
    components = min(n_components, max(1, samples.size // 10), samples.size)
    mixture = GaussianMixture(n_components=components, seed=seed)
    return mixture.fit(samples)


class ThresholdOptimizer:
    """Per-order optimal expected thresholds from a fitted distribution.

    Parameters
    ----------
    mixture:
        Fitted extra-time distribution whose CDF plays the role of ``F``.
    iterations:
        Number of gradient-ascent refinement steps after the coarse grid
        scan.  The objective is unimodal so a few suffice (the paper
        remarks "only a few iterations are required").
    grid_points:
        Size of the coarse grid used to bracket the maximum.
    """

    def __init__(
        self,
        mixture: GaussianMixture,
        iterations: int = 25,
        grid_points: int = 64,
        learning_rate: float = 0.1,
    ) -> None:
        self._mixture = mixture
        self._iterations = max(1, iterations)
        self._grid_points = max(8, grid_points)
        self._learning_rate = learning_rate
        # Thresholds only depend on the penalty; caching on a 1-second
        # rounding keeps the online decision loop O(1) per order.
        self._cache: dict[float, float] = {}

    @property
    def mixture(self) -> GaussianMixture:
        """The fitted extra-time distribution."""
        return self._mixture

    # ------------------------------------------------------------------
    # the reduced objective (Equation 8)
    # ------------------------------------------------------------------
    def objective(self, theta: float, penalty: float) -> float:
        """``(p - theta) * F(theta)``: the gain term maximised by Equation 8."""
        return (penalty - theta) * float(self._mixture.cdf(theta))

    def expected_loss(self, theta: float, penalty: float) -> float:
        """``p - (p - theta) F(theta)``: the per-order expected loss minimised."""
        return penalty - self.objective(theta, penalty)

    # ------------------------------------------------------------------
    # optimisation (Algorithm 3, lines 3-6)
    # ------------------------------------------------------------------
    def optimal_threshold(self, penalty: float) -> float:
        """The ``theta`` in ``[0, p]`` maximising the reduced objective.

        A coarse grid scan brackets the maximum (the objective is
        unimodal but can be flat near 0 for small penalties), then
        projected gradient ascent with a numerical derivative refines it.
        """
        if penalty <= 0:
            return 0.0
        grid = np.linspace(0.0, penalty, self._grid_points)
        values = [(self.objective(theta, penalty), theta) for theta in grid]
        _, best = max(values)
        theta = float(best)
        step = self._learning_rate * penalty
        eps = max(penalty * 1e-4, 1e-6)
        for _ in range(self._iterations):
            gradient = (
                self.objective(theta + eps, penalty)
                - self.objective(theta - eps, penalty)
            ) / (2.0 * eps)
            candidate = theta + step * gradient / max(penalty, 1e-9)
            candidate = min(max(candidate, 0.0), penalty)
            if self.objective(candidate, penalty) >= self.objective(theta, penalty):
                theta = candidate
            else:
                step *= 0.5
        return theta

    def optimal_thresholds(self, orders: Iterable["Order"]) -> dict[int, float]:
        """Algorithm 3: the optimal threshold for every order, keyed by id."""
        return {
            order.order_id: self.optimal_threshold(order.penalty) for order in orders
        }

    # ------------------------------------------------------------------
    # ThresholdProvider protocol
    # ------------------------------------------------------------------
    def threshold(self, order: "Order", now: float) -> float:
        """Provide Algorithm 2 with this order's distribution-fitted threshold."""
        key = round(order.penalty, 0)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.optimal_threshold(key)
            self._cache[key] = cached
        return cached
