"""The temporal shareability graph (Definition 8, Section IV-A).

Orders are nodes; an edge ``(o_i, o_j, tau_e)`` states that the two
orders can be served by one feasible route until the expiration time
``tau_e``.  Shareable groups of size ``k`` correspond to ``k``-cliques
(Theorem IV.1 gives the "only if" direction: a feasible route implies a
clique, so enumerating cliques is a complete — though not sound —
candidate generator; every clique candidate is then validated by the
route planner before it is turned into a group).

The graph supports the four update events of Algorithm 1: order
arrival, order departure, edge expiration and group expiration.  It also
maintains, per order, the *best group* (smallest average extra time)
among the validated cliques containing the order — the map ``Gb`` the
pool reads in O(1) per decision.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, TYPE_CHECKING

from ..exceptions import DuplicateOrderError, MissingOrderError
from ..model.group import Group
from ..model.order import Order

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.planner import RoutePlanner

#: Largest number of neighbours combined when enumerating cliques around
#: one order; bounds the per-update cost in dense demand hot spots.
_NEIGHBOUR_CAP = 8


@dataclass(frozen=True)
class ShareabilityEdge:
    """An undirected shareability edge with its expiration timestamp."""

    first: int
    second: int
    expires_at: float

    def key(self) -> tuple[int, int]:
        """Canonical (sorted) order-id pair identifying the edge."""
        return (self.first, self.second) if self.first < self.second else (
            self.second,
            self.first,
        )


class TemporalShareabilityGraph:
    """Dynamic graph of pairwise shareability relations between pooled orders.

    Parameters
    ----------
    planner:
        Route planner used to validate pairwise and group routes.
    capacity:
        Vehicle capacity assumed when testing shareability.  The paper
        tests shareability against the fleet's maximum capacity and
        re-validates against the concrete worker at assignment time.
    max_group_size:
        Upper bound on the clique sizes enumerated when searching for
        the best group of an order.
    weights:
        Extra-time trade-off coefficients forwarded to the groups.
    """

    def __init__(
        self,
        planner: "RoutePlanner",
        capacity: int,
        max_group_size: int = 4,
        weights=None,
    ) -> None:
        self._planner = planner
        self._capacity = capacity
        self._max_group_size = max(1, max_group_size)
        self._weights = weights
        self._orders: dict[int, Order] = {}
        self._adjacency: dict[int, dict[int, float]] = {}
        self._best_groups: dict[int, Group | None] = {}
        self._engine = None

    def attach_dispatch_engine(self, engine) -> None:
        """Route the insertion-time batched probes through ``engine``.

        With a :class:`~repro.simulation.parallel.ParallelDispatchEngine`
        attached, :meth:`_shareable_candidates` asks the engine instead
        of the network directly — in process mode that serves pickup
        gaps already prefetched into the overlay by the periodic check
        (and retains fresh ones), so arrival-time insertion shares the
        same sharded answer store the check warms.  Detach with
        ``None``; answers are identical either way.
        """
        self._engine = engine

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._orders)

    def __contains__(self, order_id: int) -> bool:
        return order_id in self._orders

    def orders(self) -> Iterator[Order]:
        """Iterate over the pooled orders."""
        return iter(self._orders.values())

    def order(self, order_id: int) -> Order:
        """Return a pooled order by id."""
        try:
            return self._orders[order_id]
        except KeyError as exc:
            raise MissingOrderError(order_id) from exc

    def neighbours(self, order_id: int) -> dict[int, float]:
        """Adjacent order ids mapped to the edge expiration time."""
        if order_id not in self._orders:
            raise MissingOrderError(order_id)
        return dict(self._adjacency[order_id])

    def edges(self) -> Iterator[ShareabilityEdge]:
        """Iterate over the undirected edges (each reported once)."""
        for first, neighbours in self._adjacency.items():
            for second, expires_at in neighbours.items():
                if first < second:
                    yield ShareabilityEdge(first, second, expires_at)

    def number_of_edges(self) -> int:
        """Number of undirected shareability edges."""
        return sum(len(neighbours) for neighbours in self._adjacency.values()) // 2

    def best_group(self, order_id: int) -> Group | None:
        """Current best *shared* group of an order (``Gb[i]`` in Algorithm 1).

        Only groups with at least two members are considered: a group is
        what an order waits in the pool *for*.  An order with no
        shareable partner has no best group (``None``) and is eventually
        dispatched alone — see :meth:`singleton_group` — or rejected.
        """
        if order_id not in self._orders:
            raise MissingOrderError(order_id)
        return self._best_groups.get(order_id)

    def singleton_group(self, order_id: int, now: float) -> Group | None:
        """A feasible single-order group, used for timeout dispatching.

        Returns ``None`` when even riding alone can no longer meet the
        order's deadline.
        """
        order = self.order(order_id)
        return self._singleton_group(order, now)

    # ------------------------------------------------------------------
    # update events (Section IV-B: arrival, departure, expirations)
    # ------------------------------------------------------------------
    def insert_order(self, order: Order, now: float) -> None:
        """Handle order arrival: add the node, discover edges, refresh best groups."""
        if order.order_id in self._orders:
            raise DuplicateOrderError(order.order_id)
        self._orders[order.order_id] = order
        self._adjacency[order.order_id] = {}
        for other in self._shareable_candidates(order, now):
            planned = self._planner.can_share(order, other, self._capacity, now)
            if planned is None:
                continue
            group = Group(
                orders=(order, other),
                route=planned.route,
                created_at=now,
                **self._group_kwargs(),
            )
            expires_at = group.expiration_time(now)
            if expires_at <= now:
                continue
            self._adjacency[order.order_id][other.order_id] = expires_at
            self._adjacency[other.order_id][order.order_id] = expires_at
        self._refresh_best_group(order.order_id, now)
        for neighbour_id in self._adjacency[order.order_id]:
            self._refresh_best_group(neighbour_id, now)

    def remove_order(self, order_id: int, now: float) -> Order:
        """Handle order departure (dispatch or rejection)."""
        if order_id not in self._orders:
            raise MissingOrderError(order_id)
        order = self._orders.pop(order_id)
        neighbours = self._adjacency.pop(order_id, {})
        for neighbour_id in neighbours:
            self._adjacency[neighbour_id].pop(order_id, None)
        self._best_groups.pop(order_id, None)
        # The departed order may have been part of its neighbours' best
        # groups; recompute them.
        for neighbour_id in neighbours:
            if neighbour_id in self._orders:
                self._refresh_best_group(neighbour_id, now)
        return order

    def remove_orders(self, order_ids: Iterable[int], now: float) -> list[Order]:
        """Remove several orders (e.g. a whole dispatched group) at once."""
        return [self.remove_order(order_id, now) for order_id in list(order_ids)]

    def expire_edges(self, now: float) -> list[ShareabilityEdge]:
        """Drop edges whose expiration time has passed; return what was dropped."""
        expired: list[ShareabilityEdge] = []
        for first in list(self._adjacency):
            for second, expires_at in list(self._adjacency[first].items()):
                if expires_at <= now and first < second:
                    expired.append(ShareabilityEdge(first, second, expires_at))
        touched: set[int] = set()
        for edge in expired:
            self._adjacency[edge.first].pop(edge.second, None)
            self._adjacency[edge.second].pop(edge.first, None)
            touched.update((edge.first, edge.second))
        for order_id in touched:
            if order_id in self._orders:
                self._refresh_best_group(order_id, now)
        return expired

    def refresh_all_best_groups(self, now: float) -> None:
        """Recompute every order's best group (used after bulk updates)."""
        for order_id in self._orders:
            self._refresh_best_group(order_id, now)

    # ------------------------------------------------------------------
    # clique enumeration
    # ------------------------------------------------------------------
    def cliques_containing(self, order_id: int, now: float) -> Iterator[tuple[int, ...]]:
        """Yield id-tuples of cliques (size >= 2) that contain ``order_id``.

        Enumeration is bounded by ``max_group_size`` and, to keep the
        per-update cost bounded in dense pools, only the
        ``_NEIGHBOUR_CAP`` neighbours with the earliest edge expiration
        (the most urgent sharing opportunities) are combined into larger
        cliques.  Only edges that have not expired at ``now``
        participate.
        """
        if order_id not in self._orders:
            raise MissingOrderError(order_id)
        alive = [
            (expires_at, other)
            for other, expires_at in self._adjacency[order_id].items()
            if expires_at > now
        ]
        alive.sort()
        alive_neighbours = [other for _, other in alive[:_NEIGHBOUR_CAP]]
        for size in range(1, self._max_group_size):
            for combo in itertools.combinations(alive_neighbours, size):
                candidate = (order_id,) + tuple(sorted(combo))
                if self._is_clique(candidate, now):
                    yield candidate

    def _shareable_candidates(self, order: Order, now: float) -> list[Order]:
        """Pooled orders that pass the cheap pruning test against ``order``.

        Two orders can only share usefully if one pickup lies within the
        other's detour budget; orders whose pickups are farther apart
        than the larger of the two remaining slacks cannot form a route
        that saves any travel, so the expensive planner call is skipped.
        The shareability graph is a candidate generator (Theorem IV.1 is
        a necessary condition only), so pruning marginal pairs here does
        not affect correctness — every surviving candidate group is
        still validated by the route planner.

        The pickup gaps of every slack-feasible partner are fetched with
        two batched ``travel_times_many`` calls (new pickup -> partner
        pickups and back), which lets precomputing oracle backends
        answer the whole arrival in one block instead of 2(n-1) scalar
        queries.
        """
        slack_new = order.deadline - now - order.shortest_time
        if slack_new < 0:
            return []
        partners: list[tuple[Order, float]] = []
        for other in self._orders.values():
            if other.order_id == order.order_id:
                continue
            slack_other = other.deadline - now - other.shortest_time
            if slack_other < 0:
                continue
            partners.append((other, max(slack_new, slack_other)))
        if not partners:
            return []
        # The engine answers from its overlay (process mode) or
        # delegates to the network — same values, same keys.
        backend = (
            self._engine if self._engine is not None else self._planner.network
        )
        pickups = [other.pickup for other, _ in partners]
        outward = backend.travel_times_many([order.pickup], pickups)
        inward = backend.travel_times_many(pickups, [order.pickup])
        inf = float("inf")
        candidates = []
        for other, budget in partners:
            pickup_gap = min(
                outward.get((order.pickup, other.pickup), inf),
                inward.get((other.pickup, order.pickup), inf),
            )
            if pickup_gap <= budget:
                candidates.append(other)
        return candidates

    def _is_clique(self, order_ids: tuple[int, ...], now: float) -> bool:
        for first, second in itertools.combinations(order_ids, 2):
            expires_at = self._adjacency.get(first, {}).get(second)
            if expires_at is None or expires_at <= now:
                return False
        return True

    # ------------------------------------------------------------------
    # best-group maintenance
    # ------------------------------------------------------------------
    def _refresh_best_group(self, order_id: int, now: float) -> None:
        best: Group | None = None
        for clique in self.cliques_containing(order_id, now):
            members = [self._orders[member_id] for member_id in clique]
            planned = self._planner.try_plan(members, self._capacity, now)
            if planned is None:
                continue
            group = Group(
                orders=tuple(members),
                route=planned.route,
                created_at=now,
                **self._group_kwargs(),
            )
            if group.expiration_time(now) <= now:
                continue
            best = Group.better_of(best, group, now)
        self._best_groups[order_id] = best

    def _singleton_group(self, order: Order, now: float) -> Group | None:
        planned = self._planner.try_plan([order], self._capacity, now)
        if planned is None:
            return None
        group = Group(
            orders=(order,),
            route=planned.route,
            created_at=now,
            **self._group_kwargs(),
        )
        if group.expiration_time(now) <= now:
            return None
        return group

    def _group_kwargs(self) -> dict:
        if self._weights is None:
            return {}
        return {"weights": self._weights}
