"""Dispatch decision strategies (Section IV-B and Algorithm 2).

A strategy answers one question: *given an order's current best group,
should the group be dispatched now or held for a potentially better
group later?*  The paper discusses three answers:

* ``OnlineStrategy`` — dispatch as early as possible (WATTER-online),
* ``TimeoutStrategy`` — dispatch as late as possible, i.e. only when
  some member is about to exceed its watch window (WATTER-timeout),
* ``ThresholdStrategy`` — Algorithm 2: dispatch when the group's
  average extra time is at most the members' average expected threshold
  (WATTER-expect).  The per-order thresholds come from a pluggable
  :class:`ThresholdProvider` — either the GMM-fitted constant of
  Section V or the learned value function of Section VI.
"""

from __future__ import annotations

import abc
from typing import Protocol, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..model.group import Group
    from ..model.order import Order


class ThresholdProvider(Protocol):
    """Anything that can produce the expected extra-time threshold of an order."""

    def threshold(self, order: "Order", now: float) -> float:
        """Expected extra-time threshold ``theta(i)`` at decision time ``now``."""
        ...


class ConstantThresholdProvider:
    """Threshold provider returning one global constant.

    A degenerate provider used for testing and for the pure
    distribution-fitting variant where every order shares the optimum of
    Equation 8 under a single fitted distribution.
    """

    def __init__(self, value: float) -> None:
        self._value = float(value)

    def threshold(self, order: "Order", now: float) -> float:
        """Return the constant threshold regardless of the order or time."""
        return self._value


class DispatchStrategy(abc.ABC):
    """Base class of hold-or-dispatch decision rules."""

    name: str = "base"

    #: Whether orders with no shareable partner should be dispatched alone
    #: right away instead of waiting out their watch window.  Only the
    #: online strategy (answer every order as early as possible) does so;
    #: the pooling strategies hold unpaired orders hoping for a partner.
    dispatches_unpaired_immediately: bool = False

    @abc.abstractmethod
    def should_dispatch(self, group: "Group", now: float) -> bool:
        """Whether to dispatch ``group`` at time ``now`` (True) or hold it."""

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return self.name


class OnlineStrategy(DispatchStrategy):
    """Dispatch every group as soon as it exists (WATTER-online)."""

    name = "WATTER-online"
    dispatches_unpaired_immediately = True

    def should_dispatch(self, group: "Group", now: float) -> bool:
        """Always dispatch: the earliest possible response for every order."""
        return True


class TimeoutStrategy(DispatchStrategy):
    """Hold every group until a member is about to time out (WATTER-timeout).

    A group is dispatched only when the current time has reached the
    earliest watch-window expiry among its members, or when waiting one
    more check period would make the group infeasible.
    """

    name = "WATTER-timeout"

    def __init__(self, check_period: float = 10.0) -> None:
        self._check_period = check_period

    def should_dispatch(self, group: "Group", now: float) -> bool:
        """Dispatch when a member times out or the group is about to expire."""
        if now >= group.earliest_timeout():
            return True
        # If holding for one more periodic check would push the group past
        # its expiration, dispatch now rather than lose it.  The margin
        # reserves a share of the direct trip time for the worker's
        # approach leg, which the expiration time of Equation 3 excludes.
        reserve = 0.3 * min(order.shortest_time for order in group.orders)
        return now + self._check_period + reserve >= group.expiration_time(now)


class ThresholdStrategy(DispatchStrategy):
    """Algorithm 2: the average extra-time threshold-based grouping strategy."""

    name = "WATTER-expect"

    def __init__(self, provider: ThresholdProvider, check_period: float = 10.0) -> None:
        self._provider = provider
        self._check_period = check_period

    @property
    def provider(self) -> ThresholdProvider:
        """The threshold provider consulted for each member order."""
        return self._provider

    def should_dispatch(self, group: "Group", now: float) -> bool:
        """Dispatch when timed out, about to expire, or ``mean t_e <= mean theta``.

        Mirrors Algorithm 2: line 1-3 filter orders past their watch
        window (they are dispatched as soon as a group exists), lines
        4-6 compare the group's average extra time with the members'
        average expected threshold.  In addition, a group that would no
        longer be feasible by the next periodic check is dispatched now
        — holding it any longer can only turn served orders into
        rejections, which the objective penalises harder than any
        threshold miss.
        """
        if now >= group.earliest_timeout():
            return True
        if self._about_to_expire(group, now):
            return True
        average_extra = group.average_extra_time(now)
        average_threshold = sum(
            self._provider.threshold(order, now) for order in group.orders
        ) / len(group.orders)
        return average_extra <= average_threshold

    def _about_to_expire(self, group: "Group", now: float) -> bool:
        """Whether holding past the next check risks losing the group.

        The margin reserves, on top of one check period, a fraction of
        the members' direct travel time for the assigned worker's
        approach leg (the group expiration time of Equation 3 does not
        include it).
        """
        reserve = 0.3 * min(order.shortest_time for order in group.orders)
        return now + self._check_period + reserve >= group.expiration_time(now)
