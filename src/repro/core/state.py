"""Spatio-temporal MDP state featurisation (Section VI-A).

Each pooled order is an MDP agent whose state combines:

* **basic features** — the region (grid cell) of the pickup and dropoff
  locations as one-hot vectors ``s_L``, plus the release time slot and
  the waiting duration in slots as a two-dimensional vector ``s_T``,
* **environmental features** — the current demand distribution ``s_O``
  (counts of waiting orders' pickups and dropoffs per cell) and supply
  distribution ``s_W`` (counts of idle workers per cell), both
  normalised so the network does not have to learn the fleet size.

``StateEncoder`` turns an (order, pool snapshot, fleet snapshot, time)
tuple into a flat numpy vector; its ``dimension`` is what the value
network's input layer is sized to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, TYPE_CHECKING

from ..compat import np, require_numpy
from ..network.grid import GridIndex

if TYPE_CHECKING:  # pragma: no cover
    from ..model.order import Order


@dataclass(frozen=True)
class SpatioTemporalState:
    """A featurised MDP state plus the raw indices used to build it."""

    vector: np.ndarray
    pickup_cell: int
    dropoff_cell: int
    time_slot: int
    waited_slots: int

    @property
    def dimension(self) -> int:
        """Length of the feature vector."""
        return int(self.vector.shape[0])


class StateEncoder:
    """Builds the state vectors ``s_t = [s_L, s_T, s_O, s_W]``.

    Parameters
    ----------
    grid:
        Spatial grid index over the road network (the paper's n x n
        region partition).
    time_slot:
        Width of a decision time slot ``delta_t`` in seconds.
    horizon:
        Length of the simulated period, used to normalise the time slot
        index into ``[0, 1]``.
    """

    def __init__(self, grid: GridIndex, time_slot: float, horizon: float) -> None:
        require_numpy("StateEncoder (MDP state featurisation)")
        self._grid = grid
        self._time_slot = time_slot
        self._horizon = max(horizon, time_slot)

    @property
    def grid(self) -> GridIndex:
        """The spatial grid index used for region features."""
        return self._grid

    @property
    def dimension(self) -> int:
        """Feature dimension: 2 one-hots + 2 scalars + 3 densities."""
        cells = self._grid.num_cells
        return 2 * cells + 2 + 3 * cells

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(
        self,
        order: "Order",
        now: float,
        waiting_pickups: Iterable[int] = (),
        waiting_dropoffs: Iterable[int] = (),
        idle_worker_locations: Iterable[int] = (),
    ) -> SpatioTemporalState:
        """Featurise one order's state at time ``now``.

        Parameters
        ----------
        order:
            The agent's order.
        now:
            Current timestamp.
        waiting_pickups, waiting_dropoffs:
            Pickup / dropoff nodes of all orders currently waiting in the
            pool (the demand distribution ``s_O``).
        idle_worker_locations:
            Locations of currently idle workers (the supply
            distribution ``s_W``).
        """
        cells = self._grid.num_cells
        pickup_cell = self._grid.cell_of(order.pickup)
        dropoff_cell = self._grid.cell_of(order.dropoff)

        location_features = np.zeros(2 * cells)
        location_features[pickup_cell] = 1.0
        location_features[cells + dropoff_cell] = 1.0

        time_slot_index = int(order.release_time // self._time_slot)
        waited_slots = max(int((now - order.release_time) // self._time_slot), 0)
        max_slots = max(int(self._horizon // self._time_slot), 1)
        time_features = np.array(
            [time_slot_index / max_slots, waited_slots / max_slots]
        )

        demand_pickup = self._normalised_density(waiting_pickups)
        demand_dropoff = self._normalised_density(waiting_dropoffs)
        supply = self._normalised_density(idle_worker_locations)

        vector = np.concatenate(
            [location_features, time_features, demand_pickup, demand_dropoff, supply]
        )
        return SpatioTemporalState(
            vector=vector,
            pickup_cell=pickup_cell,
            dropoff_cell=dropoff_cell,
            time_slot=time_slot_index,
            waited_slots=waited_slots,
        )

    def encode_batch(
        self,
        orders: Sequence["Order"],
        now: float,
        waiting_pickups: Iterable[int] = (),
        waiting_dropoffs: Iterable[int] = (),
        idle_worker_locations: Iterable[int] = (),
    ) -> np.ndarray:
        """Stack the encodings of several orders into a matrix."""
        pickups = list(waiting_pickups)
        dropoffs = list(waiting_dropoffs)
        workers = list(idle_worker_locations)
        states = [
            self.encode(order, now, pickups, dropoffs, workers).vector
            for order in orders
        ]
        if not states:
            return np.empty((0, self.dimension))
        return np.vstack(states)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _normalised_density(self, nodes: Iterable[int]) -> np.ndarray:
        counts = np.asarray(self._grid.density(nodes), dtype=float)
        total = counts.sum()
        if total > 0:
            counts = counts / total
        return counts
