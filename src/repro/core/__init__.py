"""The WATTER framework: pooling, grouping strategies, thresholds, MDP state."""

from .shareability import TemporalShareabilityGraph, ShareabilityEdge
from .pool import OrderPool, PoolDecision
from .strategies import (
    DispatchStrategy,
    OnlineStrategy,
    TimeoutStrategy,
    ThresholdStrategy,
    ThresholdProvider,
    ConstantThresholdProvider,
)
from .gmm import GaussianMixture
from .threshold import ThresholdOptimizer, fit_extra_time_distribution
from .state import StateEncoder, SpatioTemporalState
from .watter import WatterDispatcher

__all__ = [
    "TemporalShareabilityGraph",
    "ShareabilityEdge",
    "OrderPool",
    "PoolDecision",
    "DispatchStrategy",
    "OnlineStrategy",
    "TimeoutStrategy",
    "ThresholdStrategy",
    "ThresholdProvider",
    "ConstantThresholdProvider",
    "GaussianMixture",
    "ThresholdOptimizer",
    "fit_extra_time_distribution",
    "StateEncoder",
    "SpatioTemporalState",
    "WatterDispatcher",
]
