"""Gaussian Mixture Model fitted with Expectation-Maximisation.

Section V-C of the paper models the extra-time distribution as a GMM
because the extra time is influenced by several latent factors (trip
length, demand density, time of day), each contributing its own mode.
The CDF of the fitted mixture is the ``F(theta)`` of Equation 8.

Only the 1-D case is needed, so the implementation is self-contained
numpy (no scikit-learn): EM with k components, responsibilities,
log-likelihood monitoring and a numerically safe CDF via ``erf``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..compat import np, require_numpy
from ..exceptions import LearningError

_MIN_VARIANCE = 1e-6


@dataclass(frozen=True)
class GaussianComponent:
    """One mixture component: weight, mean and variance."""

    weight: float
    mean: float
    variance: float


class GaussianMixture:
    """A one-dimensional Gaussian mixture fitted by EM.

    Parameters
    ----------
    n_components:
        Number of Gaussian components.
    max_iterations:
        EM iteration cap.
    tolerance:
        Relative log-likelihood improvement below which EM stops.
    seed:
        Seed for the k-means-style initialisation.
    """

    def __init__(
        self,
        n_components: int = 3,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        require_numpy("GaussianMixture (GMM threshold fitting)")
        if n_components < 1:
            raise LearningError("a mixture needs at least one component")
        self._n_components = n_components
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._seed = seed
        self._components: list[GaussianComponent] = []
        self._log_likelihood_history: list[float] = []

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, samples: np.ndarray | list[float]) -> "GaussianMixture":
        """Fit the mixture to 1-D samples and return ``self``.

        Raises
        ------
        LearningError
            If fewer samples than components are provided.
        """
        data = np.asarray(samples, dtype=float).ravel()
        if data.size < self._n_components:
            raise LearningError(
                f"need at least {self._n_components} samples, got {data.size}"
            )
        rng = np.random.default_rng(self._seed)
        means = np.quantile(data, np.linspace(0.1, 0.9, self._n_components))
        means = means + rng.normal(0.0, 1e-3, size=self._n_components)
        variances = np.full(self._n_components, max(data.var(), _MIN_VARIANCE))
        weights = np.full(self._n_components, 1.0 / self._n_components)

        previous_ll = -np.inf
        self._log_likelihood_history = []
        for _ in range(self._max_iterations):
            # E step: responsibilities.
            densities = self._component_densities(data, weights, means, variances)
            totals = densities.sum(axis=1, keepdims=True)
            totals = np.maximum(totals, 1e-300)
            responsibilities = densities / totals
            log_likelihood = float(np.log(totals).sum())
            self._log_likelihood_history.append(log_likelihood)

            # M step: update parameters.
            component_mass = responsibilities.sum(axis=0)
            component_mass = np.maximum(component_mass, 1e-12)
            weights = component_mass / data.size
            means = (responsibilities * data[:, None]).sum(axis=0) / component_mass
            centred = data[:, None] - means[None, :]
            variances = (responsibilities * centred**2).sum(axis=0) / component_mass
            variances = np.maximum(variances, _MIN_VARIANCE)

            if abs(log_likelihood - previous_ll) < self._tolerance * (
                1.0 + abs(previous_ll)
            ):
                break
            previous_ll = log_likelihood

        self._components = [
            GaussianComponent(float(w), float(m), float(v))
            for w, m, v in zip(weights, means, variances)
        ]
        return self

    @property
    def components(self) -> list[GaussianComponent]:
        """The fitted components (empty before :meth:`fit`)."""
        return list(self._components)

    @property
    def log_likelihood_history(self) -> list[float]:
        """Per-iteration log-likelihood trace of the last fit."""
        return list(self._log_likelihood_history)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def pdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Probability density of the mixture at ``x``."""
        self._require_fitted()
        values = np.asarray(x, dtype=float)
        result = np.zeros_like(values, dtype=float)
        for component in self._components:
            result = result + component.weight * _normal_pdf(
                values, component.mean, component.variance
            )
        return float(result) if np.isscalar(x) else result

    def cdf(self, x: float | np.ndarray) -> np.ndarray | float:
        """Cumulative distribution of the mixture at ``x`` (the paper's ``F``)."""
        self._require_fitted()
        values = np.asarray(x, dtype=float)
        result = np.zeros_like(values, dtype=float)
        for component in self._components:
            std = math.sqrt(component.variance)
            z = (values - component.mean) / (std * math.sqrt(2.0))
            result = result + component.weight * 0.5 * (1.0 + _erf(z))
        result = np.clip(result, 0.0, 1.0)
        return float(result) if np.isscalar(x) else result

    def sample(self, size: int, seed: int = 0) -> np.ndarray:
        """Draw samples from the fitted mixture (for tests and simulations)."""
        self._require_fitted()
        rng = np.random.default_rng(seed)
        weights = np.array([c.weight for c in self._components])
        weights = weights / weights.sum()
        choices = rng.choice(len(self._components), size=size, p=weights)
        output = np.empty(size, dtype=float)
        for index, component in enumerate(self._components):
            mask = choices == index
            output[mask] = rng.normal(
                component.mean, math.sqrt(component.variance), size=int(mask.sum())
            )
        return output

    def mean(self) -> float:
        """Mean of the mixture."""
        self._require_fitted()
        return sum(c.weight * c.mean for c in self._components)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self._components:
            raise LearningError("the mixture has not been fitted yet")

    @staticmethod
    def _component_densities(
        data: np.ndarray, weights: np.ndarray, means: np.ndarray, variances: np.ndarray
    ) -> np.ndarray:
        densities = np.empty((data.size, weights.size))
        for index in range(weights.size):
            densities[:, index] = weights[index] * _normal_pdf(
                data, means[index], variances[index]
            )
        return densities


def _normal_pdf(x: np.ndarray, mean: float, variance: float) -> np.ndarray:
    coefficient = 1.0 / math.sqrt(2.0 * math.pi * variance)
    return coefficient * np.exp(-((x - mean) ** 2) / (2.0 * variance))


def _erf(x: np.ndarray) -> np.ndarray:
    """Vectorised error function (scipy-free)."""
    vec = np.vectorize(math.erf)
    return vec(x)
