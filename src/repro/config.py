"""Configuration dataclasses shared across the library.

The defaults mirror Table III of the paper ("Experimental Settings"),
scaled down so a full sweep finishes on a laptop-class machine:

* the paper's default workload is 100K orders (NYC) / 50K (CDC, XIA)
  served by 5K workers over one day; the reproduction defaults to a few
  thousand orders over a few simulated hours on a synthetic network,
* the deadline scale ``tau`` and the watch-window scale ``eta`` keep the
  paper's values because they are dimensionless multipliers of the
  shortest travel time,
* the extra-time trade-off coefficients ``alpha`` and ``beta`` default
  to 1 as in Definition 6,
* the rejection penalty is ``10 x cost(pickup, dropoff)`` following the
  Unified Cost setup the paper borrows from [9].
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .exceptions import ConfigurationError

_DEPRECATION_MESSAGE = (
    "constructing SimulationConfig directly is deprecated as a public "
    "entry point: describe the run with repro.api.ScenarioSpec and execute "
    "it with repro.api.Session (SimulationConfig remains the validated "
    "internal parameter carrier and keeps working unchanged)"
)


def _constructed_externally() -> bool:
    """Whether the nearest relevant caller frame lives outside the library.

    The facade (``repro.api``) and every internal helper construct
    ``SimulationConfig`` freely; only *direct* construction from user
    code should raise the deprecation pointer at ``repro.api``.  Frames
    belonging to :mod:`dataclasses`/:mod:`copy` (``replace`` and the
    generated ``__init__``) and to this module are skipped so
    ``with_overrides`` attributes the construction to *its* caller.
    """
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - no caller frame at all
        return False
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name in ("dataclasses", "copy", "repro.config"):
            frame = frame.f_back
            continue
        return not (name == "repro" or name.startswith("repro."))
    return False


@dataclass(frozen=True)
class ExtraTimeWeights:
    """Trade-off coefficients of Definition 6: ``t_e = alpha*t_d + beta*t_r``."""

    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError("extra-time weights must be non-negative")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a single simulated day of dispatching.

    Attributes
    ----------
    num_orders:
        Number of ride requests released during the horizon (paper: n).
    num_workers:
        Number of vehicles available (paper: m).
    deadline_scale:
        ``tau``: the drop-off deadline of an order is
        ``release + tau * shortest_travel_time``.
    watch_window_scale:
        ``eta``: the preferred waiting limit of an order is
        ``eta * shortest_travel_time`` (Section VII-A).
    max_capacity:
        ``Kw``: vehicle capacities are sampled uniformly from
        ``[2, max_capacity]``.
    check_period:
        Period (seconds) of the asynchronous pool check of Algorithm 1.
    time_slot:
        ``delta_t`` (seconds): width of the MDP decision time slot.
    grid_size:
        The city is divided into ``grid_size x grid_size`` cells for the
        spatial index and the MDP state features.
    penalty_factor:
        Unified-cost rejection penalty multiplier (paper uses 10).
    horizon:
        Length of the simulated period in seconds.
    weights:
        Extra-time trade-off coefficients (alpha, beta).
    max_group_size:
        Upper bound on the number of orders grouped together (a k-clique
        of size ``k`` corresponds to ``k`` riders when every order holds
        one passenger, Section VII-A).
    seed:
        Seed for every random decision made during the simulation.
    oracle_backend:
        Name of the distance-oracle backend answering shortest-path
        queries (``"lazy"``, ``"landmark"``, ``"matrix"``, ``"ch"``, or
        any name registered via ``repro.network.register_oracle``).
    oracle_cache_size:
        LRU bound of the lazy backend's per-source Dijkstra cache (the
        ``ch`` backend uses it for its per-target bucket cache).
    oracle_landmarks:
        Number of ALT landmarks precomputed by the landmark backend.
    oracle_witness_hops:
        Hop limit of the witness searches run while the ``ch`` backend
        contracts the graph (higher = fewer shortcuts, slower setup).
    oracle_cache_dir:
        Directory for persisted oracle preprocessing (``None`` = no
        persistence).  The ``ch`` backend stores its contraction order
        and shortcuts there keyed by a stable graph hash, so a warm
        directory lets a fresh process skip the contraction pass.
    oracle_kernel:
        Inner-loop implementation of the ``ch`` and ``matrix`` backends:
        ``"csr"`` runs the vectorised numpy kernels (level-grouped PHAST
        sweeps over flat CSR arrays, array bucket scans, bulk row
        refresh), ``"dict"`` the pure-Python originals, ``"auto"``
        (default) picks csr when numpy is importable and dict otherwise.
        Both kernels produce identical answers (property-tested); lazy
        and landmark always use their dict paths.
    oracle_coarsen_levels / oracle_coarsen_alpha / oracle_coarsen_beta:
        Multilevel-coarsening knobs of the ``overlay`` backend (and of
        the ``ch`` backend's coarsening-derived contraction order):
        number of matching passes and the merge-cost weights of
        ``D_ij = alpha*tau_ij + beta*temporal_slack``.
    oracle_coarsen_error_bound:
        Certified relative error ceiling of the ``overlay`` backend's
        estimated answers; queries whose certified gap exceeds it are
        refined exactly.
    oracle_coarsen_refine:
        ``True`` makes the ``overlay`` backend answer every query with
        the exact (pruned-Dijkstra) distance — same answers as Dijkstra,
        city-scale readiness cost.
    oracle_contraction_order:
        Node-ordering strategy of the ``ch`` backend's contraction:
        ``"edge_difference"`` (classic lazy-heap priority, default) or
        ``"coarsening"`` (absorbed-first order derived from the
        multilevel hierarchy; queries stay exact either way).
    oracle_shared_memory:
        Whether process-mode dispatch shards attach to one
        ``multiprocessing.shared_memory`` copy of the oracle's prepared
        arrays (csr kernel only) instead of duplicating them per fork.
        On by default; a no-op for thread mode, the dict kernel, and
        backends with nothing to share.
    dispatch_workers:
        Number of shards the periodic check's oracle blocks are
        partitioned across (1 = fully serial, no engine).  Parallel
        runs produce the same assignments and metrics as serial runs —
        the shards only precompute travel times.  (Bitwise on the
        ``lazy``/``matrix``/``landmark`` backends; ``ch`` carries its
        documented last-ulp distance-assembly slack — see
        :mod:`repro.simulation.parallel`.)
    dispatch_mode:
        ``"thread"`` (default, safe everywhere) or ``"process"``
        (forked per-shard oracle handles; scales with cores on
        CPU-bound backends, Linux/fork only — other platforms fall
        back to threads).
    """

    num_orders: int = 2000
    num_workers: int = 120
    deadline_scale: float = 1.6
    watch_window_scale: float = 0.8
    max_capacity: int = 4
    check_period: float = 10.0
    time_slot: float = 10.0
    grid_size: int = 10
    penalty_factor: float = 10.0
    horizon: float = 4 * 3600.0
    weights: ExtraTimeWeights = field(default_factory=ExtraTimeWeights)
    max_group_size: int = 4
    seed: int = 7
    oracle_backend: str = "lazy"
    oracle_cache_size: int = 1024
    oracle_landmarks: int = 8
    oracle_witness_hops: int = 5
    oracle_cache_dir: str | None = None
    oracle_kernel: str = "auto"
    oracle_coarsen_levels: int = 3
    oracle_coarsen_alpha: float = 1.0
    oracle_coarsen_beta: float = 1.0
    oracle_coarsen_error_bound: float = 0.25
    oracle_coarsen_refine: bool = False
    oracle_contraction_order: str = "edge_difference"
    oracle_shared_memory: bool = True
    dispatch_workers: int = 1
    dispatch_mode: str = "thread"

    def __post_init__(self) -> None:
        if self.num_orders <= 0:
            raise ConfigurationError("num_orders must be positive")
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        if self.deadline_scale <= 1.0:
            raise ConfigurationError(
                "deadline_scale must exceed 1.0, otherwise no order can ever "
                "be served within its deadline"
            )
        if self.watch_window_scale < 0:
            raise ConfigurationError("watch_window_scale must be non-negative")
        if self.max_capacity < 2:
            raise ConfigurationError("max_capacity must be at least 2")
        if self.check_period <= 0:
            raise ConfigurationError("check_period must be positive")
        if self.time_slot <= 0:
            raise ConfigurationError("time_slot must be positive")
        if self.grid_size <= 0:
            raise ConfigurationError("grid_size must be positive")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.max_group_size < 1:
            raise ConfigurationError("max_group_size must be at least 1")
        if self.oracle_cache_size < 1:
            raise ConfigurationError("oracle_cache_size must be at least 1")
        if self.oracle_landmarks < 1:
            raise ConfigurationError("oracle_landmarks must be at least 1")
        if self.oracle_witness_hops < 1:
            raise ConfigurationError("oracle_witness_hops must be at least 1")
        if self.dispatch_workers < 1:
            raise ConfigurationError("dispatch_workers must be at least 1")
        # Deferred import, same reasoning as the oracle registry below.
        from .simulation.parallel import DISPATCH_MODES

        if self.dispatch_mode not in DISPATCH_MODES:
            raise ConfigurationError(
                f"unknown dispatch_mode {self.dispatch_mode!r}; "
                f"available: {DISPATCH_MODES}"
            )
        # Deferred import: the registry lives in the network layer, which
        # does not import this module, so there is no cycle — but keep it
        # local so merely importing repro.config stays dependency-free.
        from .network.oracle.registry import ORACLE_BACKENDS

        if self.oracle_backend not in ORACLE_BACKENDS:
            raise ConfigurationError(
                f"unknown oracle backend {self.oracle_backend!r}; "
                f"available: {tuple(sorted(ORACLE_BACKENDS))}"
            )
        if self.oracle_cache_dir is not None and not isinstance(
            self.oracle_cache_dir, str
        ):
            raise ConfigurationError("oracle_cache_dir must be a path string")
        from .network.oracle.csr import KERNELS

        if self.oracle_kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown oracle_kernel {self.oracle_kernel!r}; "
                f"available: {KERNELS}"
            )
        if not isinstance(self.oracle_shared_memory, bool):
            raise ConfigurationError("oracle_shared_memory must be a bool")
        if self.oracle_coarsen_levels < 1:
            raise ConfigurationError("oracle_coarsen_levels must be at least 1")
        if self.oracle_coarsen_alpha < 0 or self.oracle_coarsen_beta < 0:
            raise ConfigurationError(
                "oracle coarsening weights must be non-negative"
            )
        if self.oracle_coarsen_error_bound < 0:
            raise ConfigurationError(
                "oracle_coarsen_error_bound must be non-negative"
            )
        if not isinstance(self.oracle_coarsen_refine, bool):
            raise ConfigurationError("oracle_coarsen_refine must be a bool")
        from .network.coarsen.order import CONTRACTION_ORDERS

        if self.oracle_contraction_order not in CONTRACTION_ORDERS:
            raise ConfigurationError(
                f"unknown oracle_contraction_order "
                f"{self.oracle_contraction_order!r}; "
                f"available: {CONTRACTION_ORDERS}"
            )
        if _constructed_externally():
            warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=3)

    def with_overrides(self, **overrides: Any) -> "SimulationConfig":
        """Return a copy with the given fields replaced.

        ``ConfigurationError`` is raised if an unknown field is supplied
        so sweep definitions fail loudly instead of silently ignoring a
        typo.
        """
        known = set(self.__dataclass_fields__)
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SimulationConfig fields: {sorted(unknown)}"
            )
        return replace(self, **overrides)

    def as_dict(self) -> Mapping[str, Any]:
        """Return a flat dictionary view (weights are expanded)."""
        data = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if name != "weights"
        }
        data["alpha"] = self.weights.alpha
        data["beta"] = self.weights.beta
        return data


@dataclass(frozen=True)
class LearningConfig:
    """Hyper-parameters of the offline value-function training stage.

    The paper trains a DQN-style value network from replayed experience
    (Section VI-B).  The sizes below are chosen for the small synthetic
    state dimensionality of this reproduction.
    """

    hidden_sizes: tuple[int, ...] = (64, 32)
    learning_rate: float = 1e-3
    discount: float = 1.0
    batch_size: int = 64
    replay_capacity: int = 50_000
    target_sync_period: int = 200
    epochs: int = 5
    loss_weight: float = 0.5
    seed: int = 13

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ConfigurationError("hidden_sizes must not be empty")
        if any(size <= 0 for size in self.hidden_sizes):
            raise ConfigurationError("hidden layer sizes must be positive")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 <= self.discount <= 1.0:
            raise ConfigurationError("discount must lie in [0, 1]")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.replay_capacity <= 0:
            raise ConfigurationError("replay_capacity must be positive")
        if self.target_sync_period <= 0:
            raise ConfigurationError("target_sync_period must be positive")
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if not 0.0 <= self.loss_weight <= 1.0:
            raise ConfigurationError("loss_weight (omega) must lie in [0, 1]")
