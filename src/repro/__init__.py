"""Reproduction of "Wait to be Faster: A Smart Pooling Framework for Dynamic Ridesharing".

The package implements the WATTER framework (ICDE 2024) and everything it
needs to run end-to-end: a road-network substrate, a ridesharing
simulator, the GDP / GAS baselines, the distribution-fitting and
reinforcement-learning threshold estimators, and an experiment harness
that regenerates every figure of the paper's evaluation.

Quick start::

    from repro import default_config, run_comparison, format_comparison_table

    config = default_config("CDC", num_orders=300, num_workers=30)
    metrics = run_comparison("CDC", config,
                             algorithms=("WATTER-expect", "WATTER-online", "GDP"))
    print(format_comparison_table(metrics))
"""

from .config import ExtraTimeWeights, LearningConfig, SimulationConfig
from .exceptions import (
    ConfigurationError,
    DatasetError,
    DependencyError,
    InfeasibleGroupError,
    LearningError,
    NetworkError,
    PoolError,
    ReproError,
    RoutingError,
)
from .model import Group, Order, OrderOutcome, OrderStatus, Route, Worker
from .network import (
    RoadNetwork,
    GridIndex,
    grid_city,
    manhattan_like_city,
    example_network,
    CHOracle,
    DistanceOracle,
    LazyDijkstraOracle,
    LandmarkOracle,
    MatrixOracle,
    OracleStats,
    available_backends,
    configure_oracle,
    create_oracle,
    register_oracle,
)
from .routing import RoutePlanner
from .core import (
    OrderPool,
    TemporalShareabilityGraph,
    OnlineStrategy,
    TimeoutStrategy,
    ThresholdStrategy,
    ThresholdOptimizer,
    GaussianMixture,
    StateEncoder,
    WatterDispatcher,
    fit_extra_time_distribution,
)
from .baselines import GASDispatcher, GDPDispatcher, NonSharingDispatcher
from .datasets import build_workload, CityModel, Workload
from .simulation import Simulator, SimulationResult, WorkerFleet, MetricsCollector
from .learning import ValueFunctionTrainer, ValueThresholdProvider, generate_experience
from .experiments import (
    default_config,
    run_algorithm,
    run_comparison,
    build_expect_provider,
    vary_num_orders,
    vary_num_workers,
    vary_deadline,
    vary_capacity,
    run_worked_example,
    format_sweep_table,
    format_comparison_table,
)
from .api import (
    RunResult,
    ScenarioSpec,
    Session,
    SimulationHooks,
    load_spec,
    run_scenario,
    save_spec,
)

__version__ = "1.0.0"

__all__ = [
    "ExtraTimeWeights",
    "LearningConfig",
    "SimulationConfig",
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "RoutingError",
    "InfeasibleGroupError",
    "PoolError",
    "LearningError",
    "DependencyError",
    "DatasetError",
    "Order",
    "OrderOutcome",
    "OrderStatus",
    "Worker",
    "Group",
    "Route",
    "RoadNetwork",
    "GridIndex",
    "grid_city",
    "manhattan_like_city",
    "example_network",
    "CHOracle",
    "DistanceOracle",
    "LazyDijkstraOracle",
    "LandmarkOracle",
    "MatrixOracle",
    "OracleStats",
    "available_backends",
    "configure_oracle",
    "create_oracle",
    "register_oracle",
    "RoutePlanner",
    "OrderPool",
    "TemporalShareabilityGraph",
    "OnlineStrategy",
    "TimeoutStrategy",
    "ThresholdStrategy",
    "ThresholdOptimizer",
    "GaussianMixture",
    "StateEncoder",
    "WatterDispatcher",
    "fit_extra_time_distribution",
    "GDPDispatcher",
    "GASDispatcher",
    "NonSharingDispatcher",
    "build_workload",
    "CityModel",
    "Workload",
    "Simulator",
    "SimulationResult",
    "WorkerFleet",
    "MetricsCollector",
    "ValueFunctionTrainer",
    "ValueThresholdProvider",
    "generate_experience",
    "default_config",
    "run_algorithm",
    "run_comparison",
    "build_expect_provider",
    "vary_num_orders",
    "vary_num_workers",
    "vary_deadline",
    "vary_capacity",
    "run_worked_example",
    "format_sweep_table",
    "format_comparison_table",
    "ScenarioSpec",
    "Session",
    "RunResult",
    "SimulationHooks",
    "run_scenario",
    "load_spec",
    "save_spec",
    "__version__",
]
